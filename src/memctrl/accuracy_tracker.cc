#include "memctrl/accuracy_tracker.hh"

namespace padc::memctrl
{

AccuracyTracker::AccuracyTracker(std::uint32_t num_cores,
                                 const AccuracyConfig &config)
    : config_(config), cores_(num_cores), next_boundary_(config.interval)
{
    for (auto &core : cores_)
        core.par = config_.initial_accuracy;
}

void
AccuracyTracker::onPrefetchSent(CoreId core)
{
    auto &c = cores_[core];
    ++c.psc;
    ++c.total_sent;
}

void
AccuracyTracker::onPrefetchUsed(CoreId core)
{
    auto &c = cores_[core];
    ++c.puc;
    ++c.total_used;
}

void
AccuracyTracker::onPrefetchDropped(CoreId core)
{
    auto &c = cores_[core];
    if (c.psc > 0)
        --c.psc;
    ++c.total_dropped;
}

void
AccuracyTracker::tick(Cycle now)
{
    while (now >= next_boundary_) {
        for (auto &c : cores_) {
            if (c.psc >= config_.min_samples) {
                c.par = static_cast<double>(c.puc) /
                        static_cast<double>(c.psc);
                if (c.par > 1.0)
                    c.par = 1.0; // PUC can outrun PSC across a boundary
            }
            c.psc = 0;
            c.puc = 0;
        }
        next_boundary_ += config_.interval;
    }
}

} // namespace padc::memctrl
