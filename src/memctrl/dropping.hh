/**
 * @file
 * Adaptive Prefetch Dropping (APD) unit (paper Section 4.3).
 *
 * APD removes a prefetch request from the memory request buffer once it
 * has been outstanding longer than a per-core drop threshold. The
 * threshold adapts to the core's measured prefetch accuracy through a
 * four-level table (paper Table 6): low accuracy -> drop quickly, high
 * accuracy -> keep prefetches around.
 *
 * The unit never drops a request whose P bit is clear, so a prefetch
 * that has been promoted to a demand (matched by the processor) is
 * always safe; the controller invalidates the corresponding MSHR entry
 * via the drop callback before the entry disappears.
 */

#ifndef PADC_MEMCTRL_DROPPING_HH
#define PADC_MEMCTRL_DROPPING_HH

#include "common/types.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/policy.hh"
#include "memctrl/request.hh"

namespace padc::memctrl
{

/**
 * Decides which prefetch requests are stale enough to drop.
 */
class ApdUnit
{
  public:
    ApdUnit(const SchedulerConfig &config, const AccuracyTracker &tracker);

    /**
     * Drop threshold (processor cycles) currently in force for @p core,
     * from the accuracy-indexed table.
     */
    Cycle dropThreshold(CoreId core) const;

    /**
     * True when @p req should be removed from the buffer at cycle @p now:
     * it is a still-unpromoted prefetch, still queued (not in flight),
     * and its quantized AGE exceeds the core's drop threshold.
     */
    bool shouldDrop(const Request &req, Cycle now) const;

    /**
     * Earliest cycle at which shouldDrop(@p req, cycle) can turn true
     * under the core's *current* threshold: the first cycle whose
     * quantized age exceeds it. Exact, not a bound: shouldDrop is false
     * strictly before the returned cycle and true at it (threshold and
     * promotion state permitting). Feeds the next-event computation.
     */
    Cycle dropDeadline(const Request &req) const;

  private:
    const SchedulerConfig &config_;
    const AccuracyTracker &tracker_;
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_DROPPING_HH
