#include "memctrl/dropping.hh"

namespace padc::memctrl
{

ApdUnit::ApdUnit(const SchedulerConfig &config,
                 const AccuracyTracker &tracker)
    : config_(config), tracker_(tracker)
{
}

Cycle
ApdUnit::dropThreshold(CoreId core) const
{
    const double acc = tracker_.accuracy(core);
    const auto &bounds = config_.drop_accuracy_bounds;
    std::uint32_t band = 3;
    if (acc < bounds[0])
        band = 0;
    else if (acc < bounds[1])
        band = 1;
    else if (acc < bounds[2])
        band = 2;
    return config_.drop_thresholds[band];
}

bool
ApdUnit::shouldDrop(const Request &req, Cycle now) const
{
    if (!req.isPrefetch())
        return false;
    if (req.state != RequestState::Queued)
        return false;
    // AGE is kept at age_quantum granularity in hardware; quantize the
    // comparison the same way so behaviour matches the 8/10-bit counter.
    const Cycle age = req.ageCycles(now) / config_.age_quantum *
                      config_.age_quantum;
    return age > dropThreshold(req.core);
}

Cycle
ApdUnit::dropDeadline(const Request &req) const
{
    // Quantized age first exceeds threshold T at age (T/q + 1)*q: the
    // smallest multiple of the quantum that is strictly greater than T.
    const Cycle q = config_.age_quantum;
    return req.arrival + (dropThreshold(req.core) / q + 1) * q;
}

} // namespace padc::memctrl
