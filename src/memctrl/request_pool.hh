/**
 * @file
 * Arena-allocated, structure-of-arrays storage for the memory request
 * buffer.
 *
 * The controller's scheduler scan is the per-cycle hot loop; storing the
 * fields it reads (row, seq, core, request class) as dense parallel
 * columns keeps the scan cache-linear, while the full Request records
 * live in stable arena slots (slot indices never move, so bank shards
 * and the address index hold plain uint32 slot numbers instead of list
 * iterators). An intrusive prev/next chain preserves enqueue order for
 * the walks that depend on it: the reference scheduler, APD's drop
 * scan, and the reference completion walk.
 *
 * Slot identity is never a scheduling input -- every priority decision
 * keys off the stored seq -- so LIFO slot reuse cannot perturb
 * scheduling decisions relative to the old list-based buffer.
 */

#ifndef PADC_MEMCTRL_REQUEST_POOL_HH
#define PADC_MEMCTRL_REQUEST_POOL_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "memctrl/request.hh"

namespace padc::memctrl
{

/**
 * Fixed-capacity request arena with hot-field columns and an intrusive
 * insertion-order list. Capacity equals the request buffer size, so
 * "arena full" and "buffer full" coincide.
 */
class RequestPool
{
  public:
    /** Sentinel slot number ("no slot" / end of chain). */
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    explicit RequestPool(std::uint32_t capacity)
        : slots_(capacity), next_(capacity, kNone), prev_(capacity, kNone),
          row_(capacity, 0), seq_(capacity, 0), core_(capacity, 0),
          cls_(capacity, RequestClass::DemandRead)
    {
        free_.reserve(capacity);
        for (std::uint32_t i = capacity; i > 0; --i)
            free_.push_back(i - 1);
    }

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }
    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return free_.empty(); }

    /**
     * Claim a slot and link it at the tail of the insertion-order list.
     * The caller fills the record, then calls syncHot().
     * @pre !full()
     */
    std::uint32_t allocate()
    {
        assert(!free_.empty());
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        next_[slot] = kNone;
        prev_[slot] = tail_;
        if (tail_ != kNone)
            next_[tail_] = slot;
        else
            head_ = slot;
        tail_ = slot;
        ++size_;
        return slot;
    }

    /**
     * Unlink @p slot from the insertion-order list and recycle it. The
     * record contents stay readable until the slot is re-allocated
     * (completion callbacks may still hold a reference during teardown
     * of the owning call frame).
     */
    void release(std::uint32_t slot)
    {
        const std::uint32_t p = prev_[slot];
        const std::uint32_t n = next_[slot];
        if (p != kNone)
            next_[p] = n;
        else
            head_ = n;
        if (n != kNone)
            prev_[n] = p;
        else
            tail_ = p;
        free_.push_back(slot);
        --size_;
    }

    Request &at(std::uint32_t slot) { return slots_[slot]; }
    const Request &at(std::uint32_t slot) const { return slots_[slot]; }

    /** First slot in enqueue order, or kNone when empty. */
    std::uint32_t head() const { return head_; }

    /** Successor of @p slot in enqueue order, or kNone at the tail. */
    std::uint32_t next(std::uint32_t slot) const { return next_[slot]; }

    // Hot columns for the scheduler scan.
    std::uint64_t rowOf(std::uint32_t slot) const { return row_[slot]; }
    std::uint64_t seqOf(std::uint32_t slot) const { return seq_[slot]; }
    CoreId coreOf(std::uint32_t slot) const { return core_[slot]; }
    RequestClass classOf(std::uint32_t slot) const { return cls_[slot]; }

    /**
     * Re-derive the hot columns from the stored record. Call after any
     * write to a field the scheduler scan reads (enqueue, promotion).
     */
    void syncHot(std::uint32_t slot)
    {
        const Request &req = slots_[slot];
        row_[slot] = req.coord.row;
        seq_[slot] = req.seq;
        core_[slot] = req.core;
        cls_[slot] = req.cls;
    }

  private:
    std::vector<Request> slots_;
    std::vector<std::uint32_t> next_; ///< insertion-order forward links
    std::vector<std::uint32_t> prev_; ///< insertion-order backward links

    std::vector<std::uint64_t> row_;  ///< DRAM row (hot column)
    std::vector<std::uint64_t> seq_;  ///< FCFS sequence (hot column)
    std::vector<CoreId> core_;        ///< owning core (hot column)
    std::vector<RequestClass> cls_;   ///< request class (hot column)

    std::vector<std::uint32_t> free_; ///< LIFO free list
    std::uint32_t head_ = kNone;
    std::uint32_t tail_ = kNone;
    std::uint32_t size_ = 0;
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_REQUEST_POOL_HH
