#include "memctrl/controller.hh"

#include <cassert>

namespace padc::memctrl
{

MemoryController::MemoryController(const SchedulerConfig &config,
                                   dram::Channel &channel,
                                   AccuracyTracker &tracker,
                                   ResponseHandler &handler,
                                   std::uint32_t num_cores)
    : config_(config), channel_(channel), tracker_(tracker),
      handler_(handler), num_cores_(num_cores),
      context_(config_, tracker_), apd_(config_, tracker_)
{
    assert(num_cores_ <= kMaxCores);
}

bool
MemoryController::enqueueRead(const dram::DramCoord &coord, Addr line_addr,
                              CoreId core, Addr pc, bool is_prefetch,
                              Cycle now)
{
    assert(read_index_.find(line_addr) == read_index_.end());

    // Forward from the write queue: the newest data for this line is
    // sitting in the controller, so no DRAM access is needed.
    if (write_index_.find(line_addr) != write_index_.end()) {
        Request req;
        req.line_addr = line_addr;
        req.coord = coord;
        req.core = core;
        req.pc = pc;
        req.is_prefetch = is_prefetch;
        req.was_prefetch = is_prefetch;
        req.arrival = now;
        req.seq = next_seq_++;
        req.state = RequestState::Done;
        req.row_outcome = Request::RowOutcome::Hit;
        const Cycle ready =
            now + channel_.timing().toCpu(channel_.timing().tCL);
        forwards_.push_back({req, ready});
        ++stats_.forwarded_reads;
        if (is_prefetch)
            tracker_.onPrefetchSent(core);
        return true;
    }

    if (readBufferFull()) {
        if (is_prefetch)
            ++stats_.prefetches_rejected_full;
        else
            ++stats_.demands_rejected_full;
        return false;
    }

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.pc = pc;
    req.is_prefetch = is_prefetch;
    req.was_prefetch = is_prefetch;
    req.arrival = now;
    req.seq = next_seq_++;
    read_q_.push_back(req);
    read_index_[line_addr] = std::prev(read_q_.end());
    if (is_prefetch)
        tracker_.onPrefetchSent(core);
    return true;
}

void
MemoryController::enqueueWrite(const dram::DramCoord &coord, Addr line_addr,
                               CoreId core, Cycle now)
{
    if (write_index_.find(line_addr) != write_index_.end())
        return; // coalesce with the pending write of the same line

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.is_write = true;
    req.arrival = now;
    req.seq = next_seq_++;
    write_q_.push_back(req);
    write_index_[line_addr] = std::prev(write_q_.end());
}

bool
MemoryController::promote(Addr line_addr, Cycle now)
{
    (void)now;
    auto it = read_index_.find(line_addr);
    if (it == read_index_.end() || !it->second->is_prefetch)
        return false;
    it->second->is_prefetch = false;
    ++stats_.promotions;
    return true;
}

MemoryController::NextCmd
MemoryController::nextCommand(const Request &req, bool *row_hit) const
{
    const std::uint64_t open = channel_.openRow(req.coord.bank);
    if (open == req.coord.row) {
        *row_hit = true;
        return NextCmd::Column;
    }
    *row_hit = false;
    return open == dram::kNoOpenRow ? NextCmd::Activate : NextCmd::Precharge;
}

bool
MemoryController::commandIssuable(const Request &req, NextCmd cmd,
                                  Cycle now) const
{
    switch (cmd) {
      case NextCmd::Precharge:
        return channel_.canPrecharge(req.coord.bank, now);
      case NextCmd::Activate:
        return channel_.canActivate(req.coord.bank, now);
      case NextCmd::Column:
        return channel_.canColumn(req.coord.bank, req.is_write, now);
      case NextCmd::None:
        break;
    }
    return false;
}

bool
MemoryController::pendingSameRow(const Request &req) const
{
    for (const auto &other : read_q_) {
        if (&other != &req && other.state == RequestState::Queued &&
            other.coord.bank == req.coord.bank &&
            other.coord.row == req.coord.row) {
            return true;
        }
    }
    for (const auto &other : write_q_) {
        if (&other != &req && other.coord.bank == req.coord.bank &&
            other.coord.row == req.coord.row) {
            return true;
        }
    }
    return false;
}

void
MemoryController::issueCommand(Request &req, NextCmd cmd, bool row_hit,
                               Cycle now)
{
    switch (cmd) {
      case NextCmd::Precharge:
        channel_.precharge(req.coord.bank, now);
        req.row_outcome = Request::RowOutcome::Conflict;
        break;
      case NextCmd::Activate:
        channel_.activate(req.coord.bank, req.coord.row, now);
        if (req.row_outcome == Request::RowOutcome::Unknown)
            req.row_outcome = Request::RowOutcome::Closed;
        break;
      case NextCmd::Column: {
        const bool auto_pre = config_.row_policy == RowPolicy::Closed &&
                              !pendingSameRow(req);
        req.data_ready =
            channel_.column(req.coord.bank, req.is_write, auto_pre, now);
        if (req.row_outcome == Request::RowOutcome::Unknown) {
            req.row_outcome = row_hit ? Request::RowOutcome::Hit
                                      : Request::RowOutcome::Conflict;
        }
        req.state = RequestState::Servicing;
        break;
      }
      case NextCmd::None:
        break;
    }
}

void
MemoryController::finishRead(ReadList::iterator it, Cycle now)
{
    Request &req = *it;
    req.state = RequestState::Done;

    if (req.isDemand()) {
        ++stats_.demand_reads;
        if (req.row_outcome == Request::RowOutcome::Hit)
            ++stats_.demand_row_hits;
    } else {
        ++stats_.prefetch_reads;
    }
    switch (req.row_outcome) {
      case Request::RowOutcome::Hit: ++stats_.read_row_hits; break;
      case Request::RowOutcome::Closed: ++stats_.read_row_closed; break;
      case Request::RowOutcome::Conflict:
        ++stats_.read_row_conflicts;
        break;
      case Request::RowOutcome::Unknown: break;
    }
    stats_.read_service_cycles_sum += now - req.arrival;

    handler_.dramReadComplete(req, now);
    read_index_.erase(req.line_addr);
    read_q_.erase(it);
}

void
MemoryController::completeFinished(Cycle now)
{
    for (auto it = read_q_.begin(); it != read_q_.end();) {
        auto next = std::next(it);
        if (it->state == RequestState::Servicing && it->data_ready <= now)
            finishRead(it, now);
        it = next;
    }
    for (auto it = forwards_.begin(); it != forwards_.end();) {
        if (it->ready <= now) {
            handler_.dramReadComplete(it->req, now);
            it = forwards_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MemoryController::runApd(Cycle now)
{
    for (auto it = read_q_.begin(); it != read_q_.end();) {
        auto next = std::next(it);
        if (apd_.shouldDrop(*it, now)) {
            it->state = RequestState::Dropped;
            ++stats_.prefetches_dropped;
            tracker_.onPrefetchDropped(it->core);
            handler_.dramPrefetchDropped(*it, now);
            read_index_.erase(it->line_addr);
            read_q_.erase(it);
        }
        it = next;
    }
}

bool
MemoryController::scheduleRead(Cycle now)
{
    if (config_.ranking_enabled) {
        std::array<std::uint32_t, kMaxCores> counts{};
        for (const auto &req : read_q_) {
            if (req.core < kMaxCores && context_.isCritical(req))
                ++counts[req.core];
        }
        context_.updateRanks(counts, num_cores_);
    }

    // Strict per-bank class blocking (paper Section 1): a deprioritized
    // request (e.g. a prefetch under demand-first, or a non-critical
    // prefetch under APS) may not be scheduled to a bank while a
    // preferred-class request to the same bank is outstanding -- even if
    // the preferred request is not timing-ready this cycle.
    std::array<std::uint8_t, 64> bank_has_preferred{};
    for (const auto &req : read_q_) {
        if (req.state == RequestState::Queued &&
            context_.requestClass(req) != 0) {
            bank_has_preferred[req.coord.bank % 64] = 1;
        }
    }

    Request *best = nullptr;
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;
    bool best_hit = false;

    for (auto &req : read_q_) {
        if (req.state != RequestState::Queued)
            continue;
        if (context_.requestClass(req) == 0 &&
            bank_has_preferred[req.coord.bank % 64]) {
            continue;
        }
        bool row_hit = false;
        const NextCmd cmd = nextCommand(req, &row_hit);
        if (!commandIssuable(req, cmd, now))
            continue;
        const std::uint64_t key = context_.priorityKey(req, row_hit);
        if (best == nullptr || key > best_key) {
            best = &req;
            best_key = key;
            best_cmd = cmd;
            best_hit = row_hit;
        }
    }
    if (best == nullptr)
        return false;
    issueCommand(*best, best_cmd, best_hit, now);
    return true;
}

bool
MemoryController::scheduleWrite(Cycle now)
{
    // Writes are scheduled FR-FCFS among themselves (row-hit first,
    // then oldest); prefetch-awareness does not apply to writebacks.
    std::list<Request>::iterator best = write_q_.end();
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;

    for (auto it = write_q_.begin(); it != write_q_.end(); ++it) {
        bool row_hit = false;
        const NextCmd cmd = nextCommand(*it, &row_hit);
        if (!commandIssuable(*it, cmd, now))
            continue;
        const std::uint64_t key =
            ((row_hit ? 1ULL : 0ULL) << 63) | (~it->seq & 0x7FFFFFFFFFFFFFFF);
        if (best == write_q_.end() || key > best_key) {
            best = it;
            best_key = key;
            best_cmd = cmd;
        }
    }
    if (best == write_q_.end())
        return false;

    issueCommand(*best, best_cmd, best_cmd == NextCmd::Column, now);
    if (best->state == RequestState::Servicing) {
        // Nothing waits on a writeback; retire it at column issue.
        ++stats_.writes;
        write_index_.erase(best->line_addr);
        write_q_.erase(best);
    }
    return true;
}

void
MemoryController::tick(Cycle now)
{
    const auto &timing = channel_.timing();
    if (now % timing.cpu_per_dram_cycle != 0)
        return;

    ++stats_.dram_cycles;
    stats_.read_queue_occupancy_sum += read_q_.size();

    completeFinished(now);

    if (config_.apd_enabled && now >= next_apd_scan_) {
        runApd(now);
        next_apd_scan_ = now + config_.age_quantum;
    }

    if (channel_.refreshDue(now)) {
        if (channel_.commandBusFree(now))
            channel_.refresh(now);
        return;
    }

    if (write_q_.size() >= config_.write_drain_high)
        write_drain_mode_ = true;
    else if (write_q_.size() <= config_.write_drain_low)
        write_drain_mode_ = false;

    if (write_drain_mode_) {
        if (!scheduleWrite(now))
            scheduleRead(now);
    } else {
        if (!scheduleRead(now) && read_q_.empty())
            scheduleWrite(now);
    }
}

} // namespace padc::memctrl
