#include "memctrl/controller.hh"

#include <algorithm>
#include <cassert>

namespace padc::memctrl
{

MemoryController::MemoryController(const SchedulerConfig &config,
                                   dram::Channel &channel,
                                   AccuracyTracker &tracker,
                                   ResponseHandler &handler,
                                   std::uint32_t num_cores)
    : config_(config), channel_(channel), tracker_(tracker),
      handler_(handler), num_cores_(num_cores),
      context_(config_, tracker_), apd_(config_, tracker_),
      pool_(config_.request_buffer_size)
{
    assert(num_cores_ <= kMaxCores);
    assert(channel_.numBanks() <= 64); // occupied_banks_ is one word
    shards_.resize(channel_.numBanks());
    for (auto &shard : shards_)
        shard.pref_by_core.assign(num_cores_, 0);
}

// --- incremental bookkeeping ------------------------------------------

void
MemoryController::trackEnqueued(std::uint32_t slot)
{
    Request &req = pool_.at(slot);
    assert(req.core < num_cores_);
    BankShard &shard = shards_[req.coord.bank];
    req.bank_slot = static_cast<std::uint32_t>(shard.queued.size());
    shard.queued.push_back(slot);
    switch (req.cls) {
      case RequestClass::Prefetch:
        if (shard.pref_by_core[req.core]++ == 0)
            shard.pref_core_mask |= 1ULL << req.core;
        ++prefs_per_core_[req.core];
        break;
      case RequestClass::DemandRead:
        ++shard.queued_demands;
        ++demands_per_core_[req.core];
        break;
      case RequestClass::Writeback:
      case RequestClass::PtwRead:
      case RequestClass::DramCacheFill:
        // Reserved classes have no read-path producer yet; when one
        // lands it must pick (or add) shard counters here.
        assert(false && "unsupported class in the read buffer");
        break;
    }
    ++pending_rows_[rowKey(req.coord)];
    shard.wake = 0; // new arrival: rescan this bank
    occupied_banks_ |= 1ULL << req.coord.bank;
}

void
MemoryController::untrackQueued(Request &req)
{
    assert(req.state == RequestState::Queued);
    BankShard &shard = shards_[req.coord.bank];
    const std::uint32_t moved = shard.queued.back();
    shard.queued[req.bank_slot] = moved;
    pool_.at(moved).bank_slot = req.bank_slot;
    shard.queued.pop_back();
    if (shard.queued.empty())
        occupied_banks_ &= ~(1ULL << req.coord.bank);
    switch (req.cls) {
      case RequestClass::Prefetch:
        if (--shard.pref_by_core[req.core] == 0)
            shard.pref_core_mask &= ~(1ULL << req.core);
        break;
      case RequestClass::DemandRead:
        --shard.queued_demands;
        break;
      case RequestClass::Writeback:
      case RequestClass::PtwRead:
      case RequestClass::DramCacheFill:
        assert(false && "unsupported class in the read buffer");
        break;
    }
    auto it = pending_rows_.find(rowKey(req.coord));
    if (--it->second == 0)
        pending_rows_.erase(it);
}

void
MemoryController::trackPromoted(Request &req)
{
    assert(req.isPrefetch());
    --prefs_per_core_[req.core];
    ++demands_per_core_[req.core];
    if (req.state == RequestState::Queued) {
        BankShard &shard = shards_[req.coord.bank];
        if (--shard.pref_by_core[req.core] == 0)
            shard.pref_core_mask &= ~(1ULL << req.core);
        ++shard.queued_demands;
    }
}

std::uint64_t
MemoryController::accurateCoreMask() const
{
    std::uint64_t mask = 0;
    for (std::uint32_t c = 0; c < num_cores_; ++c) {
        if (context_.coreAccurate(c))
            mask |= 1ULL << c;
    }
    return mask;
}

bool
MemoryController::shardHasPreferred(const BankShard &shard,
                                    std::uint64_t accurate_mask) const
{
    return context_.shardHasPreferred(shard.queued_demands,
                                      shard.pref_core_mask, accurate_mask);
}

Cycle
MemoryController::bankLocalReady(std::uint32_t bank, NextCmd cmd) const
{
    switch (cmd) {
      case NextCmd::Precharge:
        return channel_.bankReadyPrecharge(bank);
      case NextCmd::Activate:
        return channel_.bankReadyActivate(bank);
      case NextCmd::Column:
        return channel_.bankReadyColumn(bank);
      case NextCmd::None:
        break;
    }
    return kNeverCycle;
}

// --- queue admission --------------------------------------------------

bool
MemoryController::enqueueRead(const dram::DramCoord &coord, Addr line_addr,
                              CoreId core, Addr pc, RequestClass cls,
                              Cycle now)
{
    assert(cls == RequestClass::DemandRead ||
           cls == RequestClass::Prefetch);
    const bool is_prefetch = cls == RequestClass::Prefetch;
    // Duplicate of an outstanding read: coalesce with it instead of
    // corrupting read_index_ (formerly an assert, i.e. silent corruption
    // in NDEBUG builds). A demand duplicate promotes the in-flight
    // prefetch, mirroring what the L2 does on a demand match. The
    // speculative try_emplace doubles as the admission insert, so the
    // hot paths (coalesce, fresh enqueue) pay a single hash probe; the
    // rare forward/reject exits below undo it.
    auto [index_it, inserted] = read_index_.try_emplace(line_addr, 0);
    if (!inserted) {
        const Request &existing = pool_.at(index_it->second);
        ++stats_.duplicate_reads;
        traceRequest(telemetry::EventKind::Coalesce, existing, now);
        if (cls == RequestClass::DemandRead && existing.isPrefetch())
            promote(line_addr, now);
        return true;
    }

    // Forward from the write queue: the newest data for this line is
    // sitting in the controller, so no DRAM access is needed. The index
    // is empty exactly when the queue is, so the common empty-queue case
    // skips the hash probe.
    if (!write_q_.empty() &&
        write_index_.find(line_addr) != write_index_.end()) {
        read_index_.erase(index_it);
        Request req;
        req.line_addr = line_addr;
        req.coord = coord;
        req.core = core;
        req.pc = pc;
        req.cls = cls;
        req.was_prefetch = is_prefetch;
        req.arrival = now;
        req.seq = next_seq_++;
        req.state = RequestState::Done;
        req.row_outcome = Request::RowOutcome::Hit;
        const Cycle ready =
            now + channel_.timing().toCpu(channel_.timing().tCL);
        forwards_.push_back({req, ready});
        ++stats_.forwarded_reads;
        traceRequest(telemetry::EventKind::Forward, req, now);
        if (is_prefetch)
            tracker_.onPrefetchSent(core);
        return true;
    }

    if (readBufferFull()) {
        read_index_.erase(index_it);
        if (is_prefetch)
            ++stats_.prefetches_rejected_full;
        else
            ++stats_.demands_rejected_full;
        if (trace_ != nullptr) {
            Request rejected;
            rejected.line_addr = line_addr;
            rejected.coord = coord;
            rejected.core = core;
            rejected.cls = cls;
            rejected.was_prefetch = is_prefetch;
            traceRequest(telemetry::EventKind::RejectFull, rejected, now);
        }
        return false;
    }

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.pc = pc;
    req.cls = cls;
    req.was_prefetch = is_prefetch;
    req.arrival = now;
    req.seq = next_seq_++;
    const std::uint32_t slot = pool_.allocate();
    pool_.at(slot) = req; // full overwrite: recycled slots hold stale data
    pool_.syncHot(slot);
    index_it->second = slot;
    trackEnqueued(slot);
    traceRequest(telemetry::EventKind::Enqueue, pool_.at(slot), now);
    if (is_prefetch)
        tracker_.onPrefetchSent(core);
    return true;
}

void
MemoryController::enqueueWrite(const dram::DramCoord &coord, Addr line_addr,
                               CoreId core, Cycle now)
{
    if (write_index_.find(line_addr) != write_index_.end())
        return; // coalesce with the pending write of the same line

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.cls = RequestClass::Writeback;
    req.arrival = now;
    req.seq = next_seq_++;
    write_q_.push_back(req);
    write_index_[line_addr] = std::prev(write_q_.end());
    ++pending_rows_[rowKey(coord)];
    traceRequest(telemetry::EventKind::EnqueueWrite, write_q_.back(), now);
}

bool
MemoryController::promote(Addr line_addr, Cycle now)
{
    auto it = read_index_.find(line_addr);
    if (it == read_index_.end())
        return false;
    Request &req = pool_.at(it->second);
    if (!req.isPrefetch())
        return false;
    trackPromoted(req);
    req.cls = RequestClass::DemandRead;
    pool_.syncHot(it->second); // the class column feeds the scheduler
    ++stats_.promotions;
    traceRequest(telemetry::EventKind::Promote, req, now);
    return true;
}

// --- command selection ------------------------------------------------

MemoryController::NextCmd
MemoryController::nextCommand(const Request &req, bool *row_hit) const
{
    const std::uint64_t open = channel_.openRow(req.coord.bank);
    if (open == req.coord.row) {
        *row_hit = true;
        return NextCmd::Column;
    }
    *row_hit = false;
    return open == dram::kNoOpenRow ? NextCmd::Activate : NextCmd::Precharge;
}

bool
MemoryController::commandIssuable(const Request &req, NextCmd cmd,
                                  Cycle now) const
{
    switch (cmd) {
      case NextCmd::Precharge:
        return channel_.canPrecharge(req.coord.bank, now);
      case NextCmd::Activate:
        return channel_.canActivate(req.coord.bank, now);
      case NextCmd::Column:
        return channel_.canColumn(req.coord.bank, req.isWrite(), now);
      case NextCmd::None:
        break;
    }
    return false;
}

bool
MemoryController::pendingSameRow(const Request &req) const
{
    if (config_.reference_scheduler) {
        // Golden model: the naive scans, independent of the counters.
        for (std::uint32_t slot = pool_.head(); slot != RequestPool::kNone;
             slot = pool_.next(slot)) {
            const Request &other = pool_.at(slot);
            if (&other != &req && other.state == RequestState::Queued &&
                other.coord.bank == req.coord.bank &&
                other.coord.row == req.coord.row) {
                return true;
            }
        }
        for (const auto &other : write_q_) {
            if (&other != &req && other.coord.bank == req.coord.bank &&
                other.coord.row == req.coord.row) {
                return true;
            }
        }
        return false;
    }
    // req itself is counted (a queued read or a pending write), so
    // another request targets the same (bank,row) iff the counter
    // exceeds one.
    auto it = pending_rows_.find(rowKey(req.coord));
    return it != pending_rows_.end() && it->second > 1;
}

void
MemoryController::issueCommand(Request &req, NextCmd cmd, bool row_hit,
                               Cycle now)
{
    if (issue_log_ != nullptr) {
        issue_log_->push_back({now, static_cast<std::uint8_t>(cmd),
                               req.isWrite(), req.coord.bank, req.coord.row,
                               req.seq});
    }
    switch (cmd) {
      case NextCmd::Precharge:
        channel_.precharge(req.coord.bank, now);
        req.row_outcome = Request::RowOutcome::Conflict;
        break;
      case NextCmd::Activate:
        channel_.activate(req.coord.bank, req.coord.row, now);
        if (req.row_outcome == Request::RowOutcome::Unknown)
            req.row_outcome = Request::RowOutcome::Closed;
        break;
      case NextCmd::Column: {
        const bool auto_pre = config_.row_policy == RowPolicy::Closed &&
                              !pendingSameRow(req);
        req.data_ready =
            channel_.column(req.coord.bank, req.isWrite(), auto_pre, now);
        if (req.row_outcome == Request::RowOutcome::Unknown) {
            req.row_outcome = row_hit ? Request::RowOutcome::Hit
                                      : Request::RowOutcome::Conflict;
        }
        if (!req.isWrite()) {
            // Queued -> Servicing: the read leaves its bank shard and
            // joins the (seq-sorted) in-flight set.
            untrackQueued(req);
            const std::uint32_t slot = read_index_.find(req.line_addr)->second;
            servicing_.insert(
                std::lower_bound(servicing_.begin(), servicing_.end(), slot,
                                 [this](std::uint32_t a, std::uint32_t b) {
                                     return pool_.seqOf(a) < pool_.seqOf(b);
                                 }),
                slot);
            servicing_min_ready_ =
                std::min(servicing_min_ready_, req.data_ready);
        }
        req.state = RequestState::Servicing;
        break;
      }
      case NextCmd::None:
        break;
    }
    if (trace_ != nullptr && cmd != NextCmd::None) {
        telemetry::EventKind kind;
        switch (cmd) {
          case NextCmd::Precharge:
            kind = telemetry::EventKind::CmdPrecharge;
            break;
          case NextCmd::Activate:
            kind = telemetry::EventKind::CmdActivate;
            break;
          case NextCmd::Column:
          case NextCmd::None:
            kind = req.isWrite() ? telemetry::EventKind::CmdWrite
                                 : telemetry::EventKind::CmdRead;
            break;
        }
        traceRequest(kind, req, now);
    }
    // The command changed this bank's state (open row and/or readiness),
    // so its cached wake-up hint is stale.
    shards_[req.coord.bank].wake = 0;
}

void
MemoryController::finishRead(std::uint32_t slot, Cycle now)
{
    Request &req = pool_.at(slot);
    req.state = RequestState::Done;

    ++stats_.serviced_by_class[static_cast<std::size_t>(req.cls)];
    if (req.isDemand()) {
        ++stats_.demand_reads;
        if (req.row_outcome == Request::RowOutcome::Hit)
            ++stats_.demand_row_hits;
    } else {
        ++stats_.prefetch_reads;
    }
    switch (req.row_outcome) {
      case Request::RowOutcome::Hit: ++stats_.read_row_hits; break;
      case Request::RowOutcome::Closed: ++stats_.read_row_closed; break;
      case Request::RowOutcome::Conflict:
        ++stats_.read_row_conflicts;
        break;
      case Request::RowOutcome::Unknown: break;
    }
    stats_.read_service_cycles_sum += now - req.arrival;
    traceRequest(telemetry::EventKind::Complete, req, now, req.arrival);

    if (req.isPrefetch())
        --prefs_per_core_[req.core];
    else
        --demands_per_core_[req.core];

    handler_.dramReadComplete(req, now);
    read_index_.erase(req.line_addr);
    pool_.release(slot);
}

void
MemoryController::completeFinished(Cycle now)
{
    bool removed = false;
    if (config_.reference_scheduler) {
        // Golden model: front-to-back (enqueue-order) walk.
        for (std::uint32_t slot = pool_.head();
             slot != RequestPool::kNone;) {
            const std::uint32_t next = pool_.next(slot);
            const Request &req = pool_.at(slot);
            if (req.state == RequestState::Servicing &&
                req.data_ready <= now) {
                servicing_.erase(std::find(servicing_.begin(),
                                           servicing_.end(), slot));
                finishRead(slot, now);
                removed = true;
            }
            slot = next;
        }
    } else {
        // servicing_ is seq-sorted, so same-cycle completions are
        // reported in queue (seq) order, exactly like the queue walk.
        for (std::size_t i = 0; i < servicing_.size();) {
            const std::uint32_t slot = servicing_[i];
            if (pool_.at(slot).data_ready <= now) {
                servicing_.erase(servicing_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                finishRead(slot, now);
                removed = true;
            } else {
                ++i;
            }
        }
    }
    if (removed) {
        servicing_min_ready_ = kNeverCycle;
        for (const std::uint32_t slot : servicing_) {
            servicing_min_ready_ =
                std::min(servicing_min_ready_, pool_.at(slot).data_ready);
        }
    }
    for (auto it = forwards_.begin(); it != forwards_.end();) {
        if (it->ready <= now) {
            traceRequest(telemetry::EventKind::Complete, it->req, now,
                         it->req.arrival);
            handler_.dramReadComplete(it->req, now);
            it = forwards_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MemoryController::runApd(Cycle now)
{
    for (std::uint32_t slot = pool_.head(); slot != RequestPool::kNone;) {
        const std::uint32_t next = pool_.next(slot);
        Request &req = pool_.at(slot);
        if (apd_.shouldDrop(req, now)) {
            untrackQueued(req); // only Queued prefetches are droppable
            --prefs_per_core_[req.core];
            req.state = RequestState::Dropped;
            ++stats_.prefetches_dropped;
            traceRequest(telemetry::EventKind::Drop, req, now, req.arrival);
            tracker_.onPrefetchDropped(req.core);
            handler_.dramPrefetchDropped(req, now);
            read_index_.erase(req.line_addr);
            pool_.release(slot);
        }
        slot = next;
    }
}

// --- scheduling -------------------------------------------------------

bool
MemoryController::scheduleRead(Cycle now)
{
    if (config_.reference_scheduler)
        return scheduleReadReference(now);

    const std::uint64_t accurate_mask =
        (context_.latticeAccuracyDependent() || config_.ranking_enabled)
            ? accurateCoreMask()
            : 0;

    if (config_.ranking_enabled) {
        std::array<std::uint32_t, kMaxCores> counts{};
        for (std::uint32_t c = 0; c < num_cores_; ++c) {
            counts[c] = demands_per_core_[c];
            if ((accurate_mask >> c) & 1)
                counts[c] += prefs_per_core_[c];
        }
        context_.updateRanks(counts, num_cores_);
    }

    std::uint32_t best_slot = RequestPool::kNone;
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;
    bool best_hit = false;

    const Cycle retry = now + channel_.timing().cpu_per_dram_cycle;
    for (std::uint64_t mask = occupied_banks_; mask != 0; mask &= mask - 1) {
        const auto b = static_cast<std::uint32_t>(__builtin_ctzll(mask));
        BankShard &shard = shards_[b];
        if (now < shard.wake)
            continue;
        const bool has_preferred = shardHasPreferred(shard, accurate_mask);
        Cycle wake = kNeverCycle;
        bool issuable_here = false;

        // All requests to this bank need one of at most two distinct
        // commands (Column/Precharge against the open row, or Activate
        // when closed), and command legality does not depend on which
        // request wants it -- so resolve the bank state and each
        // command's legality once per shard, not once per request. The
        // scan itself reads only the pool's hot columns.
        const std::uint64_t open = channel_.openRow(b);
        const bool bank_open = open != dram::kNoOpenRow;
        int col_ok = -1; // lazy tri-state: -1 unknown, else 0/1
        int pre_ok = -1;
        int act_ok = -1;

        for (const std::uint32_t slot : shard.queued) {
            NextCmd cmd;
            bool row_hit = false;
            bool issuable;
            if (!bank_open) {
                cmd = NextCmd::Activate;
                if (act_ok < 0)
                    act_ok = channel_.canActivate(b, now) ? 1 : 0;
                issuable = act_ok != 0;
            } else if (pool_.rowOf(slot) == open) {
                cmd = NextCmd::Column;
                row_hit = true;
                if (col_ok < 0)
                    col_ok = channel_.canColumn(b, false, now) ? 1 : 0;
                issuable = col_ok != 0;
            } else {
                cmd = NextCmd::Precharge;
                if (pre_ok < 0)
                    pre_ok = channel_.canPrecharge(b, now) ? 1 : 0;
                issuable = pre_ok != 0;
            }
            const RequestClass cls = pool_.classOf(slot);
            const CoreId core = pool_.coreOf(slot);
            const bool blocked =
                has_preferred && context_.latticeLevel(cls, core) == 0;
            if (!blocked && issuable) {
                issuable_here = true;
                const std::uint64_t key = context_.priorityKey(
                    cls, core, pool_.seqOf(slot), row_hit);
                if (best_slot == RequestPool::kNone || key > best_key) {
                    best_slot = slot;
                    best_key = key;
                    best_cmd = cmd;
                    best_hit = row_hit;
                }
            } else {
                // Fold this request's bank-local readiness into the
                // shard's wake-up hint. A request that is bank-ready but
                // held back (class blocking or a channel-global
                // constraint) forces a retry next DRAM cycle, since that
                // blocking state can change with any issued command.
                const Cycle local = bankLocalReady(b, cmd);
                wake = std::min(wake, local <= now ? retry : local);
            }
        }
        // An issuable-but-not-chosen request must be reconsidered next
        // cycle; otherwise sleep until the earliest bank-local readiness.
        shard.wake = issuable_here ? now : wake;
    }
    if (best_slot == RequestPool::kNone)
        return false;
    issueCommand(pool_.at(best_slot), best_cmd, best_hit, now);
    return true;
}

bool
MemoryController::scheduleReadReference(Cycle now)
{
    if (config_.ranking_enabled) {
        std::array<std::uint32_t, kMaxCores> counts{};
        for (std::uint32_t slot = pool_.head(); slot != RequestPool::kNone;
             slot = pool_.next(slot)) {
            const Request &req = pool_.at(slot);
            if (req.core < kMaxCores && context_.isCritical(req))
                ++counts[req.core];
        }
        context_.updateRanks(counts, num_cores_);
    }

    // Strict per-bank class blocking (paper Section 1): a deprioritized
    // request (e.g. a prefetch under demand-first, or a non-critical
    // prefetch under APS) may not be scheduled to a bank while a
    // preferred-class request to the same bank is outstanding -- even if
    // the preferred request is not timing-ready this cycle.
    std::vector<std::uint8_t> bank_has_preferred(channel_.numBanks(), 0);
    for (std::uint32_t slot = pool_.head(); slot != RequestPool::kNone;
         slot = pool_.next(slot)) {
        const Request &req = pool_.at(slot);
        if (req.state == RequestState::Queued &&
            context_.latticeLevel(req.cls, req.core) != 0) {
            bank_has_preferred[req.coord.bank] = 1;
        }
    }

    Request *best = nullptr;
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;
    bool best_hit = false;

    for (std::uint32_t slot = pool_.head(); slot != RequestPool::kNone;
         slot = pool_.next(slot)) {
        Request &req = pool_.at(slot);
        if (req.state != RequestState::Queued)
            continue;
        if (context_.latticeLevel(req.cls, req.core) == 0 &&
            bank_has_preferred[req.coord.bank]) {
            continue;
        }
        bool row_hit = false;
        const NextCmd cmd = nextCommand(req, &row_hit);
        if (!commandIssuable(req, cmd, now))
            continue;
        const std::uint64_t key = context_.priorityKey(req, row_hit);
        if (best == nullptr || key > best_key) {
            best = &req;
            best_key = key;
            best_cmd = cmd;
            best_hit = row_hit;
        }
    }
    if (best == nullptr)
        return false;
    issueCommand(*best, best_cmd, best_hit, now);
    return true;
}

bool
MemoryController::scheduleWrite(Cycle now)
{
    // Writes are scheduled FR-FCFS among themselves (row-hit first,
    // then oldest); prefetch-awareness does not apply to writebacks.
    std::list<Request>::iterator best = write_q_.end();
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;

    for (auto it = write_q_.begin(); it != write_q_.end(); ++it) {
        bool row_hit = false;
        const NextCmd cmd = nextCommand(*it, &row_hit);
        if (!commandIssuable(*it, cmd, now))
            continue;
        const std::uint64_t key =
            ((row_hit ? 1ULL : 0ULL) << 63) | (~it->seq & 0x7FFFFFFFFFFFFFFF);
        if (best == write_q_.end() || key > best_key) {
            best = it;
            best_key = key;
            best_cmd = cmd;
        }
    }
    if (best == write_q_.end())
        return false;

    issueCommand(*best, best_cmd, best_cmd == NextCmd::Column, now);
    if (best->state == RequestState::Servicing) {
        // Nothing waits on a writeback; retire it at column issue.
        ++stats_.writes;
        ++stats_.serviced_by_class[static_cast<std::size_t>(
            RequestClass::Writeback)];
        traceRequest(telemetry::EventKind::WriteRetire, *best, now,
                     best->arrival);
        auto pending = pending_rows_.find(rowKey(best->coord));
        if (--pending->second == 0)
            pending_rows_.erase(pending);
        write_index_.erase(best->line_addr);
        write_q_.erase(best);
    }
    return true;
}

void
MemoryController::tick(Cycle now)
{
    const auto &timing = channel_.timing();
    if (now % timing.cpu_per_dram_cycle != 0)
        return;

    ++stats_.dram_cycles;
    stats_.read_queue_occupancy_sum += pool_.size();

    completeFinished(now);

    if (config_.apd_enabled && now >= next_apd_scan_) {
        runApd(now);
        next_apd_scan_ = now + config_.age_quantum;
    }

    if (channel_.refreshDue(now)) {
        if (channel_.commandBusFree(now))
            channel_.refresh(now);
        return;
    }

    if (write_q_.size() >= config_.write_drain_high)
        write_drain_mode_ = true;
    else if (write_q_.size() <= config_.write_drain_low)
        write_drain_mode_ = false;

    if (write_drain_mode_) {
        if (!scheduleWrite(now))
            scheduleRead(now);
    } else {
        if (!scheduleRead(now) && pool_.empty())
            scheduleWrite(now);
    }
}

// --- event-driven skipping --------------------------------------------

Cycle
MemoryController::nextEventCycle(Cycle from) const
{
    const Cycle period = channel_.timing().cpu_per_dram_cycle;
    const Cycle next_tick = (from + period - 1) / period * period;
    // Memo for the skipTo() that follows a successful jump computation.
    nec_from_ = from;
    nec_next_tick_ = next_tick;
    // Track the earliest *raw* event cycle and align once at the end:
    // alignUp is monotonic, so it commutes with min and a single
    // division suffices (this function runs once per jump attempt).
    // raw <= next_tick is exactly alignUp(raw) == next_tick.
    Cycle raw = kNeverCycle;
    const auto fold = [&](Cycle c) {
        raw = std::min(raw, std::max(c, from));
    };

    // (c) In-flight data first -- O(1) and the most common bound on a
    // latency-bound workload: read completions and write forwards.
    if (!servicing_.empty())
        fold(servicing_min_ready_);
    for (const PendingForward &fwd : forwards_)
        fold(fwd.ready);
    if (raw <= next_tick)
        return next_tick;

    // (a) Queued reads: with the channel frozen inside a gap, the first
    // cycle a queued read can issue is exactly max(bank-local ready,
    // channel-global ready) for the one command class its bank's open-row
    // state dictates. The scheduler's cached wake hints are deliberately
    // conservative (they assume an issued command can unblock a bank one
    // DRAM cycle later) and would fragment a gap where nothing issues.
    // Class-blocked requests are excluded: accuracy estimates and ranks
    // only move on controller or core events, so a request blocked at
    // `from` stays blocked for the whole gap.
    if (occupied_banks_ != 0) {
        const std::uint64_t accurate_mask =
            (context_.latticeAccuracyDependent() || config_.ranking_enabled)
                ? accurateCoreMask()
                : 0;
        const Cycle col_global = channel_.readColumnGlobalReadyAt();
        const Cycle act_global = channel_.activateGlobalReadyAt();
        const Cycle pre_global = channel_.commandBusFreeAt();
        for (std::uint64_t mask = occupied_banks_; mask != 0;
             mask &= mask - 1) {
            const auto b = static_cast<std::uint32_t>(__builtin_ctzll(mask));
            const BankShard &shard = shards_[b];
            // A shard can hold a class-blocked request only when it mixes
            // the preferred and deprioritized lattice levels; the common
            // pure shard skips the per-slot class checks entirely.
            const bool maybe_blocked =
                context_.shardHasLevelZero(shard.queued_demands,
                                           shard.pref_core_mask,
                                           accurate_mask) &&
                context_.shardHasPreferred(shard.queued_demands,
                                           shard.pref_core_mask,
                                           accurate_mask);
            const std::uint64_t open = channel_.openRow(b);
            const bool bank_open = open != dram::kNoOpenRow;
            // Which command classes does some unblocked request want?
            bool want_act = false;
            bool want_col = false;
            bool want_pre = false;
            if (!bank_open && !maybe_blocked) {
                want_act = true;
            } else {
                for (const std::uint32_t slot : shard.queued) {
                    if (maybe_blocked &&
                        context_.latticeLevel(pool_.classOf(slot),
                                              pool_.coreOf(slot)) == 0)
                        continue;
                    if (!bank_open) {
                        want_act = true;
                        break;
                    }
                    if (pool_.rowOf(slot) == open) {
                        want_col = true;
                        if (want_pre)
                            break;
                    } else {
                        want_pre = true;
                        if (want_col)
                            break;
                    }
                }
            }
            if (want_act)
                fold(std::max(channel_.bankReadyActivate(b), act_global));
            if (want_col)
                fold(std::max(channel_.bankReadyColumn(b), col_global));
            if (want_pre)
                fold(std::max(channel_.bankReadyPrecharge(b), pre_global));
            if (raw <= next_tick)
                return next_tick;
        }
    }

    // (b) Writes: a tick attempts the write path iff drain mode is on
    // (projected here with the gap-constant queue size, mirroring the
    // hysteresis update in tick()) or the read buffer is empty. A failed
    // scheduleWrite mutates nothing, so the event is not the attempt but
    // the first cycle some pending write's next command becomes legal --
    // and with the channel frozen inside the gap, that cycle is exactly
    // max(bank-local ready, channel-global ready) per write.
    if (!write_q_.empty()) {
        bool drain = write_drain_mode_;
        if (write_q_.size() >= config_.write_drain_high)
            drain = true;
        else if (write_q_.size() <= config_.write_drain_low)
            drain = false;
        if (drain || pool_.empty()) {
            const Cycle col_global = channel_.writeColumnGlobalReadyAt();
            const Cycle act_global = channel_.activateGlobalReadyAt();
            const Cycle pre_global = channel_.commandBusFreeAt();
            for (const Request &w : write_q_) {
                bool row_hit = false;
                const NextCmd cmd = nextCommand(w, &row_hit);
                const std::uint32_t b = w.coord.bank;
                Cycle ready = kNeverCycle;
                switch (cmd) {
                case NextCmd::Column:
                    ready = std::max(channel_.bankReadyColumn(b),
                                     col_global);
                    break;
                case NextCmd::Activate:
                    ready = std::max(channel_.bankReadyActivate(b),
                                     act_global);
                    break;
                case NextCmd::Precharge:
                    ready = std::max(channel_.bankReadyPrecharge(b),
                                     pre_global);
                    break;
                case NextCmd::None:
                    break;
                }
                fold(ready);
                if (raw <= next_tick)
                    return next_tick;
            }
        }
    }

    // (d) Refresh fires at the first DRAM cycle at/after its deadline
    // with a free command bus; due-but-bus-busy ticks do nothing (they
    // return before the scheduling stage). The command bus state cannot
    // change inside a gap (no commands issue), so this bound is exact.
    if (channel_.refreshEnabled()) {
        fold(std::max(channel_.nextRefreshDue(),
                      channel_.commandBusFreeAt()));
        if (raw <= next_tick)
            return next_tick;
    }

    // (e) APD: a drop needs an APD scan at/after the request's drop
    // deadline. Any aligned scan cycle earlier than
    // alignUp(max(next_apd_scan_, min_deadline)) is earlier than the
    // minimum deadline, so no drop can precede the folded cycle. The
    // O(queue) deadline refinement only runs when the bare scan
    // schedule would otherwise bound the jump.
    if (config_.apd_enabled) {
        bool any_pref = false;
        for (std::uint64_t mask = occupied_banks_; mask != 0;
             mask &= mask - 1) {
            const auto b = static_cast<std::uint32_t>(__builtin_ctzll(mask));
            if (shards_[b].pref_core_mask != 0) {
                any_pref = true;
                break;
            }
        }
        if (any_pref) {
            const Cycle scan_base = std::max(next_apd_scan_, from);
            const Cycle bare_scan =
                (scan_base + period - 1) / period * period;
            if (bare_scan < raw) {
                Cycle min_deadline = kNeverCycle;
                for (std::uint32_t slot = pool_.head();
                     slot != RequestPool::kNone; slot = pool_.next(slot)) {
                    const Request &req = pool_.at(slot);
                    if (req.isPrefetch() &&
                        req.state == RequestState::Queued) {
                        min_deadline =
                            std::min(min_deadline, apd_.dropDeadline(req));
                    }
                }
                if (min_deadline != kNeverCycle)
                    fold(std::max(next_apd_scan_, min_deadline));
            }
        }
    }

    if (raw == kNeverCycle)
        return kNeverCycle;
    return (raw + period - 1) / period * period;
}

void
MemoryController::skipTo(Cycle from, Cycle to)
{
    const Cycle period = channel_.timing().cpu_per_dram_cycle;
    // The jump path always calls nextEventCycle(from) immediately before
    // skipTo(from, to); reuse its alignUp(from) memo when it matches.
    const Cycle first = from == nec_from_
                            ? nec_next_tick_
                            : (from + period - 1) / period * period;
    if (first >= to)
        return; // the gap contains no DRAM cycle
    const std::uint64_t ticks = (to - 1 - first) / period + 1;
    stats_.dram_cycles += ticks;
    stats_.read_queue_occupancy_sum +=
        ticks * static_cast<std::uint64_t>(pool_.size());
    if (config_.apd_enabled) {
        // Replay the APD scan schedule across the gap: a scan advances
        // next_apd_scan_ even when it drops nothing, and the schedule
        // (the age quantum is not a multiple of the DRAM clock) must
        // stay bit-identical with the cycle-by-cycle loop. No scan in
        // the gap can drop anything -- nextEventCycle() bounded the gap
        // by the earliest possible drop.
        while (true) {
            Cycle scan = std::max(next_apd_scan_, first);
            scan = (scan + period - 1) / period * period;
            if (scan >= to)
                break;
            next_apd_scan_ = scan + config_.age_quantum;
        }
    }
}

} // namespace padc::memctrl
