#include "memctrl/controller.hh"

#include <algorithm>
#include <cassert>

namespace padc::memctrl
{

MemoryController::MemoryController(const SchedulerConfig &config,
                                   dram::Channel &channel,
                                   AccuracyTracker &tracker,
                                   ResponseHandler &handler,
                                   std::uint32_t num_cores)
    : config_(config), channel_(channel), tracker_(tracker),
      handler_(handler), num_cores_(num_cores),
      context_(config_, tracker_), apd_(config_, tracker_)
{
    assert(num_cores_ <= kMaxCores);
    shards_.resize(channel_.numBanks());
    for (auto &shard : shards_)
        shard.pref_by_core.assign(num_cores_, 0);
}

// --- incremental bookkeeping ------------------------------------------

void
MemoryController::trackEnqueued(Request &req)
{
    assert(req.core < num_cores_);
    BankShard &shard = shards_[req.coord.bank];
    req.bank_slot = static_cast<std::uint32_t>(shard.queued.size());
    shard.queued.push_back(&req);
    if (req.is_prefetch) {
        if (shard.pref_by_core[req.core]++ == 0)
            shard.pref_core_mask |= 1ULL << req.core;
        ++prefs_per_core_[req.core];
    } else {
        ++shard.queued_demands;
        ++demands_per_core_[req.core];
    }
    ++pending_rows_[rowKey(req.coord)];
    shard.wake = 0; // new arrival: rescan this bank
}

void
MemoryController::untrackQueued(Request &req)
{
    assert(req.state == RequestState::Queued);
    BankShard &shard = shards_[req.coord.bank];
    Request *moved = shard.queued.back();
    shard.queued[req.bank_slot] = moved;
    moved->bank_slot = req.bank_slot;
    shard.queued.pop_back();
    if (req.is_prefetch) {
        if (--shard.pref_by_core[req.core] == 0)
            shard.pref_core_mask &= ~(1ULL << req.core);
    } else {
        --shard.queued_demands;
    }
    auto it = pending_rows_.find(rowKey(req.coord));
    if (--it->second == 0)
        pending_rows_.erase(it);
}

void
MemoryController::trackPromoted(Request &req)
{
    assert(req.is_prefetch);
    --prefs_per_core_[req.core];
    ++demands_per_core_[req.core];
    if (req.state == RequestState::Queued) {
        BankShard &shard = shards_[req.coord.bank];
        if (--shard.pref_by_core[req.core] == 0)
            shard.pref_core_mask &= ~(1ULL << req.core);
        ++shard.queued_demands;
    }
}

std::uint64_t
MemoryController::accurateCoreMask() const
{
    std::uint64_t mask = 0;
    for (std::uint32_t c = 0; c < num_cores_; ++c) {
        if (context_.coreAccurate(c))
            mask |= 1ULL << c;
    }
    return mask;
}

bool
MemoryController::shardHasPreferred(const BankShard &shard,
                                    std::uint64_t accurate_mask) const
{
    switch (config_.kind) {
      case SchedPolicyKind::FrFcfs:
        return !shard.queued.empty(); // every request is class 1
      case SchedPolicyKind::DemandFirst:
        return shard.queued_demands > 0;
      case SchedPolicyKind::PrefetchFirst:
        return shard.pref_core_mask != 0;
      case SchedPolicyKind::Aps:
        return shard.queued_demands > 0 ||
               (shard.pref_core_mask & accurate_mask) != 0;
    }
    return false;
}

Cycle
MemoryController::bankLocalReady(std::uint32_t bank, NextCmd cmd) const
{
    switch (cmd) {
      case NextCmd::Precharge:
        return channel_.bankReadyPrecharge(bank);
      case NextCmd::Activate:
        return channel_.bankReadyActivate(bank);
      case NextCmd::Column:
        return channel_.bankReadyColumn(bank);
      case NextCmd::None:
        break;
    }
    return kNeverCycle;
}

// --- queue admission --------------------------------------------------

bool
MemoryController::enqueueRead(const dram::DramCoord &coord, Addr line_addr,
                              CoreId core, Addr pc, bool is_prefetch,
                              Cycle now)
{
    // Duplicate of an outstanding read: coalesce with it instead of
    // corrupting read_index_ (formerly an assert, i.e. silent corruption
    // in NDEBUG builds). A demand duplicate promotes the in-flight
    // prefetch, mirroring what the L2 does on a demand match.
    auto dup = read_index_.find(line_addr);
    if (dup != read_index_.end()) {
        ++stats_.duplicate_reads;
        traceRequest(telemetry::EventKind::Coalesce, *dup->second, now);
        if (!is_prefetch && dup->second->is_prefetch)
            promote(line_addr, now);
        return true;
    }

    // Forward from the write queue: the newest data for this line is
    // sitting in the controller, so no DRAM access is needed.
    if (write_index_.find(line_addr) != write_index_.end()) {
        Request req;
        req.line_addr = line_addr;
        req.coord = coord;
        req.core = core;
        req.pc = pc;
        req.is_prefetch = is_prefetch;
        req.was_prefetch = is_prefetch;
        req.arrival = now;
        req.seq = next_seq_++;
        req.state = RequestState::Done;
        req.row_outcome = Request::RowOutcome::Hit;
        const Cycle ready =
            now + channel_.timing().toCpu(channel_.timing().tCL);
        forwards_.push_back({req, ready});
        ++stats_.forwarded_reads;
        traceRequest(telemetry::EventKind::Forward, req, now);
        if (is_prefetch)
            tracker_.onPrefetchSent(core);
        return true;
    }

    if (readBufferFull()) {
        if (is_prefetch)
            ++stats_.prefetches_rejected_full;
        else
            ++stats_.demands_rejected_full;
        if (trace_ != nullptr) {
            Request rejected;
            rejected.line_addr = line_addr;
            rejected.coord = coord;
            rejected.core = core;
            rejected.is_prefetch = is_prefetch;
            rejected.was_prefetch = is_prefetch;
            traceRequest(telemetry::EventKind::RejectFull, rejected, now);
        }
        return false;
    }

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.pc = pc;
    req.is_prefetch = is_prefetch;
    req.was_prefetch = is_prefetch;
    req.arrival = now;
    req.seq = next_seq_++;
    read_q_.push_back(req);
    read_index_[line_addr] = std::prev(read_q_.end());
    trackEnqueued(read_q_.back());
    traceRequest(telemetry::EventKind::Enqueue, read_q_.back(), now);
    if (is_prefetch)
        tracker_.onPrefetchSent(core);
    return true;
}

void
MemoryController::enqueueWrite(const dram::DramCoord &coord, Addr line_addr,
                               CoreId core, Cycle now)
{
    if (write_index_.find(line_addr) != write_index_.end())
        return; // coalesce with the pending write of the same line

    Request req;
    req.line_addr = line_addr;
    req.coord = coord;
    req.core = core;
    req.is_write = true;
    req.arrival = now;
    req.seq = next_seq_++;
    write_q_.push_back(req);
    write_index_[line_addr] = std::prev(write_q_.end());
    ++pending_rows_[rowKey(coord)];
    traceRequest(telemetry::EventKind::EnqueueWrite, write_q_.back(), now);
}

bool
MemoryController::promote(Addr line_addr, Cycle now)
{
    auto it = read_index_.find(line_addr);
    if (it == read_index_.end() || !it->second->is_prefetch)
        return false;
    trackPromoted(*it->second);
    it->second->is_prefetch = false;
    ++stats_.promotions;
    traceRequest(telemetry::EventKind::Promote, *it->second, now);
    return true;
}

// --- command selection ------------------------------------------------

MemoryController::NextCmd
MemoryController::nextCommand(const Request &req, bool *row_hit) const
{
    const std::uint64_t open = channel_.openRow(req.coord.bank);
    if (open == req.coord.row) {
        *row_hit = true;
        return NextCmd::Column;
    }
    *row_hit = false;
    return open == dram::kNoOpenRow ? NextCmd::Activate : NextCmd::Precharge;
}

bool
MemoryController::commandIssuable(const Request &req, NextCmd cmd,
                                  Cycle now) const
{
    switch (cmd) {
      case NextCmd::Precharge:
        return channel_.canPrecharge(req.coord.bank, now);
      case NextCmd::Activate:
        return channel_.canActivate(req.coord.bank, now);
      case NextCmd::Column:
        return channel_.canColumn(req.coord.bank, req.is_write, now);
      case NextCmd::None:
        break;
    }
    return false;
}

bool
MemoryController::pendingSameRow(const Request &req) const
{
    if (config_.reference_scheduler) {
        // Golden model: the naive scans, independent of the counters.
        for (const auto &other : read_q_) {
            if (&other != &req && other.state == RequestState::Queued &&
                other.coord.bank == req.coord.bank &&
                other.coord.row == req.coord.row) {
                return true;
            }
        }
        for (const auto &other : write_q_) {
            if (&other != &req && other.coord.bank == req.coord.bank &&
                other.coord.row == req.coord.row) {
                return true;
            }
        }
        return false;
    }
    // req itself is counted (a queued read or a pending write), so
    // another request targets the same (bank,row) iff the counter
    // exceeds one.
    auto it = pending_rows_.find(rowKey(req.coord));
    return it != pending_rows_.end() && it->second > 1;
}

void
MemoryController::issueCommand(Request &req, NextCmd cmd, bool row_hit,
                               Cycle now)
{
    if (issue_log_ != nullptr) {
        issue_log_->push_back({now, static_cast<std::uint8_t>(cmd),
                               req.is_write, req.coord.bank, req.coord.row,
                               req.seq});
    }
    switch (cmd) {
      case NextCmd::Precharge:
        channel_.precharge(req.coord.bank, now);
        req.row_outcome = Request::RowOutcome::Conflict;
        break;
      case NextCmd::Activate:
        channel_.activate(req.coord.bank, req.coord.row, now);
        if (req.row_outcome == Request::RowOutcome::Unknown)
            req.row_outcome = Request::RowOutcome::Closed;
        break;
      case NextCmd::Column: {
        const bool auto_pre = config_.row_policy == RowPolicy::Closed &&
                              !pendingSameRow(req);
        req.data_ready =
            channel_.column(req.coord.bank, req.is_write, auto_pre, now);
        if (req.row_outcome == Request::RowOutcome::Unknown) {
            req.row_outcome = row_hit ? Request::RowOutcome::Hit
                                      : Request::RowOutcome::Conflict;
        }
        if (!req.is_write) {
            // Queued -> Servicing: the read leaves its bank shard and
            // joins the (seq-sorted) in-flight set.
            untrackQueued(req);
            const auto it = read_index_.find(req.line_addr)->second;
            servicing_.insert(
                std::lower_bound(servicing_.begin(), servicing_.end(), it,
                                 [](const ReadList::iterator &a,
                                    const ReadList::iterator &b) {
                                     return a->seq < b->seq;
                                 }),
                it);
        }
        req.state = RequestState::Servicing;
        break;
      }
      case NextCmd::None:
        break;
    }
    if (trace_ != nullptr && cmd != NextCmd::None) {
        telemetry::EventKind kind;
        switch (cmd) {
          case NextCmd::Precharge:
            kind = telemetry::EventKind::CmdPrecharge;
            break;
          case NextCmd::Activate:
            kind = telemetry::EventKind::CmdActivate;
            break;
          default:
            kind = req.is_write ? telemetry::EventKind::CmdWrite
                                : telemetry::EventKind::CmdRead;
            break;
        }
        traceRequest(kind, req, now);
    }
    // The command changed this bank's state (open row and/or readiness),
    // so its cached wake-up hint is stale.
    shards_[req.coord.bank].wake = 0;
}

void
MemoryController::finishRead(ReadList::iterator it, Cycle now)
{
    Request &req = *it;
    req.state = RequestState::Done;

    if (req.isDemand()) {
        ++stats_.demand_reads;
        if (req.row_outcome == Request::RowOutcome::Hit)
            ++stats_.demand_row_hits;
    } else {
        ++stats_.prefetch_reads;
    }
    switch (req.row_outcome) {
      case Request::RowOutcome::Hit: ++stats_.read_row_hits; break;
      case Request::RowOutcome::Closed: ++stats_.read_row_closed; break;
      case Request::RowOutcome::Conflict:
        ++stats_.read_row_conflicts;
        break;
      case Request::RowOutcome::Unknown: break;
    }
    stats_.read_service_cycles_sum += now - req.arrival;
    traceRequest(telemetry::EventKind::Complete, req, now, req.arrival);

    if (req.is_prefetch)
        --prefs_per_core_[req.core];
    else
        --demands_per_core_[req.core];

    handler_.dramReadComplete(req, now);
    read_index_.erase(req.line_addr);
    read_q_.erase(it);
}

void
MemoryController::completeFinished(Cycle now)
{
    if (config_.reference_scheduler) {
        // Golden model: front-to-back queue walk.
        for (auto it = read_q_.begin(); it != read_q_.end();) {
            auto next = std::next(it);
            if (it->state == RequestState::Servicing &&
                it->data_ready <= now) {
                servicing_.erase(std::find(servicing_.begin(),
                                           servicing_.end(), it));
                finishRead(it, now);
            }
            it = next;
        }
    } else {
        // servicing_ is seq-sorted, so same-cycle completions are
        // reported in queue (seq) order, exactly like the queue walk.
        for (std::size_t i = 0; i < servicing_.size();) {
            const ReadList::iterator it = servicing_[i];
            if (it->data_ready <= now) {
                servicing_.erase(servicing_.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                finishRead(it, now);
            } else {
                ++i;
            }
        }
    }
    for (auto it = forwards_.begin(); it != forwards_.end();) {
        if (it->ready <= now) {
            traceRequest(telemetry::EventKind::Complete, it->req, now,
                         it->req.arrival);
            handler_.dramReadComplete(it->req, now);
            it = forwards_.erase(it);
        } else {
            ++it;
        }
    }
}

void
MemoryController::runApd(Cycle now)
{
    for (auto it = read_q_.begin(); it != read_q_.end();) {
        auto next = std::next(it);
        if (apd_.shouldDrop(*it, now)) {
            untrackQueued(*it); // only Queued prefetches are droppable
            --prefs_per_core_[it->core];
            it->state = RequestState::Dropped;
            ++stats_.prefetches_dropped;
            traceRequest(telemetry::EventKind::Drop, *it, now, it->arrival);
            tracker_.onPrefetchDropped(it->core);
            handler_.dramPrefetchDropped(*it, now);
            read_index_.erase(it->line_addr);
            read_q_.erase(it);
        }
        it = next;
    }
}

// --- scheduling -------------------------------------------------------

bool
MemoryController::scheduleRead(Cycle now)
{
    if (config_.reference_scheduler)
        return scheduleReadReference(now);

    const std::uint64_t accurate_mask =
        (config_.kind == SchedPolicyKind::Aps || config_.ranking_enabled)
            ? accurateCoreMask()
            : 0;

    if (config_.ranking_enabled) {
        std::array<std::uint32_t, kMaxCores> counts{};
        for (std::uint32_t c = 0; c < num_cores_; ++c) {
            counts[c] = demands_per_core_[c];
            if ((accurate_mask >> c) & 1)
                counts[c] += prefs_per_core_[c];
        }
        context_.updateRanks(counts, num_cores_);
    }

    Request *best = nullptr;
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;
    bool best_hit = false;

    const Cycle retry = now + channel_.timing().cpu_per_dram_cycle;
    for (std::uint32_t b = 0; b < shards_.size(); ++b) {
        BankShard &shard = shards_[b];
        if (shard.queued.empty() || now < shard.wake)
            continue;
        const bool has_preferred = shardHasPreferred(shard, accurate_mask);
        Cycle wake = kNeverCycle;
        bool issuable_here = false;

        // All requests to this bank need one of at most two distinct
        // commands (Column/Precharge against the open row, or Activate
        // when closed), and command legality does not depend on which
        // request wants it -- so resolve the bank state and each
        // command's legality once per shard, not once per request.
        const std::uint64_t open = channel_.openRow(b);
        const bool bank_open = open != dram::kNoOpenRow;
        int col_ok = -1; // lazy tri-state: -1 unknown, else 0/1
        int pre_ok = -1;
        int act_ok = -1;

        for (Request *req : shard.queued) {
            NextCmd cmd;
            bool row_hit = false;
            bool issuable;
            if (!bank_open) {
                cmd = NextCmd::Activate;
                if (act_ok < 0)
                    act_ok = channel_.canActivate(b, now) ? 1 : 0;
                issuable = act_ok != 0;
            } else if (req->coord.row == open) {
                cmd = NextCmd::Column;
                row_hit = true;
                if (col_ok < 0)
                    col_ok = channel_.canColumn(b, false, now) ? 1 : 0;
                issuable = col_ok != 0;
            } else {
                cmd = NextCmd::Precharge;
                if (pre_ok < 0)
                    pre_ok = channel_.canPrecharge(b, now) ? 1 : 0;
                issuable = pre_ok != 0;
            }
            const bool blocked =
                has_preferred && context_.requestClass(*req) == 0;
            if (!blocked && issuable) {
                issuable_here = true;
                const std::uint64_t key =
                    context_.priorityKey(*req, row_hit);
                if (best == nullptr || key > best_key) {
                    best = req;
                    best_key = key;
                    best_cmd = cmd;
                    best_hit = row_hit;
                }
            } else {
                // Fold this request's bank-local readiness into the
                // shard's wake-up hint. A request that is bank-ready but
                // held back (class blocking or a channel-global
                // constraint) forces a retry next DRAM cycle, since that
                // blocking state can change with any issued command.
                const Cycle local = bankLocalReady(b, cmd);
                wake = std::min(wake, local <= now ? retry : local);
            }
        }
        // An issuable-but-not-chosen request must be reconsidered next
        // cycle; otherwise sleep until the earliest bank-local readiness.
        shard.wake = issuable_here ? now : wake;
    }
    if (best == nullptr)
        return false;
    issueCommand(*best, best_cmd, best_hit, now);
    return true;
}

bool
MemoryController::scheduleReadReference(Cycle now)
{
    if (config_.ranking_enabled) {
        std::array<std::uint32_t, kMaxCores> counts{};
        for (const auto &req : read_q_) {
            if (req.core < kMaxCores && context_.isCritical(req))
                ++counts[req.core];
        }
        context_.updateRanks(counts, num_cores_);
    }

    // Strict per-bank class blocking (paper Section 1): a deprioritized
    // request (e.g. a prefetch under demand-first, or a non-critical
    // prefetch under APS) may not be scheduled to a bank while a
    // preferred-class request to the same bank is outstanding -- even if
    // the preferred request is not timing-ready this cycle.
    std::vector<std::uint8_t> bank_has_preferred(channel_.numBanks(), 0);
    for (const auto &req : read_q_) {
        if (req.state == RequestState::Queued &&
            context_.requestClass(req) != 0) {
            bank_has_preferred[req.coord.bank] = 1;
        }
    }

    Request *best = nullptr;
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;
    bool best_hit = false;

    for (auto &req : read_q_) {
        if (req.state != RequestState::Queued)
            continue;
        if (context_.requestClass(req) == 0 &&
            bank_has_preferred[req.coord.bank]) {
            continue;
        }
        bool row_hit = false;
        const NextCmd cmd = nextCommand(req, &row_hit);
        if (!commandIssuable(req, cmd, now))
            continue;
        const std::uint64_t key = context_.priorityKey(req, row_hit);
        if (best == nullptr || key > best_key) {
            best = &req;
            best_key = key;
            best_cmd = cmd;
            best_hit = row_hit;
        }
    }
    if (best == nullptr)
        return false;
    issueCommand(*best, best_cmd, best_hit, now);
    return true;
}

bool
MemoryController::scheduleWrite(Cycle now)
{
    // Writes are scheduled FR-FCFS among themselves (row-hit first,
    // then oldest); prefetch-awareness does not apply to writebacks.
    std::list<Request>::iterator best = write_q_.end();
    std::uint64_t best_key = 0;
    NextCmd best_cmd = NextCmd::None;

    for (auto it = write_q_.begin(); it != write_q_.end(); ++it) {
        bool row_hit = false;
        const NextCmd cmd = nextCommand(*it, &row_hit);
        if (!commandIssuable(*it, cmd, now))
            continue;
        const std::uint64_t key =
            ((row_hit ? 1ULL : 0ULL) << 63) | (~it->seq & 0x7FFFFFFFFFFFFFFF);
        if (best == write_q_.end() || key > best_key) {
            best = it;
            best_key = key;
            best_cmd = cmd;
        }
    }
    if (best == write_q_.end())
        return false;

    issueCommand(*best, best_cmd, best_cmd == NextCmd::Column, now);
    if (best->state == RequestState::Servicing) {
        // Nothing waits on a writeback; retire it at column issue.
        ++stats_.writes;
        traceRequest(telemetry::EventKind::WriteRetire, *best, now,
                     best->arrival);
        auto pending = pending_rows_.find(rowKey(best->coord));
        if (--pending->second == 0)
            pending_rows_.erase(pending);
        write_index_.erase(best->line_addr);
        write_q_.erase(best);
    }
    return true;
}

void
MemoryController::tick(Cycle now)
{
    const auto &timing = channel_.timing();
    if (now % timing.cpu_per_dram_cycle != 0)
        return;

    ++stats_.dram_cycles;
    stats_.read_queue_occupancy_sum += read_q_.size();

    completeFinished(now);

    if (config_.apd_enabled && now >= next_apd_scan_) {
        runApd(now);
        next_apd_scan_ = now + config_.age_quantum;
    }

    if (channel_.refreshDue(now)) {
        if (channel_.commandBusFree(now))
            channel_.refresh(now);
        return;
    }

    if (write_q_.size() >= config_.write_drain_high)
        write_drain_mode_ = true;
    else if (write_q_.size() <= config_.write_drain_low)
        write_drain_mode_ = false;

    if (write_drain_mode_) {
        if (!scheduleWrite(now))
            scheduleRead(now);
    } else {
        if (!scheduleRead(now) && read_q_.empty())
            scheduleWrite(now);
    }
}

} // namespace padc::memctrl
