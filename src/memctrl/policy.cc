#include "memctrl/policy.hh"

#include <algorithm>

namespace padc::memctrl
{

namespace
{

/// Width of the inverted-arrival (FCFS) field in the packed key.
constexpr std::uint32_t kArrivalBits = 52;
constexpr std::uint64_t kArrivalMask = (1ULL << kArrivalBits) - 1;

constexpr std::uint32_t kRankShift = kArrivalBits;        // 8 bits
constexpr std::uint32_t kUrgentShift = kRankShift + 8;    // 1 bit
constexpr std::uint32_t kRowHitShift = kUrgentShift + 1;  // 1 bit
constexpr std::uint32_t kLevel0Shift = kRowHitShift + 1;  // 1 bit

} // namespace

void
SchedulerConfig::validate(ConfigErrors &errors,
                          const std::string &prefix) const
{
    if (request_buffer_size == 0)
        errors.add(prefix + ".request_buffer_size", "must be >= 1");
    if (write_buffer_size == 0)
        errors.add(prefix + ".write_buffer_size", "must be >= 1");
    if (write_drain_low >= write_drain_high) {
        errors.add(prefix + ".write_drain_low",
                   "must be < write_drain_high (" +
                       std::to_string(write_drain_low) +
                       " >= " + std::to_string(write_drain_high) + ")");
    }
    if (promotion_threshold < 0.0 || promotion_threshold > 1.0) {
        errors.add(prefix + ".promotion_threshold",
                   "must be within [0, 1]; got " +
                       std::to_string(promotion_threshold));
    }
    if (age_quantum == 0)
        errors.add(prefix + ".age_quantum", "must be >= 1 cycle");
    for (std::size_t i = 0; i < drop_accuracy_bounds.size(); ++i) {
        const double bound = drop_accuracy_bounds[i];
        if (bound <= 0.0 || bound >= 1.0) {
            errors.add(prefix + ".drop_accuracy_bounds[" +
                           std::to_string(i) + "]",
                       "must be within (0, 1); got " +
                           std::to_string(bound));
        }
        if (i > 0 && drop_accuracy_bounds[i - 1] >= bound) {
            errors.add(prefix + ".drop_accuracy_bounds[" +
                           std::to_string(i) + "]",
                       "accuracy bands must be strictly ascending");
        }
    }
    if (accuracy.interval == 0)
        errors.add(prefix + ".accuracy.interval", "must be >= 1 cycle");
    if (accuracy.initial_accuracy < 0.0 ||
        accuracy.initial_accuracy > 1.0) {
        errors.add(prefix + ".accuracy.initial_accuracy",
                   "must be within [0, 1]; got " +
                       std::to_string(accuracy.initial_accuracy));
    }
}

SchedContext::SchedContext(const SchedulerConfig &config,
                           const AccuracyTracker &tracker)
    : config_(config), tracker_(tracker)
{
}

void
SchedContext::updateRanks(
    const std::array<std::uint32_t, kMaxCores> &critical_counts,
    std::uint32_t num_cores)
{
    if (!config_.ranking_enabled)
        return;
    // Shortest job first: fewer outstanding critical requests -> higher
    // rank. Encoding the (saturated) complement of the count preserves
    // the ordering without a sort and gives equal-count cores equal rank.
    for (std::uint32_t i = 0; i < num_cores && i < kMaxCores; ++i) {
        const std::uint32_t count = std::min(critical_counts[i], 255u);
        rank_[i] = static_cast<std::uint8_t>(255u - count);
    }
}

std::uint32_t
SchedContext::requestClass(const Request &req) const
{
    return requestClass(req.is_prefetch, req.core);
}

std::uint32_t
SchedContext::requestClass(bool is_prefetch, CoreId core) const
{
    switch (config_.kind) {
      case SchedPolicyKind::FrFcfs:
        return 1;
      case SchedPolicyKind::DemandFirst:
        return is_prefetch ? 0 : 1;
      case SchedPolicyKind::PrefetchFirst:
        return is_prefetch ? 1 : 0;
      case SchedPolicyKind::Aps:
        return (!is_prefetch || coreAccurate(core)) ? 1 : 0;
    }
    return 1;
}

std::uint64_t
SchedContext::priorityKey(const Request &req, bool row_hit) const
{
    return priorityKey(req.is_prefetch, req.core, req.seq, row_hit);
}

std::uint64_t
SchedContext::priorityKey(bool is_prefetch, CoreId core,
                          std::uint64_t seq, bool row_hit) const
{
    std::uint64_t level0 = 0;
    std::uint64_t urgent = 0;
    std::uint64_t rank = 0;

    switch (config_.kind) {
      case SchedPolicyKind::FrFcfs:
        level0 = 1; // prefetch-blind: every request is in the same class
        break;
      case SchedPolicyKind::DemandFirst:
        level0 = is_prefetch ? 0 : 1;
        break;
      case SchedPolicyKind::PrefetchFirst:
        level0 = is_prefetch ? 1 : 0;
        break;
      case SchedPolicyKind::Aps:
        level0 = (!is_prefetch || coreAccurate(core)) ? 1 : 0;
        if (config_.urgency_enabled)
            urgent = (!is_prefetch && !coreAccurate(core)) ? 1 : 0;
        // Footnote 12: only critical requests are ranked; non-critical
        // requests keep the lowest rank value (0).
        if (config_.ranking_enabled && level0 != 0)
            rank = rank_[core < kMaxCores ? core : 0];
        break;
    }

    const std::uint64_t inv_arrival = (~seq) & kArrivalMask;
    return (level0 << kLevel0Shift) | ((row_hit ? 1ULL : 0ULL)
           << kRowHitShift) | (urgent << kUrgentShift) |
           (rank << kRankShift) | inv_arrival;
}

} // namespace padc::memctrl
