#include "memctrl/policy.hh"

#include <algorithm>
#include <cassert>

namespace padc::memctrl
{

namespace
{

/// Width of the inverted-arrival (FCFS) field in the packed key.
constexpr std::uint32_t kArrivalBits = 52;
constexpr std::uint64_t kArrivalMask = (1ULL << kArrivalBits) - 1;

constexpr std::uint32_t kRankShift = kArrivalBits;        // 8 bits
constexpr std::uint32_t kUrgentShift = kRankShift + 8;    // 1 bit
constexpr std::uint32_t kRowHitShift = kUrgentShift + 1;  // 1 bit
constexpr std::uint32_t kLevel0Shift = kRowHitShift + 1;  // 1 bit

// Lattice-slot shorthand: {level, urgent}.
constexpr LatticeSlot kLo{0, false};   // deprioritized
constexpr LatticeSlot kHi{1, false};   // preferred
constexpr LatticeSlot kHiU{1, true};   // preferred + urgency-boosted

/**
 * Per-policy lattice tables, indexed by SchedPolicyKind enumerator
 * value. Row order within each table is the RequestClass enumerator
 * order: DemandRead, Prefetch, Writeback, PtwRead, DramCacheFill; the
 * two columns per row are {inaccurate core, accurate core}.
 *
 * Writeback rows are reserved (write queue schedules FR-FCFS without
 * consulting the lattice); they carry the level the class *would* have
 * so a future lattice-scheduled writeback path starts from sensible
 * defaults. PtwRead mirrors DemandRead (translation stalls retire
 * instructions exactly like demand misses); DramCacheFill mirrors
 * Prefetch (speculative fill traffic, accuracy-gated under APS).
 */
constexpr PolicyLattice kLattices[] = {
    // FrFcfs: prefetch-blind, every class level 1.
    {{{
         {{kHi, kHi}},   // DemandRead
         {{kHi, kHi}},   // Prefetch
         {{kHi, kHi}},   // Writeback (reserved)
         {{kHi, kHi}},   // PtwRead (reserved)
         {{kHi, kHi}},   // DramCacheFill (reserved)
     }},
     /*ranked=*/false},
    // DemandFirst: demand-like classes over prefetch-like classes.
    {{{
         {{kHi, kHi}},   // DemandRead
         {{kLo, kLo}},   // Prefetch
         {{kHi, kHi}},   // Writeback (reserved)
         {{kHi, kHi}},   // PtwRead (reserved)
         {{kLo, kLo}},   // DramCacheFill (reserved)
     }},
     /*ranked=*/false},
    // PrefetchFirst: prefetch-like classes over demand-like classes
    // (footnote 2 of the paper).
    {{{
         {{kLo, kLo}},   // DemandRead
         {{kHi, kHi}},   // Prefetch
         {{kHi, kHi}},   // Writeback (reserved)
         {{kLo, kLo}},   // PtwRead (reserved)
         {{kHi, kHi}},   // DramCacheFill (reserved)
     }},
     /*ranked=*/false},
    // Aps: critical (demand, or prefetch from an accurate core) over
    // non-critical; demands from inaccurate cores are urgency-boosted
    // (Rule 1 step 3); critical requests are ranked (Rule 2).
    {{{
         {{kHiU, kHi}},  // DemandRead
         {{kLo, kHi}},   // Prefetch
         {{kHi, kHi}},   // Writeback (reserved)
         {{kHiU, kHi}},  // PtwRead (reserved)
         {{kLo, kHi}},   // DramCacheFill (reserved)
     }},
     /*ranked=*/true},
};

static_assert(static_cast<std::size_t>(SchedPolicyKind::FrFcfs) == 0 &&
                  static_cast<std::size_t>(SchedPolicyKind::DemandFirst) ==
                      1 &&
                  static_cast<std::size_t>(
                      SchedPolicyKind::PrefetchFirst) == 2 &&
                  static_cast<std::size_t>(SchedPolicyKind::Aps) == 3,
              "kLattices[] rows are indexed by SchedPolicyKind value");
static_assert(sizeof(kLattices) / sizeof(kLattices[0]) == 4,
              "one lattice table per SchedPolicyKind");
static_assert(static_cast<std::size_t>(RequestClass::DemandRead) == 0 &&
                  static_cast<std::size_t>(RequestClass::Prefetch) == 1 &&
                  static_cast<std::size_t>(RequestClass::Writeback) == 2 &&
                  static_cast<std::size_t>(RequestClass::PtwRead) == 3 &&
                  static_cast<std::size_t>(RequestClass::DramCacheFill) ==
                      4,
              "lattice rows are indexed by RequestClass value");

/**
 * The shard aggregate checks (shardHasPreferred/shardHasLevelZero)
 * summarize demands with a single count, so a demand's lattice level
 * must not depend on per-core accuracy. Every current policy satisfies
 * this; a policy that wants accuracy-dependent demand levels must add
 * a per-core demand mask to BankShard first.
 */
constexpr bool
demandLevelsAccuracyIndependent()
{
    for (const PolicyLattice &lattice : kLattices) {
        const auto &demand =
            lattice.slots[static_cast<std::size_t>(
                RequestClass::DemandRead)];
        if (demand[0].level != demand[1].level)
            return false;
    }
    return true;
}

static_assert(demandLevelsAccuracyIndependent(),
              "shard demand counters assume accuracy-independent "
              "demand levels");

bool
accuracyDependent(const PolicyLattice &lattice)
{
    for (const auto &row : lattice.slots) {
        if (row[0].level != row[1].level || row[0].urgent != row[1].urgent)
            return true;
    }
    return false;
}

} // namespace

const PolicyLattice &
policyLattice(SchedPolicyKind kind)
{
    return kLattices[static_cast<std::size_t>(kind)];
}

void
SchedulerConfig::validate(ConfigErrors &errors,
                          const std::string &prefix) const
{
    if (request_buffer_size == 0)
        errors.add(prefix + ".request_buffer_size", "must be >= 1");
    if (write_buffer_size == 0)
        errors.add(prefix + ".write_buffer_size", "must be >= 1");
    if (write_drain_low >= write_drain_high) {
        errors.add(prefix + ".write_drain_low",
                   "must be < write_drain_high (" +
                       std::to_string(write_drain_low) +
                       " >= " + std::to_string(write_drain_high) + ")");
    }
    if (promotion_threshold < 0.0 || promotion_threshold > 1.0) {
        errors.add(prefix + ".promotion_threshold",
                   "must be within [0, 1]; got " +
                       std::to_string(promotion_threshold));
    }
    if (age_quantum == 0)
        errors.add(prefix + ".age_quantum", "must be >= 1 cycle");
    for (std::size_t i = 0; i < drop_accuracy_bounds.size(); ++i) {
        const double bound = drop_accuracy_bounds[i];
        if (bound <= 0.0 || bound >= 1.0) {
            errors.add(prefix + ".drop_accuracy_bounds[" +
                           std::to_string(i) + "]",
                       "must be within (0, 1); got " +
                           std::to_string(bound));
        }
        if (i > 0 && drop_accuracy_bounds[i - 1] >= bound) {
            errors.add(prefix + ".drop_accuracy_bounds[" +
                           std::to_string(i) + "]",
                       "accuracy bands must be strictly ascending");
        }
    }
    if (accuracy.interval == 0)
        errors.add(prefix + ".accuracy.interval", "must be >= 1 cycle");
    if (accuracy.initial_accuracy < 0.0 ||
        accuracy.initial_accuracy > 1.0) {
        errors.add(prefix + ".accuracy.initial_accuracy",
                   "must be within [0, 1]; got " +
                       std::to_string(accuracy.initial_accuracy));
    }
}

void
validateCoreCount(std::uint32_t num_cores, ConfigErrors &errors,
                  const std::string &field)
{
    if (num_cores == 0)
        errors.add(field, "must be >= 1");
    if (num_cores > kMaxCores) {
        errors.add(field, "must be <= " + std::to_string(kMaxCores) +
                              " (packed rank field width); got " +
                              std::to_string(num_cores));
    }
}

SchedContext::SchedContext(const SchedulerConfig &config,
                           const AccuracyTracker &tracker)
    : config_(config), tracker_(tracker),
      lattice_(policyLattice(config.kind)),
      accuracy_dependent_(accuracyDependent(lattice_))
{
}

void
SchedContext::updateRanks(
    const std::array<std::uint32_t, kMaxCores> &critical_counts,
    std::uint32_t num_cores)
{
    if (!config_.ranking_enabled)
        return;
    // Shortest job first: fewer outstanding critical requests -> higher
    // rank. Encoding the (saturated) complement of the count preserves
    // the ordering without a sort and gives equal-count cores equal rank.
    for (std::uint32_t i = 0; i < num_cores && i < kMaxCores; ++i) {
        const std::uint32_t count = std::min(critical_counts[i], 255u);
        rank_[i] = static_cast<std::uint8_t>(255u - count);
    }
}

std::uint32_t
SchedContext::latticeLevel(RequestClass cls, CoreId core) const
{
    return lattice_.of(cls)[coreAccurate(core) ? 1 : 0].level;
}

bool
SchedContext::shardHasPreferred(std::uint32_t queued_demands,
                                std::uint64_t pref_core_mask,
                                std::uint64_t accurate_mask) const
{
    const auto &demand = lattice_.of(RequestClass::DemandRead);
    const auto &pref = lattice_.of(RequestClass::Prefetch);
    if (queued_demands > 0 && demand[0].level > 0)
        return true;
    const bool pref_inacc = pref[0].level > 0;
    const bool pref_acc = pref[1].level > 0;
    if (pref_acc && pref_inacc)
        return pref_core_mask != 0;
    if (pref_acc)
        return (pref_core_mask & accurate_mask) != 0;
    if (pref_inacc)
        return (pref_core_mask & ~accurate_mask) != 0;
    return false;
}

bool
SchedContext::shardHasLevelZero(std::uint32_t queued_demands,
                                std::uint64_t pref_core_mask,
                                std::uint64_t accurate_mask) const
{
    const auto &demand = lattice_.of(RequestClass::DemandRead);
    const auto &pref = lattice_.of(RequestClass::Prefetch);
    if (queued_demands > 0 && demand[0].level == 0)
        return true;
    const bool pref_inacc = pref[0].level > 0;
    const bool pref_acc = pref[1].level > 0;
    if (!pref_acc && !pref_inacc)
        return pref_core_mask != 0;
    if (!pref_acc)
        return (pref_core_mask & accurate_mask) != 0;
    if (!pref_inacc)
        return (pref_core_mask & ~accurate_mask) != 0;
    return false;
}

std::uint64_t
SchedContext::priorityKey(const Request &req, bool row_hit) const
{
    return priorityKey(req.cls, req.core, req.seq, row_hit);
}

std::uint64_t
SchedContext::priorityKey(RequestClass cls, CoreId core,
                          std::uint64_t seq, bool row_hit) const
{
    assert(core < kMaxCores);
    const LatticeSlot slot = lattice_.of(cls)[coreAccurate(core) ? 1 : 0];

    const std::uint64_t level0 = slot.level;
    const std::uint64_t urgent =
        (slot.urgent && config_.urgency_enabled) ? 1 : 0;
    // Footnote 12: only critical (level-1) requests are ranked;
    // level-0 requests keep the lowest rank value (0).
    std::uint64_t rank = 0;
    if (lattice_.ranked && config_.ranking_enabled && slot.level != 0)
        rank = rank_[core];

    const std::uint64_t inv_arrival = (~seq) & kArrivalMask;
    return (level0 << kLevel0Shift) | ((row_hit ? 1ULL : 0ULL)
           << kRowHitShift) | (urgent << kUrgentShift) |
           (rank << kRankShift) | inv_arrival;
}

} // namespace padc::memctrl
