/**
 * @file
 * Memory request representation used by the memory request buffer.
 *
 * Each entry carries the per-request fields of the paper's Figure 5 /
 * Figure 18: criticality (derived from the P bit and the owning core's
 * prefetch accuracy), row-hit status (derived from the bank state at
 * scheduling time), urgency, rank, FCFS arrival time, the Prefetch bit,
 * the core ID, and the AGE counter used by Adaptive Prefetch Dropping.
 */

#ifndef PADC_MEMCTRL_REQUEST_HH
#define PADC_MEMCTRL_REQUEST_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "dram/address_map.hh"

namespace padc::memctrl
{

/** Lifecycle of a memory request inside the controller. */
enum class RequestState : std::uint8_t
{
    Queued,   ///< waiting in the memory request buffer
    Servicing, ///< column command issued, data in flight
    Done,     ///< data transferred
    Dropped,  ///< removed by Adaptive Prefetch Dropping
};

/**
 * One entry of the memory request buffer.
 *
 * Requests are created by the L2 miss path (demands and prefetches) and
 * by dirty-line writebacks. Ownership stays with the MemoryController;
 * other components refer to requests only during callbacks.
 */
struct Request
{
    Addr line_addr = kInvalidAddr; ///< line-aligned byte address
    dram::DramCoord coord;         ///< DRAM coordinates of line_addr
    CoreId core = 0;               ///< ID field (Fig. 5)
    Addr pc = 0;                   ///< PC of the triggering instruction

    /**
     * Request class (the lattice row this request is ranked under).
     * Generalizes the paper's P bit: Prefetch while the request is a
     * live prefetch; rewritten to DemandRead when a demand from the
     * processor matches the request in the buffer (the request is
     * thereby promoted to a demand).
     */
    RequestClass cls = RequestClass::DemandRead;

    /**
     * True if the request was *generated* by the prefetcher, regardless
     * of later promotion. Used for bus-traffic classification: the paper
     * counts promoted prefetches as useful prefetches.
     */
    bool was_prefetch = false;

    Cycle arrival = 0; ///< entry cycle into the buffer (drives AGE)

    /**
     * FCFS field: controller-unique, monotonically increasing sequence
     * number. Used instead of the raw arrival cycle so that requests
     * enqueued in the same cycle still have a deterministic total order.
     */
    std::uint64_t seq = 0;

    RequestState state = RequestState::Queued;

    /**
     * Index of this request in its bank's queued-request shard while
     * state == Queued (scheduler bookkeeping, maintained by the
     * controller; meaningless in any other state).
     */
    std::uint32_t bank_slot = 0;

    /** How the request was ultimately serviced by the DRAM. */
    enum class RowOutcome : std::uint8_t { Unknown, Hit, Closed, Conflict };
    RowOutcome row_outcome = RowOutcome::Unknown;

    /** Cycle at which the data transfer completes (valid in Servicing). */
    Cycle data_ready = kNeverCycle;

    /** P bit: true while the request is a live (unpromoted) prefetch. */
    bool isPrefetch() const { return cls == RequestClass::Prefetch; }

    /** True for dirty-line writebacks (never a prefetch). */
    bool isWrite() const { return cls == RequestClass::Writeback; }

    /** True for demand requests and promoted prefetches. */
    bool isDemand() const { return cls == RequestClass::DemandRead; }

    /**
     * AGE field: quantized residence time in the request buffer.
     * The paper increments AGE every 100 processor cycles; the quantum is
     * a config knob of the dropping unit.
     */
    Cycle ageCycles(Cycle now) const { return now - arrival; }
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_REQUEST_HH
