/**
 * @file
 * The Prefetch-Aware DRAM Controller (and its rigid baselines).
 *
 * One MemoryController drives one DRAM channel. It owns the memory
 * request buffer (reads: demands + prefetches) and a writeback queue,
 * schedules one DRAM command per DRAM command-clock cycle according to
 * the configured policy (see memctrl::SchedContext), runs the Adaptive
 * Prefetch Dropping unit, and reports completions/drops to a
 * ResponseHandler (the cache hierarchy).
 *
 * Scheduling model: each DRAM cycle the controller considers every
 * queued read whose *next* DRAM command (PRE / ACT / RD) is legal right
 * now, picks the one with the highest policy priority key, and issues
 * that single command. Requests therefore progress PRE -> ACT -> RD over
 * several cycles and can be overtaken between commands, exactly like a
 * real FR-FCFS pipeline. Writebacks are drained when the write queue
 * exceeds a high watermark or when no reads are pending.
 *
 * Scheduler implementation: the request buffer is sharded per bank with
 * incremental bookkeeping so that a scheduling round touches only banks
 * that may actually have an issuable command (see DESIGN.md,
 * "Performance architecture"):
 *  - per-bank lists of *queued* reads, so a round never walks requests
 *    that are already in flight;
 *  - a cached per-bank wake-up cycle (lower bound on the next cycle any
 *    command to that bank could be bank-locally legal), invalidated on
 *    enqueue and whenever a command changes the bank's state;
 *  - per-(bank,row) pending counters replacing the O(queue) same-row
 *    scan of the closed-row policy;
 *  - per-bank demand/prefetch occupancy counters and per-core criticality
 *    counters replacing the per-cycle class-mask and ranking rescans.
 * The naive O(queue) scheduler is retained behind
 * SchedulerConfig::reference_scheduler as the golden model; both paths
 * are decision-identical (same command each cycle, same stats).
 *
 * Storage: request buffer entries live in an arena (RequestPool) with
 * structure-of-arrays hot columns, so the scheduler scan reads dense
 * arrays instead of chasing list nodes. The controller also exposes a
 * next-event computation (nextEventCycle/skipTo) that lets the system
 * loop jump over cycles in which provably nothing here can change; see
 * DESIGN.md "Event-driven main loop".
 */

#ifndef PADC_MEMCTRL_CONTROLLER_HH
#define PADC_MEMCTRL_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/dropping.hh"
#include "memctrl/policy.hh"
#include "memctrl/request.hh"
#include "memctrl/request_pool.hh"
#include "telemetry/telemetry.hh"

namespace padc::memctrl
{

/**
 * Callback interface through which the controller reports request
 * outcomes to the cache hierarchy.
 */
class ResponseHandler
{
  public:
    virtual ~ResponseHandler() = default;

    /** A read's data transfer finished at cycle @p now. */
    virtual void dramReadComplete(const Request &req, Cycle now) = 0;

    /**
     * A prefetch read was dropped by APD (or the line was forwarded from
     * the write queue counts as complete, not dropped). The handler must
     * invalidate the corresponding MSHR entry.
     */
    virtual void dramPrefetchDropped(const Request &req, Cycle now) = 0;
};

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t demand_reads = 0;    ///< serviced demand reads
    std::uint64_t prefetch_reads = 0;  ///< serviced (still-)prefetch reads
    std::uint64_t writes = 0;          ///< serviced writebacks

    std::uint64_t read_row_hits = 0;
    std::uint64_t read_row_closed = 0;
    std::uint64_t read_row_conflicts = 0;
    std::uint64_t demand_row_hits = 0; ///< row-hit among serviced demands

    std::uint64_t prefetches_dropped = 0;       ///< removed by APD
    std::uint64_t prefetches_rejected_full = 0; ///< no buffer entry free
    std::uint64_t demands_rejected_full = 0;    ///< demand found buffer full
    std::uint64_t promotions = 0;               ///< prefetch -> demand
    std::uint64_t forwarded_reads = 0;          ///< served from write queue
    std::uint64_t duplicate_reads = 0;          ///< coalesced duplicate enqueues

    std::uint64_t read_queue_occupancy_sum = 0; ///< per-DRAM-cycle integral
    std::uint64_t dram_cycles = 0;

    /** Sum over serviced reads of (completion - arrival), for Fig. 4(a). */
    std::uint64_t read_service_cycles_sum = 0;

    /**
     * Serviced requests decomposed by RequestClass (class at service
     * time, so a promoted prefetch counts as DemandRead, matching
     * demand_reads). Indexed by RequestClass enumerator value; reserved
     * classes hold zero until a producer exists. Serialized by the
     * worker wire codec and the sweep journal; see sim/metrics.hh.
     */
    std::array<std::uint64_t, kRequestClassCount> serviced_by_class{};
};

/**
 * A single-channel DRAM controller with pluggable prefetch handling.
 */
class MemoryController
{
  public:
    /**
     * @param config scheduling/buffer policy
     * @param channel the DRAM channel this controller owns
     * @param tracker shared per-core prefetch accuracy estimates
     * @param handler completion/drop callback sink
     * @param num_cores cores in the system (for ranking)
     */
    MemoryController(const SchedulerConfig &config, dram::Channel &channel,
                     AccuracyTracker &tracker, ResponseHandler &handler,
                     std::uint32_t num_cores);

    /** True when the memory request buffer has no free read entry. */
    bool readBufferFull() const { return pool_.full(); }

    /**
     * Enqueue a read for @p line_addr.
     *
     * Prefetches are rejected when the buffer is full (the paper's
     * "prefetch not issued because the memory request buffer is full");
     * demands are likewise rejected and the cache must retry (stalling
     * the core). A read that hits the write queue is forwarded and
     * completes shortly without touching DRAM.
     *
     * A well-behaved cache never enqueues two reads for the same line
     * (the L2 MSHR allows at most one miss per line). If a duplicate
     * arrives anyway it is coalesced with the outstanding request instead
     * of corrupting the index: the call counts duplicate_reads, promotes
     * the in-flight prefetch when the duplicate is a demand, and reports
     * success.
     *
     * @return true if accepted (or forwarded, or coalesced).
     *
     * @param cls DemandRead or Prefetch (writebacks go through
     *            enqueueWrite; reserved classes have no producer yet
     *            and are rejected by assertion)
     */
    bool enqueueRead(const dram::DramCoord &coord, Addr line_addr,
                     CoreId core, Addr pc, RequestClass cls, Cycle now);

    /** Enqueue (or coalesce) a dirty-line writeback. Always accepted. */
    void enqueueWrite(const dram::DramCoord &coord, Addr line_addr,
                      CoreId core, Cycle now);

    /**
     * A demand matched the in-flight prefetch for @p line_addr: clear its
     * P bit so it is scheduled as a demand from now on. The caller is
     * responsible for the prefetch-used (PUC) accounting, since a
     * promotion can also hit a read being forwarded from the write queue
     * (which no longer sits in the request buffer).
     * @return true if a queued/in-flight prefetch was found and promoted.
     */
    bool promote(Addr line_addr, Cycle now);

    /** True if a read for @p line_addr is outstanding here. */
    bool hasRead(Addr line_addr) const
    {
        return read_index_.find(line_addr) != read_index_.end();
    }

    /** Advance the controller; call once per processor cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p from at which a tick() of this controller
     * could do anything a skipped tick would not: issue a command,
     * complete a read or forward, fire a refresh, or drop a prefetch.
     * Conservative (waking early is always safe; the returned cycle is
     * never later than the first such cycle). Returns kNeverCycle when
     * the controller is completely idle.
     */
    Cycle nextEventCycle(Cycle from) const;

    /**
     * Account for the skipped cycles [@p from, @p to) as if tick() had
     * run in each: advances the per-DRAM-cycle stat integrals and
     * replays the APD scan schedule. @pre nextEventCycle(from) >= to,
     * i.e. the gap provably contains no observable controller event.
     */
    void skipTo(Cycle from, Cycle to);

    const ControllerStats &stats() const { return stats_; }

    const SchedulerConfig &config() const { return config_; }

    std::size_t readQueueSize() const { return pool_.size(); }
    std::size_t writeQueueSize() const { return write_q_.size(); }

    /** One DRAM command issued by the scheduler (for equivalence tests). */
    struct IssueRecord
    {
        Cycle cycle;
        std::uint8_t cmd; ///< NextCmd value
        bool is_write;
        std::uint32_t bank;
        std::uint64_t row;
        std::uint64_t seq;

        bool operator==(const IssueRecord &other) const = default;
    };

    /**
     * Record every issued command into @p log (nullptr disables logging).
     * The log captures the complete scheduling decision sequence, which
     * is what the reference/optimized equivalence test compares.
     */
    void setIssueLog(std::vector<IssueRecord> *log) { issue_log_ = log; }

    /**
     * Attach a request-lifecycle trace sink tagged with this
     * controller's channel id (nullptr disables tracing; the disabled
     * path is a single null test per event site, same idiom as the
     * issue log).
     */
    void setTrace(telemetry::TraceBuffer *trace, std::uint8_t channel_id)
    {
        trace_ = trace;
        trace_channel_ = channel_id;
    }

    /** The APD unit (read-only; telemetry samples its thresholds). */
    const ApdUnit &apd() const { return apd_; }

  private:
    /** The next DRAM command a request needs, given current bank state. */
    enum class NextCmd : std::uint8_t { Precharge, Activate, Column, None };

    /** Scheduler shard for one DRAM bank. */
    struct BankShard
    {
        /** Pool slots of queued (not yet in-flight) reads to this bank;
            each request's bank_slot is its index here, so removal is
            O(1) swap-remove. Order carries no meaning: priority keys
            are a total order. */
        std::vector<std::uint32_t> queued;

        /** Lower bound on the next cycle any command to this bank could
            be bank-locally legal; the bank is skipped while now < wake.
            0 means "unknown, rescan". */
        Cycle wake = 0;

        std::uint32_t queued_demands = 0; ///< queued demand reads

        /** Queued prefetches per core, plus the derived nonzero bitmask
            (bit c set iff pref_by_core[c] > 0). The mask makes the APS
            per-bank "has preferred request" test one AND against the
            accurate-core mask. */
        std::vector<std::uint32_t> pref_by_core;
        std::uint64_t pref_core_mask = 0;
    };

    NextCmd nextCommand(const Request &req, bool *row_hit) const;
    bool commandIssuable(const Request &req, NextCmd cmd, Cycle now) const;
    void issueCommand(Request &req, NextCmd cmd, bool row_hit, Cycle now);

    void completeFinished(Cycle now);
    void runApd(Cycle now);
    bool scheduleRead(Cycle now);
    bool scheduleReadReference(Cycle now);
    bool scheduleWrite(Cycle now);
    void finishRead(std::uint32_t slot, Cycle now);

    /** True when another queued request targets the same bank and row. */
    bool pendingSameRow(const Request &req) const;

    // --- incremental bookkeeping helpers ------------------------------

    /** Key of the per-(bank,row) pending-request counter map. */
    static std::uint64_t rowKey(const dram::DramCoord &coord)
    {
        // Row bits never reach bit 48 for any realistic geometry.
        return (static_cast<std::uint64_t>(coord.bank) << 48) | coord.row;
    }

    /** Bitmask of cores whose prefetches are currently critical. */
    std::uint64_t accurateCoreMask() const;

    /** True when @p shard holds a queued preferred-class request. */
    bool shardHasPreferred(const BankShard &shard,
                           std::uint64_t accurate_mask) const;

    /** Bank-local lower bound for @p cmd on bank @p bank. */
    Cycle bankLocalReady(std::uint32_t bank, NextCmd cmd) const;

    /** Register a newly queued read with all incremental structures. */
    void trackEnqueued(std::uint32_t slot);

    /** Remove a still-queued read from all incremental structures. */
    void untrackQueued(Request &req);

    /** Account a queued prefetch being promoted to a demand. */
    void trackPromoted(Request &req);

    /** Record one lifecycle event for @p req (no-op when untraced). */
    void traceRequest(telemetry::EventKind kind, const Request &req,
                      Cycle now, std::uint64_t aux = 0)
    {
        if (trace_ == nullptr)
            return;
        telemetry::TraceEvent event;
        event.cycle = now;
        event.addr = req.line_addr;
        event.aux = aux;
        event.row = req.coord.row;
        event.kind = kind;
        event.core = static_cast<std::uint8_t>(req.core);
        event.channel = trace_channel_;
        event.bank = static_cast<std::uint16_t>(req.coord.bank);
        event.cls = static_cast<std::uint8_t>(req.cls);
        event.flags = static_cast<std::uint8_t>(
            (req.isPrefetch() ? telemetry::TraceEvent::kPrefetch : 0) |
            (req.was_prefetch ? telemetry::TraceEvent::kWasPrefetch : 0) |
            (req.row_outcome == Request::RowOutcome::Hit
                 ? telemetry::TraceEvent::kRowHit
                 : 0) |
            (req.isWrite() ? telemetry::TraceEvent::kWrite : 0));
        trace_->record(event);
    }

    SchedulerConfig config_;
    dram::Channel &channel_;
    AccuracyTracker &tracker_;
    ResponseHandler &handler_;
    std::uint32_t num_cores_;

    SchedContext context_;
    ApdUnit apd_;

    /** Arena + SoA hot columns backing the memory request buffer. */
    RequestPool pool_;
    std::unordered_map<Addr, std::uint32_t> read_index_;
    std::list<Request> write_q_;
    std::unordered_map<Addr, std::list<Request>::iterator> write_index_;

    /** Per-bank scheduler shards, sized from channel_.numBanks(). */
    std::vector<BankShard> shards_;

    /** Bit b set iff shards_[b].queued is non-empty; lets the scheduler
        scan and the next-event computation visit only occupied banks
        (banks per channel never exceed 64). */
    std::uint64_t occupied_banks_ = 0;

    /** alignUp(from) memo from the last nextEventCycle() call, so the
        skipTo() that immediately follows it in the jump path does not
        repeat the division. */
    mutable Cycle nec_from_ = kNeverCycle;
    mutable Cycle nec_next_tick_ = 0;

    /** Pool slots of in-flight (Servicing) reads, kept sorted by seq so
        same-cycle completions fire in the same order as a full queue
        walk. */
    std::vector<std::uint32_t> servicing_;

    /** Earliest data_ready among servicing_ (kNeverCycle when empty);
        min-updated at column issue, recomputed when completions remove
        entries. Feeds nextEventCycle(). */
    Cycle servicing_min_ready_ = kNeverCycle;

    /** Queued reads + pending writes per (bank,row); backs the closed-row
        policy's pendingSameRow() in O(1). */
    std::unordered_map<std::uint64_t, std::uint32_t> pending_rows_;

    /** Requests (any state) in the read queue per core, split by current
        P bit; critical-request counts for RANK derive from these. */
    std::array<std::uint32_t, kMaxCores> demands_per_core_{};
    std::array<std::uint32_t, kMaxCores> prefs_per_core_{};

    std::vector<IssueRecord> *issue_log_ = nullptr;

    telemetry::TraceBuffer *trace_ = nullptr;
    std::uint8_t trace_channel_ = 0;

    /** Forwarded reads waiting to be reported complete. */
    struct PendingForward
    {
        Request req;
        Cycle ready;
    };
    std::vector<PendingForward> forwards_;

    bool write_drain_mode_ = false;
    std::uint64_t next_seq_ = 0;
    Cycle next_apd_scan_ = 0;

    ControllerStats stats_;
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_CONTROLLER_HH
