/**
 * @file
 * The Prefetch-Aware DRAM Controller (and its rigid baselines).
 *
 * One MemoryController drives one DRAM channel. It owns the memory
 * request buffer (reads: demands + prefetches) and a writeback queue,
 * schedules one DRAM command per DRAM command-clock cycle according to
 * the configured policy (see memctrl::SchedContext), runs the Adaptive
 * Prefetch Dropping unit, and reports completions/drops to a
 * ResponseHandler (the cache hierarchy).
 *
 * Scheduling model: each DRAM cycle the controller considers every
 * queued read whose *next* DRAM command (PRE / ACT / RD) is legal right
 * now, picks the one with the highest policy priority key, and issues
 * that single command. Requests therefore progress PRE -> ACT -> RD over
 * several cycles and can be overtaken between commands, exactly like a
 * real FR-FCFS pipeline. Writebacks are drained when the write queue
 * exceeds a high watermark or when no reads are pending.
 */

#ifndef PADC_MEMCTRL_CONTROLLER_HH
#define PADC_MEMCTRL_CONTROLLER_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/dropping.hh"
#include "memctrl/policy.hh"
#include "memctrl/request.hh"

namespace padc::memctrl
{

/**
 * Callback interface through which the controller reports request
 * outcomes to the cache hierarchy.
 */
class ResponseHandler
{
  public:
    virtual ~ResponseHandler() = default;

    /** A read's data transfer finished at cycle @p now. */
    virtual void dramReadComplete(const Request &req, Cycle now) = 0;

    /**
     * A prefetch read was dropped by APD (or the line was forwarded from
     * the write queue counts as complete, not dropped). The handler must
     * invalidate the corresponding MSHR entry.
     */
    virtual void dramPrefetchDropped(const Request &req, Cycle now) = 0;
};

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t demand_reads = 0;    ///< serviced demand reads
    std::uint64_t prefetch_reads = 0;  ///< serviced (still-)prefetch reads
    std::uint64_t writes = 0;          ///< serviced writebacks

    std::uint64_t read_row_hits = 0;
    std::uint64_t read_row_closed = 0;
    std::uint64_t read_row_conflicts = 0;
    std::uint64_t demand_row_hits = 0; ///< row-hit among serviced demands

    std::uint64_t prefetches_dropped = 0;       ///< removed by APD
    std::uint64_t prefetches_rejected_full = 0; ///< no buffer entry free
    std::uint64_t demands_rejected_full = 0;    ///< demand found buffer full
    std::uint64_t promotions = 0;               ///< prefetch -> demand
    std::uint64_t forwarded_reads = 0;          ///< served from write queue

    std::uint64_t read_queue_occupancy_sum = 0; ///< per-DRAM-cycle integral
    std::uint64_t dram_cycles = 0;

    /** Sum over serviced reads of (completion - arrival), for Fig. 4(a). */
    std::uint64_t read_service_cycles_sum = 0;
};

/**
 * A single-channel DRAM controller with pluggable prefetch handling.
 */
class MemoryController
{
  public:
    /**
     * @param config scheduling/buffer policy
     * @param channel the DRAM channel this controller owns
     * @param tracker shared per-core prefetch accuracy estimates
     * @param handler completion/drop callback sink
     * @param num_cores cores in the system (for ranking)
     */
    MemoryController(const SchedulerConfig &config, dram::Channel &channel,
                     AccuracyTracker &tracker, ResponseHandler &handler,
                     std::uint32_t num_cores);

    /** True when the memory request buffer has no free read entry. */
    bool readBufferFull() const
    {
        return read_q_.size() >= config_.request_buffer_size;
    }

    /**
     * Enqueue a read for @p line_addr.
     *
     * Prefetches are rejected when the buffer is full (the paper's
     * "prefetch not issued because the memory request buffer is full");
     * demands are likewise rejected and the cache must retry (stalling
     * the core). A read that hits the write queue is forwarded and
     * completes shortly without touching DRAM.
     *
     * @pre no read for line_addr is outstanding (the L2 MSHR guarantees
     *      at most one miss per line).
     * @return true if accepted (or forwarded).
     */
    bool enqueueRead(const dram::DramCoord &coord, Addr line_addr,
                     CoreId core, Addr pc, bool is_prefetch, Cycle now);

    /** Enqueue (or coalesce) a dirty-line writeback. Always accepted. */
    void enqueueWrite(const dram::DramCoord &coord, Addr line_addr,
                      CoreId core, Cycle now);

    /**
     * A demand matched the in-flight prefetch for @p line_addr: clear its
     * P bit so it is scheduled as a demand from now on. The caller is
     * responsible for the prefetch-used (PUC) accounting, since a
     * promotion can also hit a read being forwarded from the write queue
     * (which no longer sits in the request buffer).
     * @return true if a queued/in-flight prefetch was found and promoted.
     */
    bool promote(Addr line_addr, Cycle now);

    /** True if a read for @p line_addr is outstanding here. */
    bool hasRead(Addr line_addr) const
    {
        return read_index_.find(line_addr) != read_index_.end();
    }

    /** Advance the controller; call once per processor cycle. */
    void tick(Cycle now);

    const ControllerStats &stats() const { return stats_; }

    const SchedulerConfig &config() const { return config_; }

    std::size_t readQueueSize() const { return read_q_.size(); }
    std::size_t writeQueueSize() const { return write_q_.size(); }

  private:
    using ReadList = std::list<Request>;

    /** The next DRAM command a request needs, given current bank state. */
    enum class NextCmd : std::uint8_t { Precharge, Activate, Column, None };

    NextCmd nextCommand(const Request &req, bool *row_hit) const;
    bool commandIssuable(const Request &req, NextCmd cmd, Cycle now) const;
    void issueCommand(Request &req, NextCmd cmd, bool row_hit, Cycle now);

    void completeFinished(Cycle now);
    void runApd(Cycle now);
    bool scheduleRead(Cycle now);
    bool scheduleWrite(Cycle now);
    void finishRead(ReadList::iterator it, Cycle now);

    /** True when another queued request targets the same bank and row. */
    bool pendingSameRow(const Request &req) const;

    SchedulerConfig config_;
    dram::Channel &channel_;
    AccuracyTracker &tracker_;
    ResponseHandler &handler_;
    std::uint32_t num_cores_;

    SchedContext context_;
    ApdUnit apd_;

    ReadList read_q_;
    std::unordered_map<Addr, ReadList::iterator> read_index_;
    std::list<Request> write_q_;
    std::unordered_map<Addr, std::list<Request>::iterator> write_index_;

    /** Forwarded reads waiting to be reported complete. */
    struct PendingForward
    {
        Request req;
        Cycle ready;
    };
    std::vector<PendingForward> forwards_;

    bool write_drain_mode_ = false;
    std::uint64_t next_seq_ = 0;
    Cycle next_apd_scan_ = 0;

    ControllerStats stats_;
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_CONTROLLER_HH
