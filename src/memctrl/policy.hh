/**
 * @file
 * DRAM request scheduling policies (paper Sections 1, 4.2, 6.5).
 *
 * Every policy is expressed as a priority-key function over request
 * buffer entries; the controller services the schedulable request with
 * the numerically largest key. Key layout (most significant first):
 *
 *   [ level-0 class ][ row-hit ][ urgent ][ rank ][ inverted arrival ]
 *
 * The level-0 class and the urgent bit are *data*, not code: each
 * SchedPolicyKind owns a PolicyLattice table mapping
 * (RequestClass, per-core accuracy state) -> lattice level + urgency,
 * so the paper's policies fall out as table rows:
 *   - demand-prefetch-equal (FR-FCFS): every class level 1
 *     (prefetch-blind)
 *   - demand-first:   demand-like classes level 1, prefetch-like 0
 *   - prefetch-first: prefetch-like classes level 1, demand-like 0
 *   - APS:            critical (demand, or prefetch from an accurate
 *                     core) level 1, inaccurate prefetch level 0;
 *                     urgency marks demands from inaccurate cores
 * and urgent/rank participate only where the table says they do (APS
 * with the corresponding features enabled; Rule 1 / Rule 2 of the
 * paper). Adding a policy or a request class is a table edit, not a
 * switch edit across the controller.
 */

#ifndef PADC_MEMCTRL_POLICY_HH
#define PADC_MEMCTRL_POLICY_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/request.hh"

namespace padc::memctrl
{

/** Maximum cores supported by the packed rank field. */
inline constexpr std::uint32_t kMaxCores = 64;

/**
 * One cell of a policy's lattice table: the level-0 class (1 =
 * preferred, 0 = deprioritized) and whether requests in this cell are
 * urgency-boosted (consulted only when urgency is enabled).
 */
struct LatticeSlot
{
    std::uint8_t level;
    bool urgent;
};

/**
 * The full priority lattice of one scheduling policy: for every
 * RequestClass, one slot per per-core accuracy state
 * (slots[cls][0] = inaccurate core, slots[cls][1] = accurate core),
 * plus whether Rule-2 ranking participates in this policy's keys.
 *
 * Writeback rows are reserved: the write scheduler is plain FR-FCFS
 * over the separate write queue and never consults the lattice.
 * PtwRead and DramCacheFill rows are reserved for the two-tier memory
 * scenario (ROADMAP) so wiring those traffic sources needs no lattice
 * surgery: PtwRead ranks with demands, DramCacheFill with prefetches.
 */
struct PolicyLattice
{
    std::array<std::array<LatticeSlot, 2>, kRequestClassCount> slots;

    /** Rule-2 RANK participates in keys (APS only; footnote 12). */
    bool ranked;

    const std::array<LatticeSlot, 2> &of(RequestClass cls) const
    {
        return slots[static_cast<std::size_t>(cls)];
    }
};

/** The lattice table of @p kind (static storage, never fails). */
const PolicyLattice &policyLattice(SchedPolicyKind kind);

/** Complete scheduler + buffer-management configuration. */
struct SchedulerConfig
{
    SchedPolicyKind kind = SchedPolicyKind::Aps;

    /** Adaptive Prefetch Dropping enabled (APS + APD == PADC). */
    bool apd_enabled = true;

    /** Rule-1 step 3: urgent-demand prioritization (Section 6.3.4). */
    bool urgency_enabled = true;

    /** Rule-2 RANK level: shortest-job-first fairness (Section 6.5). */
    bool ranking_enabled = false;

    /** Prefetch accuracy at/above which prefetches become critical. */
    double promotion_threshold = 0.85;

    /** Memory request buffer capacity (reads; matches L2 MSHR count). */
    std::uint32_t request_buffer_size = 128;

    /** Writeback queue capacity. */
    std::uint32_t write_buffer_size = 64;

    /** Start draining writes above this occupancy. */
    std::uint32_t write_drain_high = 48;

    /** Stop draining writes below this occupancy. */
    std::uint32_t write_drain_low = 16;

    /** Row-buffer management (Section 6.8). */
    RowPolicy row_policy = RowPolicy::Open;

    /**
     * Use the naive O(queue) reference scheduler instead of the
     * bank-sharded incremental one. The two are decision-identical by
     * contract (same command stream, same stats); the reference exists as
     * the golden model for the equivalence test suite and as the seed
     * implementation baseline for the scheduler micro-benchmarks.
     */
    bool reference_scheduler = false;

    /** APD age quantum: AGE advances once per this many cycles. */
    Cycle age_quantum = 100;

    /**
     * APD drop thresholds (processor cycles) for the four accuracy bands
     * delimited by drop_accuracy_bounds (paper Table 6).
     */
    std::array<Cycle, 4> drop_thresholds = {100, 1500, 50000, 100000};
    std::array<double, 3> drop_accuracy_bounds = {0.10, 0.30, 0.70};

    AccuracyConfig accuracy;

    /** Append one diagnostic per violated constraint under @p prefix. */
    void validate(ConfigErrors &errors, const std::string &prefix) const;
};

/**
 * Reject core counts the packed rank field (and every per-core mask in
 * the controller) cannot represent. Part of the accumulated-ConfigError
 * validation path: construction-time code may assume
 * num_cores <= kMaxCores once validation passed.
 */
void validateCoreCount(std::uint32_t num_cores, ConfigErrors &errors,
                       const std::string &field);

/**
 * Per-scheduling-round context shared by all key computations:
 * the policy's lattice table, the accuracy tracker (which selects the
 * per-core accuracy column), and per-core ranks (for Rule 2).
 */
class SchedContext
{
  public:
    SchedContext(const SchedulerConfig &config,
                 const AccuracyTracker &tracker);

    /** True when @p core's prefetches are currently critical. */
    bool coreAccurate(CoreId core) const
    {
        return tracker_.accuracy(core) >= config_.promotion_threshold;
    }

    /** Critical = demand, or prefetch from an accurate core (Sec. 4.2). */
    bool isCritical(const Request &req) const
    {
        return req.isDemand() || coreAccurate(req.core);
    }

    /** Urgent = demand from a core with low prefetch accuracy. */
    bool isUrgent(const Request &req) const
    {
        return req.isDemand() && !coreAccurate(req.core);
    }

    /**
     * Recompute per-core ranks from critical-request occupancy counts
     * (shortest job first: fewer outstanding critical requests -> higher
     * rank). No-op unless ranking is enabled.
     *
     * @param critical_counts outstanding critical requests per core
     * @param num_cores cores participating
     */
    void updateRanks(const std::array<std::uint32_t, kMaxCores>
                         &critical_counts,
                     std::uint32_t num_cores);

    /**
     * Lattice level of a @p cls request from @p core under the
     * configured policy (1 = preferred class, 0 = deprioritized). The
     * paper's rigid policies are *strict* within a bank: a level-0
     * request to a bank may not be scheduled while any level-1 request
     * to the same bank is outstanding ("prefetch requests to a bank are
     * not scheduled until all the demand requests to the same bank are
     * serviced"). The controller enforces this with per-bank class
     * masks.
     */
    std::uint32_t latticeLevel(RequestClass cls, CoreId core) const;

    /**
     * True when some class's lattice slot differs between the accurate
     * and inaccurate columns, i.e. scheduling decisions depend on
     * per-core accuracy (APS). Callers use this to decide whether the
     * accurate-core mask must be computed each round.
     */
    bool latticeAccuracyDependent() const { return accuracy_dependent_; }

    /**
     * Whole-bank level-1 occupancy check over the shard's aggregate
     * counters: true when the bank holds at least one request whose
     * lattice level is 1 (a "preferred" request that blocks level-0
     * requests to the same bank).
     *
     * @param queued_demands number of queued demand reads in the bank
     * @param pref_core_mask or-mask of cores with queued prefetches
     * @param accurate_mask or-mask of currently accurate cores (only
     *        consulted when latticeAccuracyDependent())
     */
    bool shardHasPreferred(std::uint32_t queued_demands,
                           std::uint64_t pref_core_mask,
                           std::uint64_t accurate_mask) const;

    /** Companion of shardHasPreferred(): any level-0 request queued? */
    bool shardHasLevelZero(std::uint32_t queued_demands,
                           std::uint64_t pref_core_mask,
                           std::uint64_t accurate_mask) const;

    /**
     * Priority key for @p req given current @p row_hit status; larger is
     * higher priority. Deterministic total order (ties broken by
     * arrival, which the controller guarantees unique per channel).
     */
    std::uint64_t priorityKey(const Request &req, bool row_hit) const;

    /**
     * Raw-field variant of priorityKey() for the structure-of-arrays
     * scheduler scan: identical key, computed from the hot columns
     * (request class, core, seq) without touching the Request record.
     */
    std::uint64_t priorityKey(RequestClass cls, CoreId core,
                              std::uint64_t seq, bool row_hit) const;

    const SchedulerConfig &config() const { return config_; }

    const PolicyLattice &lattice() const { return lattice_; }

  private:
    const SchedulerConfig &config_;
    const AccuracyTracker &tracker_;
    const PolicyLattice &lattice_;
    bool accuracy_dependent_;
    std::array<std::uint8_t, kMaxCores> rank_{}; ///< higher = better
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_POLICY_HH
