/**
 * @file
 * DRAM request scheduling policies (paper Sections 1, 4.2, 6.5).
 *
 * Every policy is expressed as a priority-key function over request
 * buffer entries; the controller services the schedulable request with
 * the numerically largest key. Key layout (most significant first):
 *
 *   [ level-0 class ][ row-hit ][ urgent ][ rank ][ inverted arrival ]
 *
 * where level-0 is the policy-specific top rule:
 *   - demand-prefetch-equal (FR-FCFS): constant (prefetch-blind)
 *   - demand-first:   demand over prefetch
 *   - prefetch-first: prefetch over demand
 *   - APS:            critical (demand or accurate-core prefetch) over
 *                     non-critical
 * and urgent/rank participate only for APS with the corresponding
 * features enabled (Rule 1 / Rule 2 of the paper).
 */

#ifndef PADC_MEMCTRL_POLICY_HH
#define PADC_MEMCTRL_POLICY_HH

#include <array>
#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/request.hh"

namespace padc::memctrl
{

/** Maximum cores supported by the packed rank field. */
inline constexpr std::uint32_t kMaxCores = 64;

/** Complete scheduler + buffer-management configuration. */
struct SchedulerConfig
{
    SchedPolicyKind kind = SchedPolicyKind::Aps;

    /** Adaptive Prefetch Dropping enabled (APS + APD == PADC). */
    bool apd_enabled = true;

    /** Rule-1 step 3: urgent-demand prioritization (Section 6.3.4). */
    bool urgency_enabled = true;

    /** Rule-2 RANK level: shortest-job-first fairness (Section 6.5). */
    bool ranking_enabled = false;

    /** Prefetch accuracy at/above which prefetches become critical. */
    double promotion_threshold = 0.85;

    /** Memory request buffer capacity (reads; matches L2 MSHR count). */
    std::uint32_t request_buffer_size = 128;

    /** Writeback queue capacity. */
    std::uint32_t write_buffer_size = 64;

    /** Start draining writes above this occupancy. */
    std::uint32_t write_drain_high = 48;

    /** Stop draining writes below this occupancy. */
    std::uint32_t write_drain_low = 16;

    /** Row-buffer management (Section 6.8). */
    RowPolicy row_policy = RowPolicy::Open;

    /**
     * Use the naive O(queue) reference scheduler instead of the
     * bank-sharded incremental one. The two are decision-identical by
     * contract (same command stream, same stats); the reference exists as
     * the golden model for the equivalence test suite and as the seed
     * implementation baseline for the scheduler micro-benchmarks.
     */
    bool reference_scheduler = false;

    /** APD age quantum: AGE advances once per this many cycles. */
    Cycle age_quantum = 100;

    /**
     * APD drop thresholds (processor cycles) for the four accuracy bands
     * delimited by drop_accuracy_bounds (paper Table 6).
     */
    std::array<Cycle, 4> drop_thresholds = {100, 1500, 50000, 100000};
    std::array<double, 3> drop_accuracy_bounds = {0.10, 0.30, 0.70};

    AccuracyConfig accuracy;

    /** Append one diagnostic per violated constraint under @p prefix. */
    void validate(ConfigErrors &errors, const std::string &prefix) const;
};

/**
 * Per-scheduling-round context shared by all key computations:
 * the accuracy tracker (for criticality/urgency) and per-core ranks
 * (for Rule 2).
 */
class SchedContext
{
  public:
    SchedContext(const SchedulerConfig &config,
                 const AccuracyTracker &tracker);

    /** True when @p core's prefetches are currently critical. */
    bool coreAccurate(CoreId core) const
    {
        return tracker_.accuracy(core) >= config_.promotion_threshold;
    }

    /** Critical = demand, or prefetch from an accurate core (Sec. 4.2). */
    bool isCritical(const Request &req) const
    {
        return req.isDemand() || coreAccurate(req.core);
    }

    /** Urgent = demand from a core with low prefetch accuracy. */
    bool isUrgent(const Request &req) const
    {
        return req.isDemand() && !coreAccurate(req.core);
    }

    /**
     * Recompute per-core ranks from critical-request occupancy counts
     * (shortest job first: fewer outstanding critical requests -> higher
     * rank). No-op unless ranking is enabled.
     *
     * @param critical_counts outstanding critical requests per core
     * @param num_cores cores participating
     */
    void updateRanks(const std::array<std::uint32_t, kMaxCores>
                         &critical_counts,
                     std::uint32_t num_cores);

    /**
     * Priority key for @p req given current @p row_hit status; larger is
     * higher priority. Deterministic total order (ties broken by
     * arrival, which the controller guarantees unique per channel).
     */
    std::uint64_t priorityKey(const Request &req, bool row_hit) const;

    /**
     * Raw-field variant of priorityKey() for the structure-of-arrays
     * scheduler scan: identical key, computed from the hot columns
     * (prefetch bit, core, seq) without touching the Request record.
     */
    std::uint64_t priorityKey(bool is_prefetch, CoreId core,
                              std::uint64_t seq, bool row_hit) const;

    /**
     * Top-level scheduling class of @p req under the configured policy
     * (1 = preferred class, 0 = deprioritized class). The paper's rigid
     * policies are *strict* within a bank: a class-0 request to a bank
     * may not be scheduled while any class-1 request to the same bank is
     * outstanding ("prefetch requests to a bank are not scheduled until
     * all the demand requests to the same bank are serviced"). The
     * controller enforces this with per-bank class masks.
     */
    std::uint32_t requestClass(const Request &req) const;

    /** Raw-field variant of requestClass() for the SoA scan. */
    std::uint32_t requestClass(bool is_prefetch, CoreId core) const;

    const SchedulerConfig &config() const { return config_; }

  private:
    const SchedulerConfig &config_;
    const AccuracyTracker &tracker_;
    std::array<std::uint8_t, kMaxCores> rank_{}; ///< higher = better
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_POLICY_HH
