/**
 * @file
 * Per-core prefetch accuracy measurement (paper Section 4.1).
 *
 * Hardware analogue: a Prefetch Sent Counter (PSC), Prefetch Used
 * Counter (PUC), and Prefetch Accuracy Register (PAR) per core. At the
 * end of every measurement interval, PAR := PUC / PSC and both counters
 * reset, so the estimate tracks program phase behaviour (cf. Fig 4(b)).
 *
 * PUC increments when a demand hits a prefetched cache line (P bit set)
 * or matches an in-flight prefetch request in the buffer; PSC
 * increments when a prefetch enters the buffer.
 *
 * One robustness addition over the paper: a prefetch dropped by APD is
 * removed from the *interval* PSC. Without this, a single
 * underestimated interval (short intervals are biased low by in-flight
 * prefetches) triggers mass drops, dropped prefetches can never be
 * used, and the estimate collapses into an absorbing zero that no real
 * phase change can escape. The lifetime totals (the reported ACC
 * metric) keep the paper's definitions.
 */

#ifndef PADC_MEMCTRL_ACCURACY_TRACKER_HH
#define PADC_MEMCTRL_ACCURACY_TRACKER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace padc::memctrl
{

/** Configuration for AccuracyTracker. */
struct AccuracyConfig
{
    Cycle interval = 100000; ///< measurement interval, processor cycles

    /**
     * PAR value assumed before the first interval completes and whenever
     * an interval saw no prefetches. Defaults to optimistic (1.0) so a
     * fresh prefetcher is not penalized before it has been measured.
     */
    double initial_accuracy = 1.0;

    /**
     * Minimum interval PSC for a measurement to overwrite PAR; intervals
     * with fewer sent prefetches keep the previous estimate (a tiny
     * sample says little about the prefetcher).
     */
    std::uint32_t min_samples = 8;
};

/**
 * Tracks prefetch accuracy per core over fixed time intervals.
 */
class AccuracyTracker
{
  public:
    AccuracyTracker(std::uint32_t num_cores, const AccuracyConfig &config);

    /** A prefetch from @p core entered the memory request buffer. */
    void onPrefetchSent(CoreId core);

    /**
     * A prefetch from @p core proved useful: a demand hit the prefetched
     * line in the cache, or matched the request in the buffer.
     */
    void onPrefetchUsed(CoreId core);

    /**
     * A prefetch from @p core was administratively dropped by APD before
     * service: removed from the interval PSC (see file comment); the
     * lifetime sent total still counts it.
     */
    void onPrefetchDropped(CoreId core);

    /**
     * Advance interval bookkeeping; call at least once per cycle region.
     * Cheap: only does work when an interval boundary has passed.
     */
    void tick(Cycle now);

    /**
     * The next interval boundary tick() will roll over at. PAR values
     * change only at boundaries (or on explicit events), so the
     * event-driven main loop must not jump simulated time past this.
     */
    Cycle nextBoundary() const { return next_boundary_; }

    /** Current PAR estimate for @p core, in [0, 1]. */
    double accuracy(CoreId core) const { return cores_[core].par; }

    /** Lifetime totals (for ACC metric reporting, not used for control). */
    std::uint64_t totalSent(CoreId core) const
    {
        return cores_[core].total_sent;
    }
    std::uint64_t totalUsed(CoreId core) const
    {
        return cores_[core].total_used;
    }
    std::uint64_t totalDropped(CoreId core) const
    {
        return cores_[core].total_dropped;
    }

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    const AccuracyConfig &config() const { return config_; }

  private:
    struct PerCore
    {
        std::uint64_t psc = 0; ///< sent this interval (minus drops)
        std::uint64_t puc = 0; ///< used this interval
        double par = 1.0;      ///< accuracy register
        std::uint64_t total_sent = 0;
        std::uint64_t total_used = 0;
        std::uint64_t total_dropped = 0;
    };

    AccuracyConfig config_;
    std::vector<PerCore> cores_;
    Cycle next_boundary_;
};

} // namespace padc::memctrl

#endif // PADC_MEMCTRL_ACCURACY_TRACKER_HH
