#include "exp/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace padc::exp
{

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[40];
    // Shortest of %.15g / %.16g / %.17g that round-trips exactly.
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    // Bare exponents/integers are valid JSON already; "nan"/"inf" were
    // filtered above.
    return buf;
}

JsonWriter::JsonWriter()
{
    first_in_scope_.push_back(true);
}

void
JsonWriter::indent()
{
    out_ += '\n';
    out_.append(2 * (first_in_scope_.size() - 1), ' ');
}

void
JsonWriter::comma()
{
    if (!first_in_scope_.back())
        out_ += ',';
    first_in_scope_.back() = false;
    if (first_in_scope_.size() > 1)
        indent();
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    first_in_scope_.push_back(true);
}

void
JsonWriter::beginObject(const std::string &key)
{
    comma();
    out_ += jsonQuote(key) + ": {";
    first_in_scope_.push_back(true);
}

void
JsonWriter::endObject()
{
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (!empty)
        indent();
    out_ += '}';
}

void
JsonWriter::beginArray(const std::string &key)
{
    comma();
    out_ += jsonQuote(key) + ": [";
    first_in_scope_.push_back(true);
}

void
JsonWriter::endArray()
{
    const bool empty = first_in_scope_.back();
    first_in_scope_.pop_back();
    if (!empty)
        indent();
    out_ += ']';
}

void
JsonWriter::member(const std::string &key, const std::string &value)
{
    comma();
    out_ += jsonQuote(key) + ": " + jsonQuote(value);
}

void
JsonWriter::member(const std::string &key, const char *value)
{
    member(key, std::string(value));
}

void
JsonWriter::member(const std::string &key, double value)
{
    comma();
    out_ += jsonQuote(key) + ": " + jsonNumber(value);
}

void
JsonWriter::member(const std::string &key, std::uint64_t value)
{
    // 64-bit counters can exceed the 2^53 exact-double range; emit
    // them as decimal integers (valid JSON; parsers that read them as
    // doubles lose precision only beyond 2^53).
    comma();
    out_ += jsonQuote(key) + ": " + std::to_string(value);
}

void
JsonWriter::member(const std::string &key, bool value)
{
    comma();
    out_ += jsonQuote(key) + ": " + (value ? "true" : "false");
}

void
JsonWriter::element(const std::string &value)
{
    comma();
    out_ += jsonQuote(value);
}

void
JsonWriter::element(double value)
{
    comma();
    out_ += jsonNumber(value);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

/** Recursive-descent parser over a NUL-free string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue *out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_ != nullptr && error_->empty()) {
            *error_ = "offset " + std::to_string(pos_) + ": " + message;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->string);
        }
        if (literal("null")) {
            out->kind = JsonValue::Kind::Null;
            return true;
        }
        if (literal("true")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        // strtod accepts inf/nan/hex, a leading '+', and leading zeros,
        // none of which JSON does; walk the slice with JSON's grammar.
        const char *p = start;
        if (*p == '-')
            ++p;
        if (*p == '0') {
            ++p;
        } else if (*p >= '1' && *p <= '9') {
            while (*p >= '0' && *p <= '9')
                ++p;
        } else {
            return fail("malformed number");
        }
        if (*p == '.') {
            ++p;
            if (*p < '0' || *p > '9')
                return fail("malformed number");
            while (*p >= '0' && *p <= '9')
                ++p;
        }
        if (*p == 'e' || *p == 'E') {
            ++p;
            if (*p == '+' || *p == '-')
                ++p;
            if (*p < '0' || *p > '9')
                return fail("malformed number");
            while (*p >= '0' && *p <= '9')
                ++p;
        }
        if (p != end)
            return fail("malformed number");
        pos_ += static_cast<std::size_t>(end - start);
        out->kind = JsonValue::Kind::Number;
        out->number = value;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Validation-oriented: keep BMP escapes as UTF-8.
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xC0 | (code >> 6));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (code >> 12));
                    *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue *out)
    {
        ++pos_; // '['
        out->kind = JsonValue::Kind::Array;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            skipSpace();
            if (!parseValue(&element))
                return false;
            out->array.push_back(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        ++pos_; // '{'
        out->kind = JsonValue::Kind::Object;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected a member name");
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after member name");
            skipSpace();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->object.emplace(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    if (error != nullptr)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace padc::exp
