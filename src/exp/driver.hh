/**
 * @file
 * The `padc` unified experiment driver.
 *
 * One binary replaces the per-figure bench binaries:
 *
 *   padc list                      enumerate registered experiments
 *   padc run fig09 fig16           run experiments by name
 *   padc run 'fig1*' overall       ... by glob or tag
 *   padc run --all                 ... all of them
 *
 * Every run writes a machine-readable `BENCH_<name>.json` (schema
 * `padc-bench-result-v1`: config hash, per-point status + metrics,
 * wall time, sim-cycles/sec) next to the human-readable text output;
 * `--format json|csv` swaps the stdout stream for the structured form.
 *
 * driverMain is a library function so the CLI is testable in-process;
 * bench/padc_main.cc is the two-line real main().
 */

#ifndef PADC_EXP_DRIVER_HH
#define PADC_EXP_DRIVER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace padc::exp
{

/** Parsed command line of the driver. */
struct DriverOptions
{
    enum class Command
    {
        Help,
        List,
        Run,
        Status,
        Serve,   ///< `padc serve <state-dir>`: run the sweep daemon
        Submit,  ///< `padc submit <state-dir> <selector>...`
        Jobs,    ///< `padc jobs <state-dir>`
        Cancel,  ///< `padc cancel <state-dir> <job-id>`
        Metrics, ///< `padc metrics <state-dir>`
    };

    enum class Format
    {
        Text,
        Json,
        Csv,
    };

    Command command = Command::Help;
    std::vector<std::string> selectors; ///< names / tags / globs, in order
    bool all = false;                   ///< run --all
    unsigned threads = 0;               ///< 0 = default pool size
    unsigned workers = 0;               ///< --workers subprocesses (0 = off)
    std::string resume_path;            ///< empty = $PADC_RESUME
    std::optional<std::uint64_t> seed;  ///< --seed override
    Format format = Format::Text;
    std::string out_dir = ".";          ///< BENCH_<name>.json directory
    std::string corpus_dir;             ///< --corpus trace-profile dir

    bool progress = false;       ///< --progress live sweep status
    std::string status_dir;      ///< `padc status <dir>` argument
    bool json = false;           ///< --json machine-readable output

    std::string state_dir;       ///< serve/submit/jobs/cancel/metrics dir
    std::size_t queue_cap = 0;   ///< serve --queue-cap (0 = env/default)
    bool wait = false;           ///< submit --wait: block until terminal
    std::uint64_t job_id = 0;    ///< cancel <job-id>
    bool job_id_set = false;

    bool timeseries = false;     ///< --timeseries[=PATH]
    bool trace = false;          ///< --trace[=PATH]
    std::string timeseries_path; ///< empty = <out>/<name>.timeseries.csv
    std::string trace_path;      ///< empty = <out>/<name>.trace.json
    std::uint64_t trace_limit = 1u << 20; ///< --trace-limit events kept
};

/**
 * Parse the driver's argv (argv[0] is the program name).
 * @return true on success; false with a one-line diagnostic in
 *         @p error otherwise.
 */
bool parseDriverArgs(int argc, const char *const *argv,
                     DriverOptions *out, std::string *error);

/**
 * Render one experiment's structured result as the
 * `padc-bench-result-v1` JSON document (the BENCH_<name>.json
 * contents).
 */
std::string resultJson(const ExperimentInfo &info,
                       const ExperimentResult &result);

/**
 * Snapshot the process-wide WallProfiler into @p result's profile block
 * (build/simulate/collect seconds, scheduler estimate, event-loop
 * figures). The driver calls it after every run; the serve daemon
 * reuses it so daemon-produced BENCH documents carry the same profile.
 */
void recordRunProfile(ExperimentResult &result);

/** Drain @p pool's per-experiment profile window into @p result. */
void recordPoolProfile(sim::ProcessPool &pool, ExperimentResult &result);

/** The driver's usage text. */
std::string driverUsage();

/**
 * Full driver entry point.
 * @return 0 on success, 1 when an experiment failed, 2 on usage
 *         errors (unknown command, flag, or experiment selector).
 */
int driverMain(int argc, const char *const *argv);

} // namespace padc::exp

#endif // PADC_EXP_DRIVER_HH
