/**
 * @file
 * Figure 17: overall performance and traffic on the 8-core system over
 * random mixes (paper: 21 workloads).
 *
 * Paper shape: with one controller the rigid policies barely help (or
 * hurt) at 8 cores; PADC improves WS ~9.9% over demand-first and cuts
 * traffic ~9.4% -- the benefit grows with core count.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig17(ExperimentContext &ctx)
{
    overallBench(ctx, 8, 8, fivePolicies());
}

const Registrar registrar(
    {"fig17", "Figure 17", "8-core overall performance and traffic",
     "PADC's edge grows with core count", {"overall"}},
    &runFig17);

} // namespace
} // namespace padc::exp
