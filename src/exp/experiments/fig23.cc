/**
 * @file
 * Figure 23: WS of each policy across DRAM row-buffer sizes (2KB to
 * 128KB) on the 4-core system.
 *
 * Paper shape: PADC wins at every size; the rigid policies lose their
 * prefetching benefit at very large rows (demand-first can even drop
 * below no-prefetching) while PADC keeps improving.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig23(ExperimentContext &ctx)
{
    const sim::RunOptions options = defaultOptions(4);
    const auto mixes = workload::randomMixes(4, 4, ctx.mixSeed(77));

    std::printf("%-10s", "row size");
    for (const auto setup : fivePolicies())
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    for (const std::uint32_t row_kb : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        sim::SystemConfig base = sim::SystemConfig::baseline(4);
        base.dram.geometry.row_bytes = row_kb * 1024;
        sim::AloneIpcCache alone(base, options);
        std::printf("%6uKB  ", row_kb);
        for (const auto setup : fivePolicies()) {
            const auto agg = aggregateOverMixes(
                ctx, sim::applyPolicy(base, setup), mixes, options,
                alone);
            std::printf(" %17.3f", agg.ws);
        }
        std::printf("\n");
    }
}

const Registrar registrar(
    {"fig23", "Figure 23", "row-buffer size sweep, 4 cores",
     "PADC best at every row size", {"sweep", "sensitivity"}},
    &runFig23);

} // namespace
} // namespace padc::exp
