/**
 * @file
 * Tables 9-10: four identical applications per workload -- all
 * libquantum (prefetch-friendly) and all milc (prefetch-unfriendly) on
 * the 4-core system.
 *
 * Paper shape: for 4x libquantum, demand-pref-equal/APS/PADC all beat
 * demand-first (paper +18.2% WS) with near-equal per-core speedups; for
 * 4x milc, PADC beats every rigid policy via dropping.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runTab09(ExperimentContext &ctx)
{
    caseStudyBench(ctx,
                   {"libquantum_06", "libquantum_06", "libquantum_06",
                    "libquantum_06"},
                   fivePolicies());
    std::printf("\n");
    banner("Table 10", "four identical milc instances",
           "demand-first/APS > equal; PADC best of all");
    caseStudyBench(ctx, {"milc_06", "milc_06", "milc_06", "milc_06"},
                   fivePolicies());
}

const Registrar registrar(
    {"tab09", "Table 9", "four identical libquantum instances",
     "equal/APS/PADC > demand-first; speedups uniform", {"table"}},
    &runTab09);

} // namespace
} // namespace padc::exp
