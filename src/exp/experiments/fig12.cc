/**
 * @file
 * Figures 12-13, case study II: four prefetch-unfriendly applications
 * (art, galgel, ammp, milc) on the 4-core system.
 *
 * Paper shape: demand-first and APS beat demand-pref-equal; APD's
 * dropping makes PADC the best policy (paper: +17.7% WS over
 * demand-first, -9.1% traffic) and recovers most of the loss versus no
 * prefetching.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig12(ExperimentContext &ctx)
{
    caseStudyBench(ctx, workload::caseStudyUnfriendly(), fivePolicies());
}

const Registrar registrar(
    {"fig12", "Figures 12-13 (case study II)",
     "four prefetch-unfriendly applications, 4 cores",
     "demand-first >> equal; PADC best and close to no-pref;"
     " big traffic cut",
     {"case-study"}},
    &runFig12);

} // namespace
} // namespace padc::exp
