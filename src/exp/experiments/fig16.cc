/**
 * @file
 * Figure 16: overall performance and traffic on the 4-core system over
 * random mixes (paper: 32 workloads).
 *
 * Paper shape: PADC improves WS by ~8.2% and HS by ~4.1% over
 * demand-first and cuts traffic ~10.1%.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig16(ExperimentContext &ctx)
{
    overallBench(ctx, 4, 12, fivePolicies());
}

const Registrar registrar(
    {"fig16", "Figure 16", "4-core overall performance and traffic",
     "PADC best WS/HS, lowest traffic", {"overall"}},
    &runFig16);

} // namespace
} // namespace padc::exp
