/**
 * @file
 * Figure 32: PADC on a runahead-execution CMP (Section 6.14).
 *
 * Paper shape: runahead improves the baseline by itself; PADC still
 * improves performance (+6.7% WS) and cuts traffic (-10.2%) on top of
 * runahead, since runahead requests are treated as demands.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig32(ExperimentContext &ctx)
{
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst,
        sim::PolicySetup::ApsOnly, sim::PolicySetup::Padc};
    std::printf("--- no runahead ---\n");
    overallBench(ctx, 4, 8, policies);
    std::printf("\n--- with runahead ---\n");
    overallBench(ctx, 4, 8, policies, [](sim::SystemConfig &cfg) {
        cfg.core.runahead = true;
    });
}

const Registrar registrar(
    {"fig32", "Figure 32", "runahead execution",
     "PADC stacks with runahead", {"sensitivity"}},
    &runFig32);

} // namespace
} // namespace padc::exp
