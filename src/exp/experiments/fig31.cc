/**
 * @file
 * Figure 31: permutation-based page interleaving (Zhang et al.)
 * combined with each policy on the 4-core system.
 *
 * Paper shape: permutation helps every policy (fewer row conflicts);
 * PADC remains the best and is complementary to the remapping
 * (paper: +5.4% WS over demand-first-perm, -11.3% traffic).
 *
 * Permutation remapping targets row-conflict-heavy layouts, so this
 * experiment runs against the row-interleaved address map (the paper's
 * style of baseline, where conflicting rows pile onto the same bank).
 * Our default line-interleaved map already spreads banks, leaving the
 * remap little to fix -- that null result is shown by the ablation.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig31(ExperimentContext &ctx)
{
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst,
        sim::PolicySetup::ApsOnly, sim::PolicySetup::Padc};
    std::printf("--- row-interleaved mapping, no permutation ---\n");
    overallBench(ctx, 4, 8, policies, [](sim::SystemConfig &cfg) {
        cfg.dram.geometry.interleave = dram::Interleave::Row;
    });
    std::printf("\n--- row-interleaved mapping + permutation ---\n");
    overallBench(ctx, 4, 8, policies, [](sim::SystemConfig &cfg) {
        cfg.dram.geometry.interleave = dram::Interleave::Row;
        cfg.dram.geometry.permutation_interleaving = true;
    });
}

const Registrar registrar(
    {"fig31", "Figure 31", "permutation-based page interleaving",
     "PADC complementary to bank remapping", {"sensitivity"}},
    &runFig31);

} // namespace
} // namespace padc::exp
