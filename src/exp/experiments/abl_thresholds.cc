/**
 * @file
 * Ablation (DESIGN.md): sensitivity of PADC to its two thresholds --
 * the APS promotion threshold and the APD drop-threshold table -- plus
 * the prefetch-distance rescaling used by this reproduction.
 *
 * Expectation: performance is flat near the paper's 85% promotion
 * threshold; overly small drop thresholds cost useful prefetches while
 * overly large ones stop dropping anything; very long lookahead
 * distances waste buffer space at our clock ratio.
 */

#include <array>
#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runAblThresholds(ExperimentContext &ctx)
{
    const sim::RunOptions options = defaultOptions(4);
    const auto mixes = workload::randomMixes(4, 4, ctx.mixSeed(21));
    sim::SystemConfig base = sim::SystemConfig::baseline(4);
    sim::AloneIpcCache alone(base, options);

    std::printf("--- promotion threshold (APS) ---\n");
    for (const double threshold : {0.25, 0.50, 0.70, 0.85, 0.95}) {
        sim::SystemConfig cfg =
            sim::applyPolicy(base, sim::PolicySetup::Padc);
        cfg.sched.promotion_threshold = threshold;
        const auto agg =
            aggregateOverMixes(ctx, cfg, mixes, options, alone);
        std::printf("threshold %.2f   WS %7.3f  HS %7.3f  traffic %9.0f\n",
                    threshold, agg.ws, agg.hs, agg.traffic);
    }

    std::printf("\n--- drop-threshold table scale (APD) ---\n");
    struct Table
    {
        const char *label;
        std::array<Cycle, 4> values;
    };
    const Table tables[] = {
        {"aggressive /10", {10, 150, 5000, 10000}},
        {"paper Table 6", {100, 1500, 50000, 100000}},
        {"lenient x10", {1000, 15000, 500000, 1000000}},
    };
    for (const auto &table : tables) {
        sim::SystemConfig cfg =
            sim::applyPolicy(base, sim::PolicySetup::Padc);
        cfg.sched.drop_thresholds = table.values;
        const auto agg =
            aggregateOverMixes(ctx, cfg, mixes, options, alone);
        std::printf("%-16s WS %7.3f  HS %7.3f  useless %8.0f\n",
                    table.label, agg.ws, agg.hs, agg.traffic_useless);
    }

    std::printf("\n--- stream prefetch distance (time rescaling) ---\n");
    for (const std::uint32_t distance : {8u, 16u, 32u, 64u}) {
        sim::SystemConfig cfg =
            sim::applyPolicy(base, sim::PolicySetup::Padc);
        cfg.prefetcher.distance = distance;
        const auto agg =
            aggregateOverMixes(ctx, cfg, mixes, options, alone);
        std::printf("distance %3u    WS %7.3f  HS %7.3f  traffic %9.0f\n",
                    distance, agg.ws, agg.hs, agg.traffic);
    }
}

const Registrar registrar(
    {"abl_thresholds", "Ablation", "PADC threshold sensitivity",
     "flat near paper settings; extremes degrade", {"ablation"}},
    &runAblThresholds);

} // namespace
} // namespace padc::exp
