/**
 * @file
 * Process-pool smoke grid: a 9-point (3 policies x 3 seeds) evaluate
 * sweep, still seconds of wall-clock, used by the `proc_smoke` ctest
 * label to exercise the multi-process executor. Nine points make the
 * periodic fault schedules meaningful (PADC_FAULT_INJECT=crash:3 fires
 * three times) where the 2-point `smoke` sweep would dodge them, and
 * routing through evaluateSweep covers the alone-baseline wire path
 * that runSweep-only experiments never touch.
 */

#include <cstdio>

#include "exp/registry.hh"
#include "exp/report.hh"

namespace padc::exp
{
namespace
{

void
runSmokeGrid(ExperimentContext &ctx)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    sim::RunOptions options;
    options.instructions = 20000;
    options.warmup = 5000;
    options.max_cycles = 10000000;

    const workload::Mix mix = {"mcf_06"};
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst,
        sim::PolicySetup::Padc};
    const std::uint64_t base_seed = ctx.mixSeed(1);
    constexpr std::uint64_t kSeeds = 3;

    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies) {
        for (std::uint64_t s = 0; s < kSeeds; ++s) {
            sim::RunOptions seeded = options;
            seeded.mix_seed = base_seed + s;
            points.push_back(
                {sim::applyPolicy(base, setup), mix, seeded});
        }
    }

    sim::AloneIpcCache alone(base, options);
    const auto evals = ctx.evaluateSweep(points, alone);

    std::printf("%-18s %6s %8s %8s %8s\n", "policy", "seed", "WS", "HS",
                "UF");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::uint64_t s = 0; s < kSeeds; ++s) {
            const auto &eval = evals[p * kSeeds + s].value;
            std::printf("%-18s %6llu %8.3f %8.3f %8.2f\n",
                        sim::policyLabel(policies[p]).c_str(),
                        static_cast<unsigned long long>(base_seed + s),
                        eval.summary.ws, eval.summary.hs,
                        eval.summary.uf);
        }
    }
}

const Registrar registrar(
    {"smoke_grid", "Smoke grid", "nine-point crash-isolation smoke grid",
     "runs in seconds; exercises the process pool, retry, and journal "
     "paths",
     {"proc"}},
    &runSmokeGrid);

} // namespace
} // namespace padc::exp
