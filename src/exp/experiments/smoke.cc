/**
 * @file
 * Smoke experiment: a deliberately tiny 2-point sweep (no-prefetching
 * vs demand-first on one benchmark, short run) used by the `exp_smoke`
 * ctest label and the driver tests to exercise the full registry ->
 * context -> structured-JSON pipeline in seconds.
 */

#include <cstdio>

#include "exp/registry.hh"
#include "exp/report.hh"

namespace padc::exp
{
namespace
{

void
runSmoke(ExperimentContext &ctx)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    sim::RunOptions options;
    options.instructions = 20000;
    options.warmup = 5000;
    options.max_cycles = 10000000;

    const workload::Mix mix = {"mcf_06"};
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst};

    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies)
        points.push_back({sim::applyPolicy(base, setup), mix, options});
    const auto runs = ctx.runSweep(points);

    std::printf("%-18s %8s %8s\n", "policy", "IPC", "MPKI");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const sim::RunMetrics &m = runs[p].value;
        const double ipc = m.cores.empty() ? 0.0 : m.cores[0].ipc;
        const double mpki = m.cores.empty() ? 0.0 : m.cores[0].mpki;
        std::printf("%-18s %8.3f %8.2f\n",
                    sim::policyLabel(policies[p]).c_str(), ipc, mpki);
    }
}

const Registrar registrar(
    {"smoke", "Smoke test", "two-point pipeline smoke check",
     "runs in seconds; exercises registry/driver/JSON end to end",
     {"smoke"}},
    &runSmoke);

} // namespace
} // namespace padc::exp
