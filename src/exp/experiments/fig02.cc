/**
 * @file
 * Figure 2: the worked scheduling example -- three requests to one bank
 * (row-hit prefetches X and Z to row A, row-conflict demand Y to row B)
 * serviced under demand-first and demand-prefetch-equal.
 *
 * Paper shape: when the prefetches are useful, demand-prefetch-equal
 * finishes the set sooner (2 hits + 1 conflict vs 2 conflicts + 1 hit);
 * when they are useless, demand-first delivers the demand much earlier.
 */

#include <algorithm>
#include <cstdio>

#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "memctrl/controller.hh"

namespace padc::exp
{
namespace
{

/** Collects per-request completion times. */
class Collector : public memctrl::ResponseHandler
{
  public:
    void
    dramReadComplete(const memctrl::Request &req, Cycle now) override
    {
        completions.push_back({req.line_addr, now, req.isPrefetch()});
    }

    void
    dramPrefetchDropped(const memctrl::Request &, Cycle) override
    {
    }

    struct Done
    {
        Addr line;
        Cycle at;
        bool prefetch;
    };
    std::vector<Done> completions;
};

struct Outcome
{
    Cycle demand_done = 0;
    Cycle all_done = 0;
};

Outcome
runScenario(SchedPolicyKind kind)
{
    dram::TimingParams timing;
    dram::Geometry geometry;
    dram::Channel channel(timing, geometry.banks_per_channel);
    dram::AddressMap map(geometry);
    memctrl::AccuracyConfig acc;
    memctrl::AccuracyTracker tracker(1, acc);
    Collector handler;
    memctrl::SchedulerConfig cfg;
    cfg.kind = kind;
    cfg.apd_enabled = false;
    memctrl::MemoryController ctrl(cfg, channel, tracker, handler, 1);

    // Open row A in bank 0 (the figure's starting state).
    auto addrOf = [&](std::uint64_t row, std::uint32_t col) {
        dram::DramCoord c;
        c.bank = 0;
        c.row = row;
        c.col = col;
        return map.unmap(c);
    };
    const Addr warm = addrOf(/*row A=*/1, 0);
    ctrl.enqueueRead(map.map(warm), warm, 0, 0, RequestClass::DemandRead, 0);
    Cycle t = 0;
    while (handler.completions.empty())
        ctrl.tick(t++);
    handler.completions.clear();

    // X, Z: prefetches to row A (row-hits); Y: demand to row B.
    const Addr x = addrOf(1, 1);
    const Addr y = addrOf(2, 0);
    const Addr z = addrOf(1, 2);
    ctrl.enqueueRead(map.map(x), x, 0, 0, RequestClass::Prefetch, t);
    ctrl.enqueueRead(map.map(y), y, 0, 0, RequestClass::DemandRead, t);
    ctrl.enqueueRead(map.map(z), z, 0, 0, RequestClass::Prefetch, t);

    const Cycle start = t;
    Outcome result;
    while (handler.completions.size() < 3)
        ctrl.tick(t++);
    for (const auto &done : handler.completions) {
        if (done.line == lineAlign(y))
            result.demand_done = done.at - start;
        result.all_done = std::max(result.all_done, done.at - start);
    }
    return result;
}

void
recordOutcome(ExperimentContext &ctx, const std::string &label,
              const Outcome &outcome)
{
    StatSet metrics;
    metrics.add("demand_done_cycles",
                static_cast<double>(outcome.demand_done));
    metrics.add("all_done_cycles", static_cast<double>(outcome.all_done));
    ctx.recordCustomPoint(label, outcome.all_done, metrics);
}

void
runFig02(ExperimentContext &ctx)
{
    const Outcome df = runScenario(SchedPolicyKind::DemandFirst);
    const Outcome eq = runScenario(SchedPolicyKind::FrFcfs);
    recordOutcome(ctx, "demand-first", df);
    recordOutcome(ctx, "demand-pref-equal", eq);

    std::printf("%-22s %22s %26s\n", "policy", "demand Y done (cycles)",
                "all three done (cycles)");
    std::printf("%-22s %22llu %26llu\n", "demand-first",
                static_cast<unsigned long long>(df.demand_done),
                static_cast<unsigned long long>(df.all_done));
    std::printf("%-22s %22llu %26llu\n", "demand-pref-equal",
                static_cast<unsigned long long>(eq.demand_done),
                static_cast<unsigned long long>(eq.all_done));

    std::printf("\nuseful-prefetch view  (total service time): "
                "demand-first %llu vs equal %llu -> %s\n",
                static_cast<unsigned long long>(df.all_done),
                static_cast<unsigned long long>(eq.all_done),
                eq.all_done < df.all_done ? "equal wins (paper: 575 vs "
                                            "725)"
                                          : "UNEXPECTED");
    std::printf("useless-prefetch view (demand service time):  "
                "demand-first %llu vs equal %llu -> %s\n",
                static_cast<unsigned long long>(df.demand_done),
                static_cast<unsigned long long>(eq.demand_done),
                df.demand_done < eq.demand_done
                    ? "demand-first wins (paper: 325 vs 525)"
                    : "UNEXPECTED");
}

const Registrar registrar(
    {"fig02", "Figure 2",
     "row-hit prefetches X,Z vs row-conflict demand Y, one bank",
     "equal policy: all three finish sooner (useful-prefetch case); "
     "demand-first: Y finishes much sooner (useless-prefetch case)",
     {"micro"}},
    &runFig02);

} // namespace
} // namespace padc::exp
