/**
 * @file
 * Table 8: effect of prioritizing urgent requests (demands from
 * low-accuracy cores) on the case-study-III mix.
 *
 * Paper shape: without urgency, the prefetch-unfriendly applications
 * starve (high UF); urgency restores their speedups and improves HS at
 * a small WS cost.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runTab08(ExperimentContext &ctx)
{
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::DemandFirst, sim::PolicySetup::ApsNoUrgent,
        sim::PolicySetup::ApsOnly,     sim::PolicySetup::PadcNoUrgent,
        sim::PolicySetup::Padc,
    };
    caseStudyBench(ctx, workload::caseStudyMixed(), policies);
}

const Registrar registrar(
    {"tab08", "Table 8", "urgent-request prioritization ablation",
     "no-urgent variants have much higher unfairness", {"table"}},
    &runTab08);

} // namespace
} // namespace padc::exp
