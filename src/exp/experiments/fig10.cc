/**
 * @file
 * Figures 10-11, case study I: four prefetch-friendly applications
 * (swim, bwaves, leslie3d, soplex) on the 4-core system.
 *
 * Paper shape: demand-pref-equal clearly beats demand-first (all four
 * prefetchers are accurate); PADC is best overall (paper: +31.3% WS
 * over demand-first); traffic savings are small.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig10(ExperimentContext &ctx)
{
    caseStudyBench(ctx, workload::caseStudyFriendly(), fivePolicies());
}

const Registrar registrar(
    {"fig10", "Figures 10-11 (case study I)",
     "four prefetch-friendly applications, 4 cores",
     "equal >> demand-first; PADC best WS", {"case-study"}},
    &runFig10);

} // namespace
} // namespace padc::exp
