/**
 * @file
 * Figure 6: single-core normalized IPC of all five policies over the
 * benchmark suite (15 shown + gmean over the full pool, mirroring the
 * paper's gmean55 bar).
 *
 * Paper shape: neither rigid policy wins everywhere; APS tracks the
 * best rigid policy per benchmark; PADC (APS+APD) is best on average
 * (+4.3% over demand-first in the paper).
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig06(ExperimentContext &ctx)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = defaultOptions(1);

    std::printf("-- the paper's 15 displayed benchmarks --\n");
    singleCoreNormalizedIpc(ctx, base, figureSixBenchmarks(),
                            fivePolicies(), options);

    std::printf("\n-- full profile pool (the paper's gmean55 bar) --\n");
    singleCoreNormalizedIpc(ctx, base, workload::allProfileNames(),
                            fivePolicies(), options);
}

const Registrar registrar(
    {"fig06", "Figure 6", "single-core normalized IPC, five policies",
     "APS ~= best rigid policy per app; PADC best gmean",
     {"single-core"}},
    &runFig06);

} // namespace
} // namespace padc::exp
