/**
 * @file
 * Figures 21-22: dual memory controllers (two independent channels) on
 * the 4-core and 8-core systems.
 *
 * Paper shape: doubling bandwidth lifts every policy; PADC still wins
 * (paper: +5.9%/+5.5% WS over demand-first at 4/8 cores, with
 * ~13% traffic reduction).
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig21(ExperimentContext &ctx)
{
    const auto dual = [](sim::SystemConfig &cfg) {
        cfg.dram.geometry.channels = 2;
    };
    overallBench(ctx, 4, 10, fivePolicies(), dual);
    std::printf("\n");
    overallBench(ctx, 8, 6, fivePolicies(), dual);
}

const Registrar registrar(
    {"fig21", "Figures 21-22", "dual memory controllers",
     "all policies improve; PADC still best", {"overall", "sensitivity"}},
    &runFig21);

} // namespace
} // namespace padc::exp
