/**
 * @file
 * Figure 4: (a) memory service time histogram of useful vs useless
 * prefetches under demand-first, and (b) the prefetch-accuracy timeline
 * for the phase-behaved milc workload.
 *
 * Paper shape: (a) useless prefetches dominate the long-service-time
 * tail (their mean service time exceeds the useful mean); (b) accuracy
 * swings between a high and a near-zero phase.
 */

#include <algorithm>
#include <cstdio>
#include <memory>

#include "exp/registry.hh"
#include "exp/report.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace padc::exp
{
namespace
{

void
runFig04(ExperimentContext &ctx)
{
    sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(1), sim::PolicySetup::DemandFirst);
    // Shrink the L2 so unused prefetched lines resolve (evict) within
    // the run; usefulness classification needs eviction or use.
    cfg.l2.size_bytes = 256 * 1024;

    const workload::Mix mix = {"milc_06"};
    std::vector<std::unique_ptr<workload::SyntheticTrace>> traces;
    traces.push_back(std::make_unique<workload::SyntheticTrace>(
        workload::traceParamsFor(mix, 0, 0)));
    sim::System system(cfg, {traces[0].get()});
    system.run(400000, 80000000);

    const Histogram &useful = system.usefulServiceHist();
    const Histogram &useless = system.uselessServiceHist();

    std::printf("(a) prefetch service time histogram "
                "(bucket width %llu cycles)\n",
                static_cast<unsigned long long>(useful.bucketWidth()));
    std::printf("%-18s %12s %12s\n", "service time", "pref-useful",
                "pref-useless");
    for (std::uint32_t b = 0; b <= useful.buckets(); ++b) {
        char label[32];
        if (b < useful.buckets()) {
            std::snprintf(label, sizeof(label), "%u - %u",
                          b * static_cast<unsigned>(useful.bucketWidth()),
                          (b + 1) * static_cast<unsigned>(
                                        useful.bucketWidth()));
        } else {
            std::snprintf(label, sizeof(label), "%u+",
                          (b) * static_cast<unsigned>(
                                    useful.bucketWidth()));
        }
        std::printf("%-18s %12llu %12llu\n", label,
                    static_cast<unsigned long long>(useful.count(b)),
                    static_cast<unsigned long long>(useless.count(b)));
    }
    std::printf("mean service time: useful %.0f cycles, useless %.0f "
                "cycles -> %s\n\n",
                useful.mean(), useless.mean(),
                useless.mean() > useful.mean()
                    ? "useless slower (paper: 1486 vs 2238)"
                    : "UNEXPECTED");

    std::printf("(b) prefetch accuracy per interval\n");
    const auto &timeline = system.accuracyTimeline();
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &[cycle, acc] : timeline) {
        const int stars = static_cast<int>(acc * 50);
        std::printf("%9llu  %5.2f  |%.*s\n",
                    static_cast<unsigned long long>(cycle), acc, stars,
                    "**************************************************");
        lo = std::min(lo, acc);
        hi = std::max(hi, acc);
    }
    std::printf("accuracy range over run: %.2f .. %.2f -> %s\n", lo, hi,
                hi - lo > 0.3 ? "strong phase behaviour (paper Fig 4b)"
                              : "WEAK PHASES");

    StatSet metrics;
    metrics.add("useful_service_mean", useful.mean());
    metrics.add("useless_service_mean", useless.mean());
    metrics.add("accuracy_min", lo);
    metrics.add("accuracy_max", hi);
    ctx.recordCustomPoint("milc_06 demand-first", system.cycles(),
                          metrics);
}

const Registrar registrar(
    {"fig04", "Figure 4", "prefetch behaviour of milc (demand-first)",
     "(a) useless prefetches skew to long service times; "
     "(b) accuracy shows strong phase behaviour",
     {"single-core", "motivation"}},
    &runFig04);

} // namespace
} // namespace padc::exp
