/**
 * @file
 * Table 7: row-buffer hit rate for *useful* requests (RBHU) per policy.
 *
 * Paper shape: demand-pref-equal has the highest RBHU; APS comes very
 * close; demand-first is noticeably lower; APD (PADC) gives up a tiny
 * amount of RBHU on unfriendly apps by dropping some useful prefetches.
 */

#include <cstdio>

#include "exp/registry.hh"
#include "exp/report.hh"

namespace padc::exp
{
namespace
{

void
runTab07(ExperimentContext &ctx)
{
    const std::vector<std::string> benchmarks = {
        "swim_00",    "galgel_00",     "art_00",   "ammp_00",
        "mcf_06",     "libquantum_06", "omnetpp_06",
        "xalancbmk_06", "bwaves_06",   "milc_06",  "leslie3d_06",
        "soplex_06",  "lbm_06"};

    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = defaultOptions(1);
    const auto &policies = fivePolicies();

    std::printf("%-16s", "benchmark");
    for (const auto setup : policies)
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> rbhu(policies.size());
    for (const auto &name : benchmarks) {
        std::printf("%-16s", name.c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto metrics = ctx.runMix(
                sim::applyPolicy(base, policies[p]), {name}, options);
            rbhu[p].push_back(metrics.cores[0].rbhu);
            std::printf(" %17.2f", metrics.cores[0].rbhu);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "amean");
    for (const auto &column : rbhu)
        std::printf(" %17.2f", amean(column));
    std::printf("\n");
}

const Registrar registrar(
    {"tab07", "Table 7", "row-buffer hit rate of useful requests",
     "equal >= APS > demand-first; PADC slightly below APS on "
     "unfriendly apps",
     {"table", "single-core"}},
    &runTab07);

} // namespace
} // namespace padc::exp
