/**
 * @file
 * Figure 24: every policy under the closed-row buffer-management policy
 * on the 4-core system, with open-row PADC as the reference.
 *
 * Paper shape: PADC still beats the rigid policies under closed-row
 * (+7.6% WS over closed-row demand-first); open-row PADC is slightly
 * better than closed-row PADC overall.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig24(ExperimentContext &ctx)
{
    const sim::RunOptions options = defaultOptions(4);
    const auto mixes = workload::randomMixes(8, 4, ctx.mixSeed(55));

    sim::SystemConfig open_base = sim::SystemConfig::baseline(4);
    sim::SystemConfig closed_base = open_base;
    closed_base.sched.row_policy = RowPolicy::Closed;

    sim::AloneIpcCache alone_open(open_base, options);
    sim::AloneIpcCache alone_closed(closed_base, options);

    for (const auto setup : fivePolicies()) {
        const auto agg = aggregateOverMixes(
            ctx, sim::applyPolicy(closed_base, setup), mixes, options,
            alone_closed);
        printAggregate(sim::policyLabel(setup) + "-closed", agg);
    }
    const auto open_padc = aggregateOverMixes(
        ctx, sim::applyPolicy(open_base, sim::PolicySetup::Padc), mixes,
        options, alone_open);
    printAggregate("aps-apd (PADC)-open", open_padc);
}

const Registrar registrar(
    {"fig24", "Figure 24", "closed-row policy, 4 cores",
     "PADC best under closed-row; open-row PADC slightly ahead",
     {"sensitivity"}},
    &runFig24);

} // namespace
} // namespace padc::exp
