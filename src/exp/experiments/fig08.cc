/**
 * @file
 * Figure 8: single-core bus traffic broken into demand, useful-prefetch,
 * and useless-prefetch cache lines, per policy.
 *
 * Paper shape: PADC reduces total traffic (~10.4% over the suite),
 * almost entirely by removing useless prefetches (APD); for friendly
 * apps the breakdown barely changes.
 */

#include <cstdio>

#include "exp/registry.hh"
#include "exp/report.hh"

namespace padc::exp
{
namespace
{

void
runFig08(ExperimentContext &ctx)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = defaultOptions(1);
    const auto &policies = fivePolicies();

    std::printf("%-16s %-18s %10s %10s %10s %10s\n", "benchmark",
                "policy", "demand", "useful", "useless", "total");

    std::vector<double> totals(policies.size(), 0.0);
    std::vector<double> useless(policies.size(), 0.0);
    for (const auto &name : figureSixBenchmarks()) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto metrics = ctx.runMix(
                sim::applyPolicy(base, policies[p]), {name}, options);
            const auto demand = metrics.trafficDemand();
            const auto use = metrics.trafficPrefUseful();
            const auto no_use = metrics.trafficPrefUseless();
            totals[p] += static_cast<double>(metrics.totalTraffic());
            useless[p] += static_cast<double>(no_use);
            std::printf("%-16s %-18s %10llu %10llu %10llu %10llu\n",
                        name.c_str(),
                        sim::policyLabel(policies[p]).c_str(),
                        static_cast<unsigned long long>(demand),
                        static_cast<unsigned long long>(use),
                        static_cast<unsigned long long>(no_use),
                        static_cast<unsigned long long>(
                            metrics.totalTraffic()));
        }
    }
    std::printf("\n%-18s %14s %14s\n", "policy (sums)", "total",
                "useless");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::printf("%-18s %14.0f %14.0f\n",
                    sim::policyLabel(policies[p]).c_str(), totals[p],
                    useless[p]);
    }
    const double df = totals[1];
    const double padc = totals[4];
    std::printf("\nPADC total traffic vs demand-first: %+.1f%% "
                "(paper: -10.4%%)\n",
                df > 0 ? (padc - df) / df * 100.0 : 0.0);
}

const Registrar registrar(
    {"fig08", "Figure 8", "bus traffic breakdown, single core",
     "PADC cuts useless-prefetch traffic; total -10% ish",
     {"single-core", "traffic"}},
    &runFig08);

} // namespace
} // namespace padc::exp
