/**
 * @file
 * Figures 19-20: PADC augmented with the shortest-job-first ranking
 * rule (Section 6.5) on the 4-core and 8-core systems.
 *
 * Paper shape: ranking keeps WS roughly level, improves HS slightly,
 * and reduces unfairness (more so at 8 cores: -10.4% UF, +2% WS).
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig19(ExperimentContext &ctx)
{
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::DemandFirst, sim::PolicySetup::Padc,
        sim::PolicySetup::PadcRank};
    overallBench(ctx, 4, 10, policies);
    std::printf("\n");
    overallBench(ctx, 8, 6, policies);
}

const Registrar registrar(
    {"fig19", "Figures 19-20", "PADC with request ranking",
     "PADC-rank lowers UF; WS/HS level or better", {"overall"}},
    &runFig19);

} // namespace
} // namespace padc::exp
