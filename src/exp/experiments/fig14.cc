/**
 * @file
 * Figures 14-15, case study III: two prefetch-friendly (libquantum,
 * GemsFDTD) plus two prefetch-unfriendly (omnetpp, galgel) applications
 * on the 4-core system.
 *
 * Paper shape: PADC prevents the unfriendly apps' useless prefetches
 * from denying service to the friendly apps: best WS/HS, large traffic
 * reduction (paper: -14.5%).
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig14(ExperimentContext &ctx)
{
    caseStudyBench(ctx, workload::caseStudyMixed(), fivePolicies());
}

const Registrar registrar(
    {"fig14", "Figures 14-15 (case study III)",
     "mixed friendly/unfriendly applications, 4 cores",
     "PADC best WS/HS and lowest unfairness; traffic cut",
     {"case-study"}},
    &runFig14);

} // namespace
} // namespace padc::exp
