/**
 * @file
 * Figure 25: WS of each policy across per-core L2 sizes (512KB to 8MB)
 * on the 4-core system.
 *
 * Paper shape: PADC wins at every cache size; demand-pref-equal starts
 * beating demand-first beyond ~1MB; APS converges toward PADC as the
 * cache grows (large caches tolerate pollution, so dropping matters
 * less).
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig25(ExperimentContext &ctx)
{
    const sim::RunOptions options = defaultOptions(4);
    const auto mixes = workload::randomMixes(4, 4, ctx.mixSeed(99));

    std::printf("%-10s", "L2/core");
    for (const auto setup : fivePolicies())
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    for (const std::uint32_t kb : {512u, 1024u, 2048u, 4096u, 8192u}) {
        sim::SystemConfig base = sim::SystemConfig::baseline(4);
        base.l2.size_bytes = static_cast<std::uint64_t>(kb) * 1024;
        sim::AloneIpcCache alone(base, options);
        std::printf("%6uKB  ", kb);
        for (const auto setup : fivePolicies()) {
            const auto agg = aggregateOverMixes(
                ctx, sim::applyPolicy(base, setup), mixes, options,
                alone);
            std::printf(" %17.3f", agg.ws);
        }
        std::printf("\n");
    }
}

const Registrar registrar(
    {"fig25", "Figure 25", "L2 cache size sweep, 4 cores",
     "PADC best everywhere; dropping matters less as the cache grows",
     {"sweep", "sensitivity"}},
    &runFig25);

} // namespace
} // namespace padc::exp
