/**
 * @file
 * Figure 7: stall time per load (SPL) on the single-core system for all
 * five policies.
 *
 * Paper shape: PADC has the lowest SPL on average (-5.0% vs
 * demand-first); prefetching reduces SPL drastically for the friendly
 * benchmarks.
 */

#include <cstdio>

#include "exp/registry.hh"
#include "exp/report.hh"

namespace padc::exp
{
namespace
{

void
runFig07(ExperimentContext &ctx)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = defaultOptions(1);
    const auto &policies = fivePolicies();

    std::printf("%-16s", "benchmark");
    for (const auto setup : policies)
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> spl(policies.size());
    for (const auto &name : figureSixBenchmarks()) {
        std::printf("%-16s", name.c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto metrics = ctx.runMix(
                sim::applyPolicy(base, policies[p]), {name}, options);
            spl[p].push_back(metrics.cores[0].spl);
            std::printf(" %17.1f", metrics.cores[0].spl);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "amean");
    for (const auto &column : spl)
        std::printf(" %17.1f", amean(column));
    std::printf("\n");
}

const Registrar registrar(
    {"fig07", "Figure 7", "stall cycles per load (SPL), single core",
     "PADC lowest average SPL; large drops for friendly apps",
     {"single-core"}},
    &runFig07);

} // namespace
} // namespace padc::exp
