/**
 * @file
 * Figure 1: normalized performance of the stream prefetcher under the
 * two rigid DRAM scheduling policies (demand-first vs
 * demand-prefetch-equal) for ten benchmarks on a single core.
 *
 * Paper shape: for the prefetch-unfriendly left five (galgel, ammp,
 * xalancbmk, art, milc) demand-first wins; for the prefetch-friendly
 * right five (lbm, leslie3d, swim, bwaves, libquantum) the order flips.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig01(ExperimentContext &ctx)
{
    const std::vector<std::string> benchmarks = {
        "galgel_00", "ammp_00",  "xalancbmk_06", "art_00",
        "milc_06",   "lbm_06",   "leslie3d_06",  "swim_00",
        "bwaves_06", "libquantum_06"};

    const sim::SystemConfig base = sim::SystemConfig::baseline(1);
    const sim::RunOptions options = defaultOptions(1);

    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::DemandFirst, sim::PolicySetup::DemandPrefEqual};
    singleCoreNormalizedIpc(ctx, base, benchmarks, policies, options);
}

const Registrar registrar(
    {"fig01", "Figure 1", "stream prefetcher under rigid policies",
     "demand-first wins left five; demand-pref-equal wins right five",
     {"single-core", "rigid"}},
    &runFig01);

} // namespace
} // namespace padc::exp
