/**
 * @file
 * Figure 28: PADC with the PC-based stride, C/DC, and Markov
 * prefetchers on the 4-core system.
 *
 * Paper shape: PADC improves performance and cuts traffic with every
 * prefetcher; the gain is largest for stride/C-DC (streaming-like,
 * row-hit-rich) and smallest for Markov (temporal correlation, little
 * spatial locality, mostly-useless prefetches -> APD's traffic cut
 * dominates).
 *
 * The Markov arm runs irregular (class 2) mixes with longer runs:
 * Markov feeds on *recurring* misses, which need enough execution for
 * revisited lines to have left the cache. Random mixes dominated by
 * streaming apps give it nothing to learn, for SPEC just as for our
 * stand-ins.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig28(ExperimentContext &ctx)
{
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref, sim::PolicySetup::DemandFirst,
        sim::PolicySetup::DemandPrefEqual, sim::PolicySetup::Padc};

    for (const PrefetcherKind kind :
         {PrefetcherKind::Stride, PrefetcherKind::Cdc}) {
        std::printf("--- prefetcher: %s ---\n", toString(kind).c_str());
        overallBench(ctx, 4, 8, policies,
                     [kind](sim::SystemConfig &cfg) {
                         cfg.prefetcher.kind = kind;
                     });
        std::printf("\n");
    }

    std::printf("--- prefetcher: markov (irregular mixes) ---\n");
    {
        sim::SystemConfig base = sim::SystemConfig::baseline(4);
        base.prefetcher.kind = PrefetcherKind::Markov;
        sim::RunOptions options = defaultOptions(4);
        options.instructions = 250000;
        options.warmup = 50000;
        const std::vector<workload::Mix> mixes = {
            {"art_00", "omnetpp_06", "galgel_00", "milc_06"},
            {"omnetpp_06", "art_00", "xalancbmk_06", "art_00"},
            {"milc_06", "galgel_00", "omnetpp_06", "xalancbmk_06"},
        };
        sim::AloneIpcCache alone(base, options);
        for (const auto setup : policies) {
            const auto agg = aggregateOverMixes(
                ctx, sim::applyPolicy(base, setup), mixes, options,
                alone);
            printAggregate(sim::policyLabel(setup), agg);
        }
    }
}

const Registrar registrar(
    {"fig28", "Figure 28", "stride / C-DC / Markov prefetchers",
     "PADC helps all three; Markov gains mostly bandwidth",
     {"prefetchers"}},
    &runFig28);

} // namespace
} // namespace padc::exp
