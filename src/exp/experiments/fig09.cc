/**
 * @file
 * Figure 9: overall performance (WS, HS) and bus traffic on the 2-core
 * system over random multiprogrammed mixes (paper: 54 workloads; we run
 * a scaled-down random sample).
 *
 * Paper shape: PADC improves WS by ~8.4% and HS by ~6.4% over
 * demand-first while reducing traffic ~10%.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig09(ExperimentContext &ctx)
{
    overallBench(ctx, 2, 12, fivePolicies());
}

const Registrar registrar(
    {"fig09", "Figure 9", "2-core overall performance and traffic",
     "PADC best WS/HS, lowest traffic", {"overall"}},
    &runFig09);

} // namespace
} // namespace padc::exp
