/**
 * @file
 * Figures 29-30: comparison and combination with Dynamic Data Prefetch
 * Filtering (DDPF) and Feedback Directed Prefetching (FDP).
 *
 * Paper shape: DDPF/FDP cut more traffic than APD but also kill useful
 * prefetches, so APD performs best; APS composes with DDPF/FDP
 * (aps-ddpf, aps-fdp) but plain PADC is the best configuration, under
 * both demand-first and demand-pref-equal base scheduling.
 */

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig29(ExperimentContext &ctx)
{
    sim::SystemConfig base = sim::SystemConfig::baseline(4);
    const sim::RunOptions options = defaultOptions(4);
    const auto mixes = workload::randomMixes(8, 4, ctx.mixSeed(11));
    sim::AloneIpcCache alone(base, options);

    struct Variant
    {
        const char *label;
        sim::PolicySetup setup;
        bool ddpf;
        bool fdp;
    };
    const Variant variants[] = {
        {"demand-first", sim::PolicySetup::DemandFirst, false, false},
        {"demand-first-ddpf", sim::PolicySetup::DemandFirst, true, false},
        {"demand-first-fdp", sim::PolicySetup::DemandFirst, false, true},
        {"demand-first-apd", sim::PolicySetup::ApdOnly, false, false},
        {"demand-pref-equal", sim::PolicySetup::DemandPrefEqual, false,
         false},
        {"dpe-ddpf", sim::PolicySetup::DemandPrefEqual, true, false},
        {"dpe-fdp", sim::PolicySetup::DemandPrefEqual, false, true},
        {"aps-ddpf", sim::PolicySetup::ApsOnly, true, false},
        {"aps-fdp", sim::PolicySetup::ApsOnly, false, true},
        {"aps-apd (PADC)", sim::PolicySetup::Padc, false, false},
    };
    for (const auto &variant : variants) {
        sim::SystemConfig cfg = sim::applyPolicy(base, variant.setup);
        cfg.ddpf_enabled = variant.ddpf;
        cfg.fdp_enabled = variant.fdp;
        const auto agg =
            aggregateOverMixes(ctx, cfg, mixes, options, alone);
        printAggregate(variant.label, agg);
    }
}

const Registrar registrar(
    {"fig29", "Figures 29-30", "DDPF and FDP comparison",
     "PADC best WS; DDPF/FDP cut more traffic at a performance cost",
     {"prefetchers"}},
    &runFig29);

} // namespace
} // namespace padc::exp
