/**
 * @file
 * Figures 26-27: shared last-level cache (2MB/16-way at 4 cores,
 * 4MB/32-way at 8 cores) instead of private L2s.
 *
 * Paper shape: PADC beats demand-first by ~8% at both scales;
 * demand-pref-equal does poorly (shared-cache pollution from useless
 * prefetches hurts every core), with a large traffic blow-up.
 */

#include <cstdio>

#include "exp/harness.hh"
#include "exp/registry.hh"

namespace padc::exp
{
namespace
{

void
runFig26(ExperimentContext &ctx)
{
    const auto shared4 = [](sim::SystemConfig &cfg) {
        cfg.shared_l2 = true;
        cfg.l2.size_bytes = 2 * 1024 * 1024;
        cfg.l2.ways = 16;
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    };
    const auto shared8 = [](sim::SystemConfig &cfg) {
        cfg.shared_l2 = true;
        cfg.l2.size_bytes = 4 * 1024 * 1024;
        cfg.l2.ways = 32;
        cfg.mshr_per_l2 = cfg.sched.request_buffer_size;
    };
    overallBench(ctx, 4, 10, fivePolicies(), shared4);
    std::printf("\n");
    overallBench(ctx, 8, 6, fivePolicies(), shared8);
}

const Registrar registrar(
    {"fig26", "Figures 26-27", "shared last-level cache",
     "PADC best; equal policy hurt by cross-core pollution",
     {"overall", "sensitivity"}},
    &runFig26);

} // namespace
} // namespace padc::exp
