#include "exp/harness.hh"

#include <cstdio>

namespace padc::exp
{

Aggregate
aggregateOverMixes(ExperimentContext &ctx, const sim::SystemConfig &config,
                   const std::vector<workload::Mix> &mixes,
                   const sim::RunOptions &base_options,
                   sim::AloneIpcCache &alone)
{
    std::vector<sim::SweepPoint> points;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        sim::RunOptions options = base_options;
        options.mix_seed = i;
        points.push_back({config, mixes[i], options});
    }
    const auto evals = ctx.evaluateSweep(points, alone);

    Aggregate agg;
    for (const auto &eval : evals)
        foldEvaluation(agg, eval.value);
    finishAggregate(agg);
    return agg;
}

std::vector<std::vector<double>>
singleCoreNormalizedIpc(ExperimentContext &ctx,
                        const sim::SystemConfig &base,
                        const std::vector<std::string> &benchmarks,
                        const std::vector<sim::PolicySetup> &policies,
                        const sim::RunOptions &options)
{
    std::vector<std::vector<double>> normalized(policies.size());

    // One sweep point per (benchmark, no-pref baseline + each policy),
    // evaluated across the pool; the table prints from ordered results.
    const std::size_t stride = policies.size() + 1;
    std::vector<sim::SweepPoint> points;
    for (const auto &name : benchmarks) {
        const workload::Mix mix = {name};
        points.push_back(
            {sim::applyPolicy(base, sim::PolicySetup::NoPref), mix,
             options});
        for (const auto setup : policies)
            points.push_back({sim::applyPolicy(base, setup), mix, options});
    }
    const auto runs = ctx.runSweep(points);
    // Failed points carry an empty metrics vector; read them as 0 IPC
    // so one bad point cannot take down the whole table.
    const auto ipc_of = [&runs](std::size_t i) {
        const sim::RunMetrics &m = runs[i].value;
        return m.cores.empty() ? 0.0 : m.cores[0].ipc;
    };

    std::printf("%-16s", "benchmark");
    for (const auto setup : policies)
        std::printf(" %17s", sim::policyLabel(setup).c_str());
    std::printf("\n");

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const double ipc_nopref = ipc_of(b * stride);
        std::printf("%-16s", benchmarks[b].c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const double ipc = ipc_of(b * stride + 1 + p);
            const double norm = ipc_nopref > 0 ? ipc / ipc_nopref : 0.0;
            normalized[p].push_back(norm);
            std::printf(" %17.3f", norm);
        }
        std::printf("\n");
    }

    std::printf("%-16s", "gmean");
    for (const auto &column : normalized)
        std::printf(" %17.3f", geomean(column));
    std::printf("\n");
    return normalized;
}

void
overallBench(ExperimentContext &ctx, std::uint32_t cores,
             std::uint32_t num_mixes,
             const std::vector<sim::PolicySetup> &policies,
             const std::function<void(sim::SystemConfig &)> &mutate,
             std::uint64_t mix_seed)
{
    sim::SystemConfig base = sim::SystemConfig::baseline(cores);
    if (mutate)
        mutate(base);
    const sim::RunOptions options = defaultOptions(cores);
    const auto mixes =
        workload::randomMixes(num_mixes, cores, ctx.mixSeed(mix_seed));
    sim::AloneIpcCache alone(base, options);

    // Flatten the whole (policy x mix) grid into one sweep so the pool
    // stays saturated across policy boundaries, then fold and print each
    // policy's row from the ordered results.
    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies) {
        const sim::SystemConfig config = sim::applyPolicy(base, setup);
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            sim::RunOptions point_options = options;
            point_options.mix_seed = i;
            points.push_back({config, mixes[i], point_options});
        }
    }
    const auto evals = ctx.evaluateSweep(points, alone);

    std::printf("%u-core system, %u random mixes\n", cores, num_mixes);
    for (std::size_t p = 0; p < policies.size(); ++p) {
        Aggregate agg;
        for (std::size_t i = 0; i < mixes.size(); ++i)
            foldEvaluation(agg, evals[p * mixes.size() + i].value);
        finishAggregate(agg);
        printAggregate(sim::policyLabel(policies[p]), agg);
    }
}

void
caseStudyBench(ExperimentContext &ctx, const workload::Mix &mix,
               const std::vector<sim::PolicySetup> &policies)
{
    sim::SystemConfig base =
        sim::SystemConfig::baseline(static_cast<std::uint32_t>(mix.size()));
    sim::RunOptions options = defaultOptions(
        static_cast<std::uint32_t>(mix.size()));
    options.instructions = 150000;
    options.warmup = 30000;
    sim::AloneIpcCache alone(base, options);

    std::printf("mix:");
    for (const auto &name : mix)
        std::printf(" %s", name.c_str());
    std::printf("\n%-22s", "policy");
    for (const auto &name : mix)
        std::printf(" IS(%-12s)", name.substr(0, 12).c_str());
    std::printf(" %7s %7s %6s %9s %9s\n", "WS", "HS", "UF", "traffic",
                "useless");

    std::vector<sim::SweepPoint> points;
    for (const auto setup : policies)
        points.push_back({sim::applyPolicy(base, setup), mix, options});
    const auto evals = ctx.evaluateSweep(points, alone);

    for (std::size_t p = 0; p < policies.size(); ++p) {
        const sim::MixEvaluation &eval = evals[p].value;
        std::printf("%-22s", sim::policyLabel(policies[p]).c_str());
        for (const double is : eval.summary.speedups)
            std::printf(" %16.3f", is);
        std::printf(" %7.3f %7.3f %6.2f %9llu %9llu\n", eval.summary.ws,
                    eval.summary.hs, eval.summary.uf,
                    static_cast<unsigned long long>(
                        eval.metrics.totalTraffic()),
                    static_cast<unsigned long long>(
                        eval.metrics.trafficPrefUseless()));
    }
}

} // namespace padc::exp
