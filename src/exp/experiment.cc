#include "exp/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "exp/report.hh"
#include "obs/monitor.hh"
#include "sim/interrupt.hh"
#include "sim/journal.hh"
#include "sim/metrics.hh"
#include "sim/procpool.hh"

namespace padc::exp
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    return fnv1a(hash, text.data(), text.size());
}

/** Simulated cycles of one run: the slowest core's cycle count. */
Cycle
runCycles(const sim::RunMetrics &metrics)
{
    Cycle cycles = 0;
    for (const auto &core : metrics.cores)
        cycles = std::max(cycles, core.cycles);
    return cycles;
}

void
addTrafficMetrics(StatSet &metrics, const sim::RunMetrics &run)
{
    metrics.add("traffic_total", static_cast<double>(run.totalTraffic()));
    metrics.add("traffic_demand",
                static_cast<double>(run.trafficDemand()));
    metrics.add("traffic_pref_useful",
                static_cast<double>(run.trafficPrefUseful()));
    metrics.add("traffic_pref_useless",
                static_cast<double>(run.trafficPrefUseless()));
    metrics.add("traffic_writeback",
                static_cast<double>(run.trafficWriteback()));

    // Controller-side per-class serviced counts, opt-in so default BENCH
    // documents stay byte-stable across releases (the baselines are
    // compared bit-exactly). The schema lists these as optional members.
    static const bool class_metrics = [] {
        const char *env = std::getenv("PADC_CLASS_METRICS");
        return env != nullptr && env[0] == '1';
    }();
    if (class_metrics) {
        for (std::size_t c = 0; c < kRequestClassCount; ++c) {
            std::string name = toString(static_cast<RequestClass>(c));
            for (char &ch : name) {
                if (ch == '-')
                    ch = '_';
            }
            metrics.add("class_serviced_" + name,
                        static_cast<double>(run.class_serviced[c]));
        }
    }
}

/** Rank of a point status for worst-status aggregation. */
int
severity(const std::string &status)
{
    if (status == "ok")
        return 0;
    if (status == "truncated")
        return 1;
    return 2;
}

} // namespace

std::uint64_t
ExperimentResult::configHash() const
{
    const std::uint64_t count = points.size();
    std::uint64_t hash = fnv1a(kFnvOffset, &count, sizeof(count));
    for (const PointRecord &point : points)
        hash = fnv1a(hash, &point.key, sizeof(point.key));
    return hash;
}

std::uint64_t
ExperimentResult::simCycles() const
{
    std::uint64_t cycles = 0;
    for (const PointRecord &point : points)
        cycles += point.cycles;
    return cycles;
}

ExperimentContext::ExperimentContext(
    const ExperimentInfo &info, sim::ParallelExperimentRunner &runner,
    sim::SweepJournal *journal, std::optional<std::uint64_t> seed_override,
    telemetry::TelemetryConfig telemetry, sim::ProcessPool *pool)
    : info_(info), runner_(runner), journal_(journal), pool_(pool),
      seed_override_(seed_override), tcfg_(telemetry)
{
}

std::vector<sim::SweepPoint>
ExperimentContext::attachCollectors(
    const std::vector<sim::SweepPoint> &points)
{
    if (!tcfg_.any())
        return points;
    std::vector<sim::SweepPoint> attached = points;
    for (auto &point : attached) {
        captures_.push_back(
            {sim::describePoint(point),
             std::make_unique<telemetry::Collector>(tcfg_)});
        point.config.collector = captures_.back().collector.get();
    }
    return attached;
}

void
ExperimentContext::recordPoint(PointRecord record)
{
    if (severity(record.status) > severity(result_.status)) {
        result_.status = record.status;
        result_.detail = record.detail;
    }
    result_.points.push_back(std::move(record));
}

std::vector<sim::Result<sim::MixEvaluation>>
ExperimentContext::evaluateSweep(const std::vector<sim::SweepPoint> &points,
                                 sim::AloneIpcCache &alone)
{
    // Telemetry collectors cannot cross the process boundary, so
    // telemetry sweeps always run in-thread.
    const bool pooled = pool_ != nullptr && !tcfg_.any();
    if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
        monitor->sweepStarted(info_.name, points.size(),
                              journal_ != nullptr
                                  ? journal_->loadedEntries()
                                  : 0);
    }
    const auto results =
        pooled ? pool_->evaluateSweep(points, alone, journal_)
               : sim::evaluateSweep(attachCollectors(points), alone,
                                    runner_, journal_);
    reportSweepFailures(points, results);
    result_.interrupted = result_.interrupted || sim::interruptRequested();
    if (obs::FleetMonitor *monitor = obs::activeMonitor())
        monitor->sweepFinished(result_.interrupted);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const sim::MixEvaluation &eval = results[i].value;
        PointRecord record;
        record.key = sim::sweepPointKey(points[i]);
        record.label = sim::describePoint(points[i]);
        record.status = sim::toString(results[i].outcome.status);
        record.detail = results[i].outcome.detail;
        record.attempts = results[i].outcome.attempts;
        record.last_error = results[i].outcome.last_error;
        record.cycles = runCycles(eval.metrics);
        record.metrics.add("ws", eval.summary.ws);
        record.metrics.add("hs", eval.summary.hs);
        record.metrics.add("uf", eval.summary.uf);
        for (std::size_t c = 0; c < eval.summary.speedups.size(); ++c)
            record.metrics.add("speedup" + std::to_string(c),
                               eval.summary.speedups[c]);
        addTrafficMetrics(record.metrics, eval.metrics);
        recordPoint(std::move(record));
    }
    return results;
}

std::vector<sim::Result<sim::RunMetrics>>
ExperimentContext::runSweep(const std::vector<sim::SweepPoint> &points)
{
    const bool pooled = pool_ != nullptr && !tcfg_.any();
    if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
        monitor->sweepStarted(info_.name, points.size(),
                              journal_ != nullptr
                                  ? journal_->loadedEntries()
                                  : 0);
    }
    const auto results =
        pooled ? pool_->runSweep(points, journal_)
               : sim::runSweep(attachCollectors(points), runner_,
                               journal_);
    reportSweepFailures(points, results);
    result_.interrupted = result_.interrupted || sim::interruptRequested();
    if (obs::FleetMonitor *monitor = obs::activeMonitor())
        monitor->sweepFinished(result_.interrupted);

    for (std::size_t i = 0; i < points.size(); ++i) {
        const sim::RunMetrics &run = results[i].value;
        PointRecord record;
        record.key = sim::sweepPointKey(points[i]);
        record.label = sim::describePoint(points[i]);
        record.status = sim::toString(results[i].outcome.status);
        record.detail = results[i].outcome.detail;
        record.attempts = results[i].outcome.attempts;
        record.last_error = results[i].outcome.last_error;
        record.cycles = runCycles(run);
        for (std::size_t c = 0; c < run.cores.size(); ++c) {
            const std::string prefix = "core" + std::to_string(c) + ".";
            record.metrics.add(prefix + "ipc", run.cores[c].ipc);
            record.metrics.add(prefix + "mpki", run.cores[c].mpki);
            record.metrics.add(prefix + "spl", run.cores[c].spl);
            record.metrics.add(prefix + "rbhu", run.cores[c].rbhu);
        }
        addTrafficMetrics(record.metrics, run);
        recordPoint(std::move(record));
    }
    return results;
}

sim::RunMetrics
ExperimentContext::runMix(const sim::SystemConfig &config,
                          const workload::Mix &mix,
                          const sim::RunOptions &options)
{
    sim::RunStatus status;
    sim::SystemConfig run_config = config;
    if (tcfg_.any()) {
        captures_.push_back(
            {sim::describePoint({config, mix, options}),
             std::make_unique<telemetry::Collector>(tcfg_)});
        run_config.collector = captures_.back().collector.get();
    }
    const sim::RunMetrics run =
        sim::runMix(run_config, mix, options, &status);

    PointRecord record;
    record.key = sim::sweepPointKey({config, mix, options});
    record.label = sim::describePoint({config, mix, options});
    record.status = status.converged() ? "ok" : "truncated";
    record.detail = status.detail();
    record.cycles = runCycles(run);
    for (std::size_t c = 0; c < run.cores.size(); ++c) {
        const std::string prefix = "core" + std::to_string(c) + ".";
        record.metrics.add(prefix + "ipc", run.cores[c].ipc);
        record.metrics.add(prefix + "mpki", run.cores[c].mpki);
        record.metrics.add(prefix + "spl", run.cores[c].spl);
        record.metrics.add(prefix + "rbhu", run.cores[c].rbhu);
    }
    addTrafficMetrics(record.metrics, run);
    recordPoint(std::move(record));
    return run;
}

void
ExperimentContext::recordScalar(const std::string &name, double value)
{
    result_.scalars.add(name, value);
}

void
ExperimentContext::recordCustomPoint(const std::string &label,
                                     Cycle cycles, const StatSet &metrics)
{
    PointRecord record;
    record.key = fnv1a(fnv1a(kFnvOffset, info_.name), "/" + label);
    record.label = label;
    record.status = "ok";
    record.cycles = cycles;
    record.metrics = metrics;
    recordPoint(std::move(record));
}

} // namespace padc::exp
