#include "exp/driver.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "exp/json.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "obs/monitor.hh"
#include "obs/status.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/protocol.hh"
#include "sim/interrupt.hh"
#include "sim/procpool.hh"
#include "telemetry/export.hh"
#include "telemetry/profiler.hh"
#include "trace/corpus.hh"
#include "trace/tools.hh"

namespace padc::exp
{

namespace
{

/** 64-bit hash rendered as the fixed-width hex the JSON schema uses. */
std::string
hex16(std::uint64_t value)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

bool
parseUint64(const char *text, std::uint64_t *out)
{
    // strtoull accepts (and wraps) signed input; reject it up front.
    if (text == nullptr || *text == '\0' || text[0] == '-' ||
        text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

/**
 * Redirect stdout to /dev/null for the scope (RAII): the structured
 * --format json|csv streams replace the experiments' human-readable
 * rows, which keep printing through printf.
 */
class StdoutSilencer
{
  public:
    explicit StdoutSilencer(bool active)
    {
        if (!active)
            return;
        std::fflush(stdout);
        saved_ = ::dup(::fileno(stdout));
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, ::fileno(stdout));
            ::close(devnull);
        }
    }

    ~StdoutSilencer()
    {
        if (saved_ < 0)
            return;
        std::fflush(stdout);
        ::dup2(saved_, ::fileno(stdout));
        ::close(saved_);
    }

    StdoutSilencer(const StdoutSilencer &) = delete;
    StdoutSilencer &operator=(const StdoutSilencer &) = delete;

  private:
    int saved_ = -1;
};

/** CSV field, quoted when it contains a separator or quote. */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
driverUsage()
{
    return "usage: padc <command> [options]\n"
           "\n"
           "commands:\n"
           "  list                     list every registered experiment\n"
           "  run <name|tag|glob>...   run the selected experiments\n"
           "  run --all                run every registered experiment\n"
           "  status <dir>             render the live status.json a\n"
           "                           `run --progress` sweep keeps in\n"
           "                           its --out directory\n"
           "  serve <dir>              run the long-lived sweep service\n"
           "                           daemon on state directory <dir>:\n"
           "                           Unix socket, durable job queue,\n"
           "                           killed jobs resume on restart\n"
           "  submit <dir> <sel>...    enqueue experiments on the daemon\n"
           "                           at <dir> (names, tags, or globs)\n"
           "  jobs <dir>               list the daemon's job queue\n"
           "  cancel <dir> <job-id>    cancel a pending or running job\n"
           "  metrics <dir>            print the daemon's metrics\n"
           "                           registry (Prometheus text)\n"
           "  trace <subcommand>       trace-corpus toolchain (capture,\n"
           "                           convert, info, verify; see\n"
           "                           'padc trace help')\n"
           "  worker                   (internal) crash-isolated sweep\n"
           "                           worker; spawned by --workers\n"
           "  help                     show this message\n"
           "\n"
           "options:\n"
           "  --threads N    worker threads for the sweep pool\n"
           "                 (default: PADC_THREADS or hardware "
           "concurrency)\n"
           "  --workers N    run sweeps across N crash-isolated worker\n"
           "                 subprocesses instead of in-process threads\n"
           "                 (0 = off; knobs: PADC_WORKER_ATTEMPTS,\n"
           "                 PADC_WORKER_TIMEOUT_MS, "
           "PADC_RETRY_BACKOFF_MS)\n"
           "  --resume PATH  checkpoint/resume journal (default: "
           "$PADC_RESUME)\n"
           "  --seed N       override the random-mix seed of seeded "
           "experiments\n"
           "  --format FMT   text | json | csv (default: text)\n"
           "  --out DIR      directory for BENCH_<name>.json files "
           "(default: .)\n"
           "  --corpus DIR   register the trace corpus at DIR "
           "(corpus.json)\n"
           "                 as trace-backed workload profiles before "
           "running\n"
           "  --progress     live sweep observability: a stderr progress\n"
           "                 line (done/total, rate, ETA, retries) plus\n"
           "                 <out>/status.json and <out>/events.jsonl;\n"
           "                 stdout output is unchanged\n"
           "  --timeseries[=PATH]\n"
           "                 record per-interval telemetry (PAR, drop\n"
           "                 threshold, bus util, queues) to a CSV\n"
           "                 (default: <out>/<name>.timeseries.csv)\n"
           "  --trace[=PATH] record request-lifecycle events to a Chrome\n"
           "                 trace-event JSON loadable in Perfetto\n"
           "                 (default: <out>/<name>.trace.json)\n"
           "  --trace-limit N\n"
           "                 events retained per run (default: 1048576)\n"
           "  --queue-cap N  serve: max pending jobs before submits are\n"
           "                 rejected (default: PADC_SERVE_QUEUE_CAP or "
           "256)\n"
           "  --wait         submit: block until the submitted jobs\n"
           "                 reach a terminal state; exit 1 when any\n"
           "                 failed or was cancelled\n"
           "  --json         status/submit/jobs/metrics: machine-\n"
           "                 readable JSON instead of the text forms\n"
           "\n"
           "Every run also writes a machine-readable BENCH_<name>.json\n"
           "(schema padc-bench-result-v1) per experiment into --out.\n";
}

bool
parseDriverArgs(int argc, const char *const *argv, DriverOptions *out,
                std::string *error)
{
    *out = DriverOptions{};
    if (argc < 2) {
        *error = "missing command (try 'padc help')";
        return false;
    }

    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        out->command = DriverOptions::Command::Help;
    } else if (command == "list") {
        out->command = DriverOptions::Command::List;
    } else if (command == "run") {
        out->command = DriverOptions::Command::Run;
    } else if (command == "status") {
        out->command = DriverOptions::Command::Status;
    } else if (command == "serve") {
        out->command = DriverOptions::Command::Serve;
    } else if (command == "submit") {
        out->command = DriverOptions::Command::Submit;
    } else if (command == "jobs") {
        out->command = DriverOptions::Command::Jobs;
    } else if (command == "cancel") {
        out->command = DriverOptions::Command::Cancel;
    } else if (command == "metrics") {
        out->command = DriverOptions::Command::Metrics;
    } else {
        *error = "unknown command '" + command + "' (try 'padc help')";
        return false;
    }

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--all") {
            out->all = true;
        } else if (arg == "--threads") {
            const char *text = value();
            std::uint64_t threads = 0;
            if (!parseUint64(text, &threads) || threads == 0 ||
                threads > sim::kMaxThreads) {
                *error = "--threads expects an integer in [1, " +
                         std::to_string(sim::kMaxThreads) + "]";
                return false;
            }
            out->threads = static_cast<unsigned>(threads);
        } else if (arg == "--workers") {
            const char *text = value();
            std::uint64_t workers = 0;
            if (!parseUint64(text, &workers) || workers > 1024) {
                *error = "--workers expects an integer in [0, 1024]";
                return false;
            }
            out->workers = static_cast<unsigned>(workers);
        } else if (arg == "--resume") {
            const char *text = value();
            if (text == nullptr || *text == '\0') {
                *error = "--resume expects a journal path";
                return false;
            }
            out->resume_path = text;
        } else if (arg == "--seed") {
            std::uint64_t seed = 0;
            if (!parseUint64(value(), &seed)) {
                *error = "--seed expects a non-negative integer";
                return false;
            }
            out->seed = seed;
        } else if (arg == "--format") {
            const char *text = value();
            if (text != nullptr && std::strcmp(text, "text") == 0) {
                out->format = DriverOptions::Format::Text;
            } else if (text != nullptr &&
                       std::strcmp(text, "json") == 0) {
                out->format = DriverOptions::Format::Json;
            } else if (text != nullptr && std::strcmp(text, "csv") == 0) {
                out->format = DriverOptions::Format::Csv;
            } else {
                *error = "--format expects text, json, or csv";
                return false;
            }
        } else if (arg == "--out") {
            const char *text = value();
            if (text == nullptr || *text == '\0') {
                *error = "--out expects a directory";
                return false;
            }
            out->out_dir = text;
        } else if (arg == "--corpus") {
            const char *text = value();
            if (text == nullptr || *text == '\0') {
                *error = "--corpus expects a directory";
                return false;
            }
            out->corpus_dir = text;
        } else if (arg == "--progress") {
            out->progress = true;
        } else if (arg == "--json") {
            out->json = true;
        } else if (arg == "--wait") {
            out->wait = true;
        } else if (arg == "--queue-cap") {
            std::uint64_t cap = 0;
            if (!parseUint64(value(), &cap) || cap == 0) {
                *error = "--queue-cap expects a positive integer";
                return false;
            }
            out->queue_cap = static_cast<std::size_t>(cap);
        } else if (arg == "--timeseries") {
            out->timeseries = true;
        } else if (arg.rfind("--timeseries=", 0) == 0) {
            out->timeseries = true;
            out->timeseries_path = arg.substr(std::strlen("--timeseries="));
            if (out->timeseries_path.empty()) {
                *error = "--timeseries= expects a file path";
                return false;
            }
        } else if (arg == "--trace") {
            out->trace = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            out->trace = true;
            out->trace_path = arg.substr(std::strlen("--trace="));
            if (out->trace_path.empty()) {
                *error = "--trace= expects a file path";
                return false;
            }
        } else if (arg == "--trace-limit" ||
                   arg.rfind("--trace-limit=", 0) == 0) {
            const char *text =
                arg == "--trace-limit"
                    ? value()
                    : arg.c_str() + std::strlen("--trace-limit=");
            if (!parseUint64(text, &out->trace_limit)) {
                *error = "--trace-limit expects a non-negative integer";
                return false;
            }
        } else if (!arg.empty() && arg[0] == '-') {
            *error = "unknown option '" + arg + "' (try 'padc help')";
            return false;
        } else if (out->command == DriverOptions::Command::Run) {
            out->selectors.push_back(arg);
        } else if (out->command == DriverOptions::Command::Status &&
                   out->status_dir.empty()) {
            out->status_dir = arg;
        } else if (out->command == DriverOptions::Command::Serve ||
                   out->command == DriverOptions::Command::Submit ||
                   out->command == DriverOptions::Command::Jobs ||
                   out->command == DriverOptions::Command::Cancel ||
                   out->command == DriverOptions::Command::Metrics) {
            if (out->state_dir.empty()) {
                out->state_dir = arg;
            } else if (out->command == DriverOptions::Command::Submit) {
                out->selectors.push_back(arg);
            } else if (out->command == DriverOptions::Command::Cancel &&
                       !out->job_id_set) {
                if (!parseUint64(arg.c_str(), &out->job_id)) {
                    *error = "cancel expects a numeric job id, got '" +
                             arg + "'";
                    return false;
                }
                out->job_id_set = true;
            } else {
                *error = "unexpected argument '" + arg + "'";
                return false;
            }
        } else {
            *error = "unexpected argument '" + arg + "'";
            return false;
        }
    }

    if (out->command == DriverOptions::Command::Run &&
        out->selectors.empty() && !out->all) {
        *error = "run expects experiment names, tags, globs, or --all";
        return false;
    }
    if (out->command == DriverOptions::Command::Status &&
        out->status_dir.empty()) {
        *error = "status expects the --out directory of a running sweep";
        return false;
    }
    if ((out->command == DriverOptions::Command::Serve ||
         out->command == DriverOptions::Command::Submit ||
         out->command == DriverOptions::Command::Jobs ||
         out->command == DriverOptions::Command::Cancel ||
         out->command == DriverOptions::Command::Metrics) &&
        out->state_dir.empty()) {
        *error = "expected a serve state directory (try 'padc help')";
        return false;
    }
    if (out->command == DriverOptions::Command::Submit &&
        out->selectors.empty()) {
        *error = "submit expects experiment names, tags, or globs";
        return false;
    }
    if (out->command == DriverOptions::Command::Cancel &&
        !out->job_id_set) {
        *error = "cancel expects a job id (see 'padc jobs <dir>')";
        return false;
    }
    return true;
}

std::string
resultJson(const ExperimentInfo &info, const ExperimentResult &result)
{
    JsonWriter writer;
    writer.beginObject();
    writer.member("schema", "padc-bench-result-v1");
    writer.member("name", info.name);
    writer.member("anchor", info.anchor);
    writer.member("title", info.title);
    writer.beginArray("tags");
    for (const std::string &tag : info.tags)
        writer.element(tag);
    writer.endArray();
    writer.member("config_hash", hex16(result.configHash()));
    writer.member("status", result.status);
    writer.member("detail", result.detail);
    writer.member("interrupted", result.interrupted);
    writer.member("wall_seconds", result.wall_seconds);
    writer.member("sim_cycles", result.simCycles());
    writer.member("sim_cycles_per_sec",
                  result.wall_seconds > 0.0
                      ? static_cast<double>(result.simCycles()) /
                            result.wall_seconds
                      : 0.0);
    writer.beginArray("points");
    for (const PointRecord &point : result.points) {
        writer.beginObject();
        writer.member("key", hex16(point.key));
        writer.member("label", point.label);
        writer.member("status", point.status);
        writer.member("detail", point.detail);
        writer.member("attempts", point.attempts);
        writer.member("last_error", point.last_error);
        writer.member("cycles", static_cast<std::uint64_t>(point.cycles));
        writer.beginObject("metrics");
        for (const auto &[name, value] : point.metrics.entries())
            writer.member(name, value);
        writer.endObject();
        writer.endObject();
    }
    writer.endArray();
    writer.beginObject("scalars");
    for (const auto &[name, value] : result.scalars.entries())
        writer.member(name, value);
    writer.endObject();
    writer.beginObject("profile");
    for (const auto &[name, value] : result.profile.entries())
        writer.member(name, value);
    writer.endObject();
    writer.beginArray("sinks");
    for (const SinkSummary &sink : result.sinks) {
        writer.beginObject();
        writer.member("kind", sink.kind);
        writer.member("path", sink.path);
        writer.member("rows", sink.rows);
        writer.member("dropped", sink.dropped);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return writer.str();
}

namespace
{

int
listExperiments(const DriverOptions &options)
{
    const auto experiments = ExperimentRegistry::instance().all();
    if (options.format == DriverOptions::Format::Json) {
        JsonWriter writer;
        writer.beginObject();
        writer.member("schema", "padc-experiment-list-v1");
        writer.beginArray("experiments");
        for (const Experiment *experiment : experiments) {
            const ExperimentInfo &info = experiment->info;
            writer.beginObject();
            writer.member("name", info.name);
            writer.member("anchor", info.anchor);
            writer.member("title", info.title);
            writer.member("paper_shape", info.paper_shape);
            writer.beginArray("tags");
            for (const std::string &tag : info.tags)
                writer.element(tag);
            writer.endArray();
            writer.endObject();
        }
        writer.endArray();
        writer.endObject();
        std::printf("%s\n", writer.str().c_str());
        return 0;
    }

    for (const Experiment *experiment : experiments) {
        const ExperimentInfo &info = experiment->info;
        std::string tags;
        for (const std::string &tag : info.tags) {
            tags += tags.empty() ? "" : ",";
            tags += tag;
        }
        std::printf("%-16s %-28s %s  [%s]\n", info.name.c_str(),
                    info.anchor.c_str(), info.title.c_str(),
                    tags.c_str());
    }
    return 0;
}

/** Resolve the run selectors; empty return = a selector failed. */
std::vector<const Experiment *>
selectExperiments(const DriverOptions &options, bool *ok)
{
    const ExperimentRegistry &registry = ExperimentRegistry::instance();
    *ok = true;
    if (options.all)
        return registry.all();

    std::vector<const Experiment *> selected;
    for (const std::string &selector : options.selectors) {
        const auto matches = registry.match(selector);
        if (matches.empty()) {
            std::fprintf(stderr, "padc: unknown experiment '%s'",
                         selector.c_str());
            const std::string suggestion =
                registry.closestName(selector);
            if (!suggestion.empty())
                std::fprintf(stderr, " (did you mean '%s'?)",
                             suggestion.c_str());
            std::fprintf(stderr, "\n");
            *ok = false;
            return {};
        }
        for (const Experiment *match : matches) {
            if (std::find(selected.begin(), selected.end(), match) ==
                selected.end())
                selected.push_back(match);
        }
    }
    return selected;
}

/**
 * Fail early when an explicit telemetry output path points into a
 * directory that does not exist: better a clear pre-run diagnostic
 * than minutes of simulation followed by a failed fopen.
 */
bool
checkSinkPath(const std::string &path, const char *flag)
{
    if (path.empty())
        return true;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty() || std::filesystem::is_directory(parent))
        return true;
    std::fprintf(stderr,
                 "padc: %s directory '%s' does not exist\n", flag,
                 parent.string().c_str());
    return false;
}

/**
 * Export one experiment's telemetry captures and record the written
 * files in the result. Export failures mark the run failed rather than
 * silently losing the requested artifacts.
 */
void
writeSinks(const DriverOptions &options, const ExperimentInfo &info,
           ExperimentContext &context, ExperimentResult &result,
           bool *any_failed)
{
    const auto emit = [&](const char *kind, const std::string &explicit_path,
                          const std::string &default_name,
                          const std::string &text, std::uint64_t rows,
                          std::uint64_t dropped) {
        const std::string path =
            explicit_path.empty()
                ? (std::filesystem::path(options.out_dir) / default_name)
                      .string()
                : explicit_path;
        std::string error;
        if (!telemetry::writeTextFile(path, text, &error)) {
            std::fprintf(stderr, "padc: %s\n", error.c_str());
            *any_failed = true;
            return;
        }
        result.sinks.push_back({kind, path, rows, dropped});
    };

    if (options.timeseries) {
        std::vector<telemetry::LabeledSeries> series;
        std::uint64_t rows = 0;
        std::uint64_t dropped = 0;
        for (const auto &capture : context.captures()) {
            const telemetry::IntervalSampler *sampler =
                capture.collector->sampler();
            series.push_back({capture.label, sampler});
            if (sampler != nullptr) {
                rows += sampler->pushed() - sampler->dropped();
                dropped += sampler->dropped();
            }
        }
        emit("timeseries", options.timeseries_path,
             info.name + ".timeseries.csv", telemetry::timeseriesCsv(series),
             rows, dropped);
    }
    if (options.trace) {
        std::vector<telemetry::LabeledTrace> traces;
        std::uint64_t rows = 0;
        std::uint64_t dropped = 0;
        for (const auto &capture : context.captures()) {
            const telemetry::TraceBuffer *trace =
                capture.collector->trace();
            traces.push_back({capture.label, trace});
            if (trace != nullptr) {
                rows += trace->events().size();
                dropped += trace->dropped();
            }
        }
        emit("trace", options.trace_path, info.name + ".trace.json",
             telemetry::chromeTraceJson(traces), rows, dropped);
    }
}

} // namespace

/** Snapshot the wall-clock profiler into the result's profile block. */
void
recordRunProfile(ExperimentResult &result)
{
    const telemetry::WallProfiler::Snapshot snap =
        telemetry::WallProfiler::instance().snapshot();
    result.profile.add("build_seconds",
                       snap.seconds(telemetry::ProfilePhase::Build));
    result.profile.add("simulate_seconds",
                       snap.seconds(telemetry::ProfilePhase::Simulate));
    result.profile.add("collect_seconds",
                       snap.seconds(telemetry::ProfilePhase::Collect));
    result.profile.add("scheduler_seconds_est",
                       snap.schedulerSecondsEstimate());
    result.profile.add(
        "scheduler_sampled_cycles",
        static_cast<double>(
            snap.calls(telemetry::ProfilePhase::SchedulerSample)));
    // Event-driven main loop: how much simulated time was jumped over
    // rather than stepped. The caller sets wall_seconds before this
    // runs, so the throughput figure tracks the same run.
    result.profile.add("sim_cycles_per_sec",
                       result.wall_seconds > 0.0
                           ? static_cast<double>(result.simCycles()) /
                                 result.wall_seconds
                           : 0.0);
    result.profile.add("skipped_cycles",
                       static_cast<double>(snap.skipped_cycles));
    result.profile.add("event_jumps",
                       static_cast<double>(snap.event_jumps));
}

/**
 * Drain the process pool's per-experiment profile window into the
 * BENCH JSON `profile` block. Every member is additive — the schema's
 * profile object is open, and default (no --workers) documents do not
 * contain any of these, so pre-extension BENCH files stay byte-stable.
 */
void
recordPoolProfile(sim::ProcessPool &pool, ExperimentResult &result)
{
    const sim::ProcessPool::PoolProfile profile = pool.drainProfile();
    result.profile.add("pool_workers",
                       static_cast<double>(profile.workers.size()));
    result.profile.add("pool_tasks", static_cast<double>(profile.tasks));
    result.profile.add("pool_replayed",
                       static_cast<double>(profile.replayed));
    result.profile.add("pool_retries",
                       static_cast<double>(profile.retries));
    result.profile.add("pool_respawns",
                       static_cast<double>(profile.respawns));
    result.profile.add("pool_quarantined",
                       static_cast<double>(profile.quarantined));
    result.profile.add("pool_timeout_kills",
                       static_cast<double>(profile.timeout_kills));
    result.profile.add("pool_exec_seconds", profile.exec_seconds);
    result.profile.add("pool_sim_cycles_per_sec",
                       profile.exec_seconds > 0.0
                           ? static_cast<double>(profile.sim_cycles) /
                                 profile.exec_seconds
                           : 0.0);
    const StatSet task_ms = profile.task_ms.toStatSet("pool_task_ms");
    for (const auto &[name, value] : task_ms.entries())
        result.profile.add(name, value);
    for (std::size_t slot = 0; slot < profile.workers.size(); ++slot) {
        const sim::ProcessPool::WorkerSlotProfile &worker =
            profile.workers[slot];
        const std::string prefix =
            "pool_worker" + std::to_string(slot) + "_";
        result.profile.add(prefix + "tasks",
                           static_cast<double>(worker.tasks));
        result.profile.add(prefix + "dispatches",
                           static_cast<double>(worker.dispatches));
        result.profile.add(prefix + "kills",
                           static_cast<double>(worker.kills));
        result.profile.add(prefix + "sim_cycles",
                           static_cast<double>(worker.sim_cycles));
        result.profile.add(prefix + "exec_seconds", worker.exec_seconds);
    }
}

namespace
{

/**
 * `padc status <dir>`: render the status.json a `run --progress` sweep
 * maintains. Works mid-sweep (the writer atomic-renames complete
 * snapshots, so this never sees a torn document) and after the sweep —
 * or its supervisor — died, where the last snapshot is exactly what an
 * operator wants to see.
 */
int
statusCommand(const DriverOptions &options)
{
    const std::filesystem::path path =
        std::filesystem::is_directory(options.status_dir)
            ? std::filesystem::path(options.status_dir) / "status.json"
            : std::filesystem::path(options.status_dir);
    obs::SweepStatus status;
    std::string error;
    if (!obs::loadStatusFile(path.string(), &status, &error)) {
        std::error_code exists_error;
        if (!std::filesystem::exists(path, exists_error)) {
            // The common case is simply "nothing ever ran here": say
            // that, not a raw open(2) failure.
            std::fprintf(stderr,
                         "padc: no status.json in '%s' -- no sweep has "
                         "run here yet. Start one with `padc run "
                         "--progress --out <dir>`, or point at a serve "
                         "job directory (<state>/jobs/<id>).\n",
                         options.status_dir.c_str());
        } else {
            std::fprintf(stderr, "padc: %s\n", error.c_str());
        }
        return 1;
    }
    if (options.json)
        std::printf("%s\n", obs::formatStatus(status).c_str());
    else
        std::printf("%s", obs::renderStatusReport(status).c_str());
    return 0;
}

/** Shared job-table rendering of `padc jobs` and `padc submit`. */
void
printJobs(const std::vector<serve::JobView> &jobs, bool json)
{
    if (json) {
        JsonWriter writer;
        writer.beginObject();
        writer.member("schema", "padc-serve-jobs-v1");
        writer.beginArray("jobs");
        for (const serve::JobView &job : jobs) {
            writer.beginObject();
            writer.member("id", std::to_string(job.id));
            writer.member("experiment", job.experiment);
            writer.member("state", job.state);
            writer.member("status", job.status);
            writer.member("detail", job.detail);
            writer.member("attempts", job.attempts);
            if (job.seed.has_value())
                writer.member("seed", std::to_string(*job.seed));
            writer.member("submitted_t_ms",
                          std::to_string(job.submitted_t_ms));
            writer.member("dir", job.dir);
            writer.endObject();
        }
        writer.endArray();
        writer.endObject();
        std::printf("%s\n", writer.str().c_str());
        return;
    }
    std::printf("%-6s %-16s %-10s %-9s %s\n", "job", "experiment",
                "state", "attempts", "detail");
    for (const serve::JobView &job : jobs) {
        const std::string &note =
            !job.detail.empty() ? job.detail : job.status;
        std::printf("%-6llu %-16s %-10s %-9llu %s\n",
                    static_cast<unsigned long long>(job.id),
                    job.experiment.c_str(), job.state.c_str(),
                    static_cast<unsigned long long>(job.attempts),
                    note.c_str());
    }
}

int
serveCommand(const DriverOptions &options)
{
    serve::ServeConfig config;
    config.state_dir = options.state_dir;
    config.workers = options.workers;
    config.queue_cap = options.queue_cap;
    config.corpus_dir = options.corpus_dir;
    return serve::serveMain(config);
}

int
submitCommand(const DriverOptions &options)
{
    serve::ServeRequest request;
    request.op = serve::ServeRequest::Op::Submit;
    request.selectors = options.selectors;
    request.seed = options.seed;
    serve::ServeResponse response;
    std::string error;
    if (!serve::requestOnce(options.state_dir, request, &response,
                            &error)) {
        std::fprintf(stderr, "padc: %s\n", error.c_str());
        return 2;
    }
    if (!response.ok) {
        for (const std::string &message : response.errors)
            std::fprintf(stderr, "padc: %s\n", message.c_str());
        return 2;
    }
    if (!options.wait) {
        printJobs(response.jobs, options.json);
        return 0;
    }

    // --wait: poll until every submitted job is terminal. The bound is
    // a day -- "forever" for a sweep, finite for a wedged daemon.
    const auto terminal = serve::awaitJobs(
        options.state_dir, response.job_ids, 86'400'000, 100, &error);
    if (!terminal.has_value()) {
        std::fprintf(stderr, "padc: %s\n", error.c_str());
        return 2;
    }
    printJobs(*terminal, options.json);
    for (const serve::JobView &job : *terminal) {
        if (job.state != serve::kJobDone)
            return 1;
    }
    return 0;
}

int
jobsCommand(const DriverOptions &options)
{
    serve::ServeRequest request;
    request.op = serve::ServeRequest::Op::Jobs;
    serve::ServeResponse response;
    std::string error;
    if (!serve::requestOnce(options.state_dir, request, &response,
                            &error)) {
        std::fprintf(stderr, "padc: %s\n", error.c_str());
        return 2;
    }
    printJobs(response.jobs, options.json);
    return 0;
}

int
cancelCommand(const DriverOptions &options)
{
    serve::ServeRequest request;
    request.op = serve::ServeRequest::Op::Cancel;
    request.job_id = options.job_id;
    serve::ServeResponse response;
    std::string error;
    if (!serve::requestOnce(options.state_dir, request, &response,
                            &error)) {
        std::fprintf(stderr, "padc: %s\n", error.c_str());
        return 2;
    }
    if (!response.ok) {
        for (const std::string &message : response.errors)
            std::fprintf(stderr, "padc: %s\n", message.c_str());
        return 1;
    }
    printJobs(response.jobs, options.json);
    return 0;
}

int
metricsCommand(const DriverOptions &options)
{
    serve::ServeRequest request;
    request.op = serve::ServeRequest::Op::Metrics;
    request.metrics_json = options.json;
    serve::ServeResponse response;
    std::string error;
    if (!serve::requestOnce(options.state_dir, request, &response,
                            &error)) {
        std::fprintf(stderr, "padc: %s\n", error.c_str());
        return 2;
    }
    std::printf("%s", response.text.c_str());
    if (!response.text.empty() && response.text.back() != '\n')
        std::printf("\n");
    return 0;
}

/**
 * Owns the --progress FleetMonitor for the scope of a run: installs it
 * as the process-global observer and clears the global before the
 * monitor is destroyed (driverMain is a library function; tests call it
 * repeatedly in-process).
 */
class MonitorGuard
{
  public:
    MonitorGuard(const DriverOptions &options)
    {
        if (!options.progress)
            return;
        obs::MonitorConfig config;
        config.events_path =
            (std::filesystem::path(options.out_dir) / "events.jsonl")
                .string();
        config.status_path =
            (std::filesystem::path(options.out_dir) / "status.json")
                .string();
        config.progress = true;
        monitor_ = std::make_unique<obs::FleetMonitor>(config);
        obs::setActiveMonitor(monitor_.get());
    }

    ~MonitorGuard()
    {
        if (monitor_ != nullptr)
            obs::setActiveMonitor(nullptr);
    }

    MonitorGuard(const MonitorGuard &) = delete;
    MonitorGuard &operator=(const MonitorGuard &) = delete;

  private:
    std::unique_ptr<obs::FleetMonitor> monitor_;
};

/**
 * Entry point of the internal `padc worker` subcommand: the supervisor
 * spawns `/proc/self/exe worker [--corpus DIR]` with the task/result
 * pipes staged on fixed fds. The worker only needs the corpus
 * registered (trace-backed profiles resolve by name inside shipped
 * sweep points); everything else arrives over the wire.
 */
int
workerEntry(int argc, const char *const *argv)
{
    std::string corpus_dir;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
            corpus_dir = argv[++i];
        } else {
            std::fprintf(stderr, "padc worker: unknown argument '%s'\n",
                         argv[i]);
            return 2;
        }
    }
    if (!corpus_dir.empty()) {
        trace::Corpus corpus;
        std::string error;
        if (!trace::loadCorpus(corpus_dir, &corpus, &error) ||
            !trace::registerCorpus(corpus, &error)) {
            std::fprintf(stderr, "padc worker: %s\n", error.c_str());
            return 2;
        }
    }
    return sim::ProcessPool::workerMain(sim::kWorkerTaskFd,
                                        sim::kWorkerResultFd);
}

/**
 * First SIGINT/SIGTERM requests a graceful stop (finish the in-flight
 * points, flush the journal, write partial BENCH files); a second one
 * exits immediately for operators who really mean it.
 */
volatile sig_atomic_t stop_signal_seen = 0;

void
onStopSignal(int)
{
    if (stop_signal_seen != 0)
        _exit(130);
    stop_signal_seen = 1;
    sim::requestInterrupt();
}

/**
 * Installs the graceful-stop handler on SIGINT/SIGTERM for the scope of
 * a `run` invocation and restores the previous handlers on the way out
 * (driverMain is a library function; tests call it repeatedly
 * in-process).
 */
class StopSignalGuard
{
  public:
    StopSignalGuard()
    {
        stop_signal_seen = 0;
        struct sigaction action = {};
        action.sa_handler = &onStopSignal;
        sigemptyset(&action.sa_mask);
        action.sa_flags = SA_RESTART;
        ::sigaction(SIGINT, &action, &old_int_);
        ::sigaction(SIGTERM, &action, &old_term_);
    }

    ~StopSignalGuard()
    {
        ::sigaction(SIGINT, &old_int_, nullptr);
        ::sigaction(SIGTERM, &old_term_, nullptr);
    }

    StopSignalGuard(const StopSignalGuard &) = delete;
    StopSignalGuard &operator=(const StopSignalGuard &) = delete;

  private:
    struct sigaction old_int_ = {};
    struct sigaction old_term_ = {};
};

void
printCsv(const std::vector<const Experiment *> &experiments,
         const std::vector<ExperimentResult> &results)
{
    std::printf(
        "experiment,point,label,key,status,cycles,metric,value\n");
    // An interrupted run has results only for the experiments that
    // started before the stop; never index experiments past that.
    for (std::size_t e = 0; e < results.size(); ++e) {
        const std::string &name = experiments[e]->info.name;
        const ExperimentResult &result = results[e];
        for (std::size_t p = 0; p < result.points.size(); ++p) {
            const PointRecord &point = result.points[p];
            for (const auto &[metric, value] : point.metrics.entries()) {
                std::printf(
                    "%s,%zu,%s,%s,%s,%llu,%s,%s\n", name.c_str(), p,
                    csvField(point.label).c_str(),
                    hex16(point.key).c_str(), point.status.c_str(),
                    static_cast<unsigned long long>(point.cycles),
                    csvField(metric).c_str(),
                    jsonNumber(value).c_str());
            }
        }
    }
}

} // namespace

int
driverMain(int argc, const char *const *argv)
{
    // The trace toolchain has its own grammar; hand it the raw argv
    // before the experiment-driver parse. Same for the internal worker
    // subcommand the process-pool supervisor spawns.
    if (argc >= 2 && std::strcmp(argv[1], "trace") == 0)
        return trace::traceToolMain(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "worker") == 0)
        return workerEntry(argc, argv);

    DriverOptions options;
    std::string error;
    if (!parseDriverArgs(argc, argv, &options, &error)) {
        std::fprintf(stderr, "padc: %s\n%s", error.c_str(),
                     driverUsage().c_str());
        return 2;
    }

    switch (options.command) {
      case DriverOptions::Command::Help:
        std::printf("%s", driverUsage().c_str());
        return 0;
      case DriverOptions::Command::List:
        return listExperiments(options);
      case DriverOptions::Command::Status:
        return statusCommand(options);
      case DriverOptions::Command::Serve:
        return serveCommand(options);
      case DriverOptions::Command::Submit:
        return submitCommand(options);
      case DriverOptions::Command::Jobs:
        return jobsCommand(options);
      case DriverOptions::Command::Cancel:
        return cancelCommand(options);
      case DriverOptions::Command::Metrics:
        return metricsCommand(options);
      case DriverOptions::Command::Run:
        break;
    }

    if (!options.corpus_dir.empty()) {
        trace::Corpus corpus;
        if (!trace::loadCorpus(options.corpus_dir, &corpus, &error) ||
            !trace::registerCorpus(corpus, &error)) {
            std::fprintf(stderr, "padc: %s\n", error.c_str());
            return 2;
        }
    }

    bool selectors_ok = false;
    const auto experiments = selectExperiments(options, &selectors_ok);
    if (!selectors_ok)
        return 2;

    // One explicit telemetry file cannot hold several experiments'
    // output; require default (per-experiment) naming in that case.
    if (experiments.size() > 1 && (!options.trace_path.empty() ||
                                   !options.timeseries_path.empty())) {
        std::fprintf(stderr,
                     "padc: explicit --trace=/--timeseries= paths only "
                     "work with a single selected experiment (%zu "
                     "selected); use the flag without a path for "
                     "per-experiment files\n",
                     experiments.size());
        return 2;
    }
    if (!checkSinkPath(options.trace_path, "--trace") ||
        !checkSinkPath(options.timeseries_path, "--timeseries")) {
        return 2;
    }

    if (options.threads > 0 &&
        !sim::setSharedRunnerThreads(options.threads)) {
        std::fprintf(stderr,
                     "padc: warning: --threads ignored (pool already "
                     "running)\n");
    }
    if (!options.resume_path.empty() &&
        !sim::setEnvJournalPath(options.resume_path)) {
        std::fprintf(stderr,
                     "padc: warning: --resume ignored (journal already "
                     "resolved)\n");
    }

    std::error_code dir_error;
    std::filesystem::create_directories(options.out_dir, dir_error);
    if (dir_error) {
        std::fprintf(stderr, "padc: cannot create --out '%s': %s\n",
                     options.out_dir.c_str(),
                     dir_error.message().c_str());
        return 2;
    }

    const bool silent_text =
        options.format != DriverOptions::Format::Text;
    bool any_failed = false;
    std::vector<ExperimentResult> results;
    std::vector<std::string> documents;
    telemetry::TelemetryConfig tcfg;
    tcfg.timeseries = options.timeseries;
    tcfg.trace = options.trace;
    tcfg.trace_limit = options.trace_limit;

    // Graceful Ctrl-C: the first SIGINT/SIGTERM stops after the points
    // already in flight, flushes the journal, and writes the partial
    // BENCH JSON with "interrupted": true; a second one exits hard.
    sim::resetInterruptState();
    StopSignalGuard stop_signals;

    // --progress observability: events.jsonl + status.json in --out and
    // a stderr progress line. Everything stays on stderr / in files so
    // the stdout streams above are byte-identical with the flag off.
    MonitorGuard monitor_guard(options);

    std::unique_ptr<sim::ProcessPool> pool;
    if (options.workers > 0 && tcfg.any()) {
        std::fprintf(stderr,
                     "padc: warning: --workers ignored (telemetry "
                     "collectors cannot cross the process boundary); "
                     "sweeps run in-thread\n");
    } else if (options.workers > 0) {
        std::vector<std::string> worker_argv = {"/proc/self/exe",
                                                "worker"};
        if (!options.corpus_dir.empty()) {
            worker_argv.push_back("--corpus");
            worker_argv.push_back(options.corpus_dir);
        }
        pool = std::make_unique<sim::ProcessPool>(
            std::move(worker_argv),
            sim::ProcPoolConfig::fromEnv(options.workers));
        if (!pool->available()) {
            std::fprintf(stderr,
                         "padc: warning: no sweep worker process came "
                         "up; sweeps run in-thread\n");
        }
    }

    bool any_interrupted = false;
    for (const Experiment *experiment : experiments) {
        const ExperimentInfo &info = experiment->info;
        ExperimentContext context(info, sim::sharedRunner(),
                                  sim::envJournal(), options.seed, tcfg,
                                  pool.get());
        telemetry::WallProfiler::instance().reset();
        const auto start = std::chrono::steady_clock::now();
        {
            StdoutSilencer silence(silent_text);
            banner(info.anchor, info.title, info.paper_shape);
            try {
                experiment->run(context);
            } catch (const std::exception &e) {
                context.result().status = "failed";
                context.result().detail = e.what();
            }
        }
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;

        ExperimentResult &result = context.result();
        result.wall_seconds = wall.count();
        recordRunProfile(result);
        if (pool != nullptr && pool->available())
            recordPoolProfile(*pool, result);
        writeSinks(options, info, context, result, &any_failed);
        if (options.format == DriverOptions::Format::Text) {
            std::printf(
                "[%s] %.3g sim-cycles in %.2fs (%.3g cycles/sec); "
                "build %.2fs, simulate %.2fs, collect %.2fs, "
                "scheduler ~%.2fs (sampled estimate)\n",
                info.name.c_str(),
                static_cast<double>(result.simCycles()),
                result.wall_seconds,
                result.wall_seconds > 0.0
                    ? static_cast<double>(result.simCycles()) /
                          result.wall_seconds
                    : 0.0,
                result.profile.get("build_seconds"),
                result.profile.get("simulate_seconds"),
                result.profile.get("collect_seconds"),
                result.profile.get("scheduler_seconds_est"));
            for (const SinkSummary &sink : result.sinks) {
                std::printf("[%s] wrote %s '%s' (%llu rows, %llu "
                            "beyond retention)\n",
                            info.name.c_str(), sink.kind.c_str(),
                            sink.path.c_str(),
                            static_cast<unsigned long long>(sink.rows),
                            static_cast<unsigned long long>(sink.dropped));
            }
        }
        if (result.status == "failed" && !result.detail.empty() &&
            result.points.empty()) {
            std::fprintf(stderr, "padc: experiment '%s' failed: %s\n",
                         info.name.c_str(), result.detail.c_str());
        }
        any_failed = any_failed || result.status == "failed";

        const std::string document = resultJson(info, result);
        const std::filesystem::path path =
            std::filesystem::path(options.out_dir) /
            ("BENCH_" + info.name + ".json");
        if (std::FILE *file = std::fopen(path.c_str(), "w")) {
            std::fputs(document.c_str(), file);
            std::fputc('\n', file);
            std::fclose(file);
        } else {
            std::fprintf(stderr, "padc: cannot write '%s'\n",
                         path.c_str());
            any_failed = true;
        }
        documents.push_back(document);
        results.push_back(std::move(result));
        // A graceful stop still wrote this experiment's (partial) BENCH
        // file above; later experiments never start.
        if (results.back().interrupted) {
            any_interrupted = true;
            break;
        }
    }

    if (options.format == DriverOptions::Format::Json) {
        std::string out = "{\"schema\": \"padc-bench-results-v1\", "
                          "\"results\": [";
        for (std::size_t i = 0; i < documents.size(); ++i) {
            out += i == 0 ? "" : ",";
            out += documents[i];
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
    } else if (options.format == DriverOptions::Format::Csv) {
        printCsv(experiments, results);
    }
    if (any_interrupted)
        return 130;
    return any_failed ? 1 : 0;
}

} // namespace padc::exp
