#include "exp/report.hh"

#include <cstdio>

namespace padc::exp
{

const std::vector<sim::PolicySetup> &
fivePolicies()
{
    static const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::NoPref,     sim::PolicySetup::DemandFirst,
        sim::PolicySetup::DemandPrefEqual, sim::PolicySetup::ApsOnly,
        sim::PolicySetup::Padc,
    };
    return policies;
}

sim::RunOptions
defaultOptions(std::uint32_t cores)
{
    sim::RunOptions opt;
    opt.instructions = cores == 1 ? 200000 : 100000;
    opt.warmup = opt.instructions / 4;
    opt.max_cycles = 80000000;
    return opt;
}

std::vector<std::string>
figureSixBenchmarks()
{
    return {"swim_00",      "galgel_00",   "art_00",     "ammp_00",
            "gcc_06",       "mcf_06",      "libquantum_06",
            "omnetpp_06",   "xalancbmk_06", "bwaves_06",  "milc_06",
            "cactusADM_06", "leslie3d_06", "soplex_06",  "lbm_06"};
}

void
banner(const std::string &artifact, const std::string &description,
       const std::string &expectation)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", artifact.c_str(), description.c_str());
    std::printf("paper shape: %s\n", expectation.c_str());
    std::printf("==============================================================\n");
}

namespace
{

template <typename T>
std::size_t
reportSweepFailuresImpl(const std::vector<sim::SweepPoint> &points,
                        const std::vector<sim::Result<T>> &results)
{
    // Points that recovered: the pool retried them after a worker death
    // and a later attempt produced a clean result. Worth a note (the
    // crash diagnostics would otherwise vanish), but not a warning.
    // Diagnostics go to stderr: with --format json the experiments'
    // human-readable stdout is silenced (and must stay clean JSON), and
    // retry/quarantine reports are exactly what an operator should see
    // either way.
    std::size_t retried = 0;
    for (const auto &result : results)
        retried += (result.ok() && result.outcome.attempts > 1) ? 1 : 0;
    if (retried > 0) {
        std::fprintf(stderr,
                     "NOTE: %zu sweep point(s) succeeded after worker "
                     "retries:\n",
                     retried);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].ok() || results[i].outcome.attempts <= 1)
                continue;
            std::fprintf(stderr,
                         "  point %zu (%s): attempt %u succeeded; "
                         "previous worker %s\n",
                         i, sim::describePoint(points[i]).c_str(),
                         results[i].outcome.attempts,
                         results[i].outcome.last_error.c_str());
        }
    }

    std::size_t bad = 0;
    for (const auto &result : results)
        bad += result.ok() ? 0 : 1;
    if (bad == 0)
        return 0;
    std::fprintf(stderr,
                 "WARNING: %zu of %zu sweep points did not produce a "
                 "converged result:\n",
                 bad, results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok())
            continue;
        // Quarantined points already carry the attempt count and the
        // last worker's exit status/signal in their detail; the suffix
        // distinguishes multi-attempt failures elsewhere too.
        std::string attempts_note;
        if (results[i].outcome.attempts > 1) {
            attempts_note = " [" +
                            std::to_string(results[i].outcome.attempts) +
                            " attempts]";
        }
        std::fprintf(stderr, "  point %zu (%s): %s: %s%s\n", i,
                     sim::describePoint(points[i]).c_str(),
                     sim::toString(results[i].outcome.status),
                     results[i].outcome.detail.c_str(),
                     attempts_note.c_str());
    }
    return bad;
}

} // namespace

std::size_t
reportSweepFailures(const std::vector<sim::SweepPoint> &points,
                    const std::vector<sim::Result<sim::MixEvaluation>> &results)
{
    return reportSweepFailuresImpl(points, results);
}

std::size_t
reportSweepFailures(const std::vector<sim::SweepPoint> &points,
                    const std::vector<sim::Result<sim::RunMetrics>> &results)
{
    return reportSweepFailuresImpl(points, results);
}

void
foldEvaluation(Aggregate &agg, const sim::MixEvaluation &eval)
{
    agg.ws += eval.summary.ws;
    agg.hs += eval.summary.hs;
    agg.uf += eval.summary.uf;
    agg.traffic += static_cast<double>(eval.metrics.totalTraffic());
    agg.traffic_useless +=
        static_cast<double>(eval.metrics.trafficPrefUseless());
    agg.traffic_useful +=
        static_cast<double>(eval.metrics.trafficPrefUseful());
    agg.traffic_demand +=
        static_cast<double>(eval.metrics.trafficDemand());
    ++agg.mixes;
}

void
finishAggregate(Aggregate &agg)
{
    const double n = agg.mixes > 0 ? agg.mixes : 1;
    agg.ws /= n;
    agg.hs /= n;
    agg.uf /= n;
    agg.traffic /= n;
    agg.traffic_useless /= n;
    agg.traffic_useful /= n;
    agg.traffic_demand /= n;
}

void
printAggregate(const std::string &label, const Aggregate &agg)
{
    std::printf("%-22s WS %7.3f  HS %7.3f  UF %6.2f  traffic %9.0f"
                "  (dem %7.0f  useful %7.0f  useless %7.0f)\n",
                label.c_str(), agg.ws, agg.hs, agg.uf, agg.traffic,
                agg.traffic_demand, agg.traffic_useful,
                agg.traffic_useless);
}

} // namespace padc::exp
