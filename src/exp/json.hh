/**
 * @file
 * Minimal JSON support for the experiment layer.
 *
 * The writer produces the machine-readable `BENCH_<name>.json` result
 * files (and the driver's --format json stream); the parser exists so
 * the test suite can validate emitted files against the checked-in
 * schema snapshot without an external dependency. Doubles are written
 * with the shortest decimal form that round-trips bit-exactly, so a
 * parse of our own output reproduces every metric.
 */

#ifndef PADC_EXP_JSON_HH
#define PADC_EXP_JSON_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace padc::exp
{

/** Serialize @p text as a JSON string literal, quotes included. */
std::string jsonQuote(const std::string &text);

/**
 * Serialize a finite double as the shortest decimal that parses back
 * to the same bits; non-finite values serialize as null (JSON has no
 * NaN/Inf).
 */
std::string jsonNumber(double value);

/**
 * Incremental writer for the subset of JSON the result files use:
 * nested objects and arrays, string/number/bool members. Produces
 * 2-space-indented output with deterministic member order (insertion
 * order -- the caller controls it).
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();            ///< anonymous (root or array element)
    void beginObject(const std::string &key);
    void endObject();

    void beginArray(const std::string &key);
    void endArray();

    void member(const std::string &key, const std::string &value);
    void member(const std::string &key, const char *value);
    void member(const std::string &key, double value);
    void member(const std::string &key, std::uint64_t value);
    void member(const std::string &key, bool value);

    /** String element of the innermost array. */
    void element(const std::string &value);

    /** Number element of the innermost array (shortest round-trip). */
    void element(double value);

    /** The document; valid once every begin* has been closed. */
    const std::string &str() const { return out_; }

  private:
    void indent();
    void comma();

    std::string out_;
    std::vector<bool> first_in_scope_; ///< per nesting level
};

/**
 * Parsed JSON value (recursive). Object member order is not preserved
 * (std::map) -- the parser exists for validation, not round-tripping.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse a complete JSON document.
 * @return true and fill @p out on success; false with a position +
 *         message in @p error on malformed input.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error = nullptr);

} // namespace padc::exp

#endif // PADC_EXP_JSON_HH
