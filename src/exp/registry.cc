#include "exp/registry.hh"

#include <algorithm>
#include <stdexcept>

#include "common/suggest.hh"

namespace padc::exp
{

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative glob with backtracking over the last '*'.
    std::size_t p = 0;
    std::size_t t = 0;
    std::size_t star = std::string::npos;
    std::size_t star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(ExperimentInfo info, ExperimentFn run)
{
    if (find(info.name) != nullptr)
        throw std::logic_error("duplicate experiment name: " + info.name);
    experiments_.push_back({std::move(info), run});
}

std::vector<const Experiment *>
ExperimentRegistry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const Experiment &experiment : experiments_)
        out.push_back(&experiment);
    std::sort(out.begin(), out.end(),
              [](const Experiment *a, const Experiment *b) {
                  return a->info.name < b->info.name;
              });
    return out;
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const Experiment &experiment : experiments_) {
        if (experiment.info.name == name)
            return &experiment;
    }
    return nullptr;
}

std::vector<const Experiment *>
ExperimentRegistry::match(const std::string &selector) const
{
    std::vector<const Experiment *> out;
    for (const Experiment *experiment : all()) {
        const ExperimentInfo &info = experiment->info;
        const bool tagged =
            std::find(info.tags.begin(), info.tags.end(), selector) !=
            info.tags.end();
        if (info.name == selector || tagged ||
            globMatch(selector, info.name)) {
            out.push_back(experiment);
        }
    }
    return out;
}

std::string
ExperimentRegistry::closestName(const std::string &input) const
{
    std::vector<std::string> names;
    names.reserve(experiments_.size());
    for (const Experiment &experiment : experiments_)
        names.push_back(experiment.info.name);
    return closestMatch(input, names);
}

} // namespace padc::exp
