/**
 * @file
 * First-class experiment descriptors and the execution context the
 * `padc` driver hands to each registered experiment.
 *
 * An Experiment is one paper artifact (figure, table, or ablation):
 * a stable CLI name, the paper anchor it reproduces, tags for group
 * selection, and a run function. The run function prints the exact
 * human-readable rows the standalone bench binaries used to print
 * (byte-identical -- that is the migration's correctness bar) while
 * recording a structured ExperimentResult through the context, from
 * which the driver emits a uniform machine-readable
 * `BENCH_<name>.json` for every experiment.
 */

#ifndef PADC_EXP_EXPERIMENT_HH
#define PADC_EXP_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/parallel.hh"
#include "telemetry/telemetry.hh"
#include "workload/mixes.hh"

namespace padc::sim
{
class ProcessPool;
} // namespace padc::sim

namespace padc::exp
{

/** Static description of one registered experiment. */
struct ExperimentInfo
{
    std::string name;        ///< CLI name, e.g. "fig09"
    std::string anchor;      ///< paper anchor, e.g. "Figure 9"
    std::string title;       ///< what it measures (banner line 1)
    std::string paper_shape; ///< the paper's qualitative claim
    std::vector<std::string> tags; ///< group selectors, e.g. "overall"
};

/** One executed simulation point of an experiment, for the JSON file. */
struct PointRecord
{
    std::uint64_t key = 0; ///< config hash (sim::sweepPointKey)
    std::string label;     ///< human identification of the point
    std::string status;    ///< "ok" / "truncated" / "failed"
    std::string detail;    ///< diagnostic for non-ok points
    std::uint64_t attempts = 1; ///< executions (0 = replay/never ran)
    std::string last_error;     ///< last failed attempt when retried
    Cycle cycles = 0;      ///< simulated cycles of the point
    StatSet metrics;       ///< per-point scalar metrics
};

/** One telemetry artifact the driver wrote for this experiment. */
struct SinkSummary
{
    std::string kind; ///< "timeseries" / "trace"
    std::string path; ///< where the file was written
    std::uint64_t rows = 0;    ///< rows / events retained in the file
    std::uint64_t dropped = 0; ///< rows / events lost to retention bounds
};

/** Structured outcome of one experiment run. */
struct ExperimentResult
{
    std::string status = "ok"; ///< worst point status / "failed" on throw
    std::string detail;        ///< diagnostic when status != "ok"
    std::vector<PointRecord> points;
    StatSet scalars;           ///< experiment-level summary metrics
    double wall_seconds = 0.0; ///< filled by the driver

    /**
     * True when a SIGINT/SIGTERM cut the run short: the recorded points
     * are genuine, but unfinished points appear as failed "interrupted"
     * and later sweeps of the experiment never ran.
     */
    bool interrupted = false;

    std::vector<SinkSummary> sinks; ///< telemetry files (driver-filled)
    StatSet profile; ///< host wall-clock phase profile (driver-filled)

    /**
     * 64-bit FNV-1a over every point key in order (seeded with the
     * count), identifying the exact set of configurations the run
     * executed.
     */
    std::uint64_t configHash() const;

    /** Total simulated cycles across all points. */
    std::uint64_t simCycles() const;
};

/**
 * Execution context of one experiment run: the shared runner/journal
 * plumbing plus the structured-result sink. The sweep wrappers mirror
 * the sim:: entry points but also print the standard per-point failure
 * summary and record every point into the result, so experiments get
 * structured output for free by routing their sweeps through here.
 */
class ExperimentContext
{
  public:
    /**
     * @param info the experiment being run
     * @param runner pool the sweeps fan out on
     * @param journal checkpoint/resume journal, may be nullptr
     * @param seed_override --seed value, overrides per-experiment
     *        default mix seeds when set
     * @param telemetry which telemetry sinks to attach to each executed
     *        point (all off by default)
     * @param pool when non-null, sweeps run crash-isolated across its
     *        worker subprocesses instead of in-process threads.
     *        Telemetry wins over the pool: collectors cannot cross the
     *        process boundary, so sweeps run in-thread when any
     *        telemetry sink is enabled.
     */
    ExperimentContext(const ExperimentInfo &info,
                      sim::ParallelExperimentRunner &runner,
                      sim::SweepJournal *journal,
                      std::optional<std::uint64_t> seed_override,
                      telemetry::TelemetryConfig telemetry = {},
                      sim::ProcessPool *pool = nullptr);

    const ExperimentInfo &info() const { return info_; }

    sim::ParallelExperimentRunner &runner() { return runner_; }

    sim::SweepJournal *journal() { return journal_; }

    /** The experiment's default mix seed, unless --seed overrode it. */
    std::uint64_t mixSeed(std::uint64_t dflt) const
    {
        return seed_override_.value_or(dflt);
    }

    /**
     * sim::evaluateSweep across the context runner/journal, followed by
     * the standard failure summary (prints nothing when fault-free) and
     * per-point recording into the result.
     */
    std::vector<sim::Result<sim::MixEvaluation>>
    evaluateSweep(const std::vector<sim::SweepPoint> &points,
                  sim::AloneIpcCache &alone);

    /** sim::runSweep with the same reporting/recording contract. */
    std::vector<sim::Result<sim::RunMetrics>>
    runSweep(const std::vector<sim::SweepPoint> &points);

    /**
     * Single-point serial run (sim::runMix), recorded like a one-point
     * sweep. Used by the per-benchmark serial experiments (SPL, bus
     * traffic, RBHU).
     */
    sim::RunMetrics runMix(const sim::SystemConfig &config,
                           const workload::Mix &mix,
                           const sim::RunOptions &options);

    /** Record an experiment-level summary scalar. */
    void recordScalar(const std::string &name, double value);

    /**
     * Record a point that did not come from a sweep (custom scenarios
     * like the Fig. 2 one-bank timeline). The key is derived from the
     * experiment name and the label.
     */
    void recordCustomPoint(const std::string &label, Cycle cycles,
                           const StatSet &metrics);

    /** The structured result under construction. */
    ExperimentResult &result() { return result_; }

    /**
     * Telemetry collected for one executed point. Collectors are
     * allocated per point (in execution order) when telemetry is
     * enabled; journal-replayed points still get a collector, which
     * simply stays empty because the simulation never runs.
     */
    struct PointCapture
    {
        std::string label;
        std::unique_ptr<telemetry::Collector> collector;
    };

    /** Captures of every executed point, in execution order. */
    const std::vector<PointCapture> &captures() const { return captures_; }

  private:
    void recordPoint(PointRecord record);

    /**
     * When telemetry is on, return a copy of @p points with one fresh
     * Collector attached per point (ownership parked in captures_);
     * otherwise return @p points unchanged.
     */
    std::vector<sim::SweepPoint>
    attachCollectors(const std::vector<sim::SweepPoint> &points);

    const ExperimentInfo &info_;
    sim::ParallelExperimentRunner &runner_;
    sim::SweepJournal *journal_;
    sim::ProcessPool *pool_;
    std::optional<std::uint64_t> seed_override_;
    telemetry::TelemetryConfig tcfg_;
    std::vector<PointCapture> captures_;
    ExperimentResult result_;
};

/** Run-function signature of a registered experiment. */
using ExperimentFn = void (*)(ExperimentContext &);

/** A registered experiment: description + run function. */
struct Experiment
{
    ExperimentInfo info;
    ExperimentFn run = nullptr;
};

} // namespace padc::exp

#endif // PADC_EXP_EXPERIMENT_HH
