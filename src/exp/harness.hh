/**
 * @file
 * The standard experiment shapes most paper artifacts are built from:
 * the multiprogrammed "overall" experiment (random mixes, one aggregate
 * row per policy), the Section 6.3 case studies, the single-core
 * normalized-IPC table, and mix aggregation. Every sweep goes through
 * the ExperimentContext, so the structured per-point results are
 * recorded uniformly while the printed rows stay exactly the ones the
 * standalone bench binaries produced.
 */

#ifndef PADC_EXP_HARNESS_HH
#define PADC_EXP_HARNESS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/report.hh"

namespace padc::exp
{

/**
 * Run @p config over every mix and average the multiprogrammed metrics.
 * The alone-IPC cache must be built from the same base options. Mixes
 * are evaluated in parallel (the context's runner); the aggregate is
 * folded in mix order, so results are independent of the thread count.
 */
Aggregate aggregateOverMixes(ExperimentContext &ctx,
                             const sim::SystemConfig &config,
                             const std::vector<workload::Mix> &mixes,
                             const sim::RunOptions &base_options,
                             sim::AloneIpcCache &alone);

/**
 * Single-core sweep: IPC of every policy for every benchmark,
 * normalized to no-prefetching (the paper's Fig. 6 format). Returns
 * the per-policy vector of normalized IPCs (for gmean reporting).
 */
std::vector<std::vector<double>>
singleCoreNormalizedIpc(ExperimentContext &ctx,
                        const sim::SystemConfig &base,
                        const std::vector<std::string> &benchmarks,
                        const std::vector<sim::PolicySetup> &policies,
                        const sim::RunOptions &options);

/**
 * The standard multiprogrammed "overall" experiment: random mixes on an
 * n-core system, one aggregate row per policy. @p mutate (if given)
 * adjusts the base configuration before policies are applied (e.g. dual
 * channels, shared L2, row-buffer size). The context's --seed override
 * replaces @p mix_seed when set.
 */
void overallBench(ExperimentContext &ctx, std::uint32_t cores,
                  std::uint32_t num_mixes,
                  const std::vector<sim::PolicySetup> &policies,
                  const std::function<void(sim::SystemConfig &)> &mutate = {},
                  std::uint64_t mix_seed = 1234);

/**
 * One case-study mix (paper Section 6.3): per-policy individual
 * speedups plus WS/HS/UF and traffic.
 */
void caseStudyBench(ExperimentContext &ctx, const workload::Mix &mix,
                    const std::vector<sim::PolicySetup> &policies);

} // namespace padc::exp

#endif // PADC_EXP_HARNESS_HH
