/**
 * @file
 * Shared reporting helpers of the experiment library: the standard
 * banner, the canonical policy column sets, per-scale default run
 * options, multiprogrammed aggregates, and the per-point sweep failure
 * summary. Moved here from the former bench/common.hh so no experiment
 * logic lives in a header.
 *
 * Every experiment regenerates one table or figure of "Prefetch-Aware
 * DRAM Controllers" (MICRO-41): it prints the same rows/series the
 * paper reports, computed from our simulation stack. Absolute values
 * differ from the paper (different substrate; see DESIGN.md), the
 * *shape* is what each experiment asserts in its paper_shape field.
 */

#ifndef PADC_EXP_REPORT_HH
#define PADC_EXP_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace padc::exp
{

/** The five policy columns used by most figures. */
const std::vector<sim::PolicySetup> &fivePolicies();

/** Default run options per system scale (keeps the suite laptop-fast). */
sim::RunOptions defaultOptions(std::uint32_t cores);

/** The paper's Fig. 1 / Fig. 6 benchmark selection (available subset). */
std::vector<std::string> figureSixBenchmarks();

/** Print the standard experiment banner. */
void banner(const std::string &artifact, const std::string &description,
            const std::string &expectation);

/**
 * Print the per-point failure summary of a sweep: which points failed
 * or were truncated at the cycle cap, and why. Prints nothing when the
 * sweep was fault-free, so healthy experiment output is unchanged.
 * Returns the number of unhealthy points.
 */
std::size_t
reportSweepFailures(const std::vector<sim::SweepPoint> &points,
                    const std::vector<sim::Result<sim::MixEvaluation>> &results);

std::size_t
reportSweepFailures(const std::vector<sim::SweepPoint> &points,
                    const std::vector<sim::Result<sim::RunMetrics>> &results);

/** Aggregate multiprogrammed results across a set of mixes. */
struct Aggregate
{
    double ws = 0.0;
    double hs = 0.0;
    double uf = 0.0;
    double traffic = 0.0;         ///< mean total lines per mix
    double traffic_useless = 0.0; ///< mean useless-prefetch lines
    double traffic_useful = 0.0;
    double traffic_demand = 0.0;
    std::uint32_t mixes = 0;
};

/** Fold one evaluated mix into an aggregate. */
void foldEvaluation(Aggregate &agg, const sim::MixEvaluation &eval);

/** Divide the accumulated sums through by the mix count. */
void finishAggregate(Aggregate &agg);

/** Print one aggregate row. */
void printAggregate(const std::string &label, const Aggregate &agg);

} // namespace padc::exp

#endif // PADC_EXP_REPORT_HH
