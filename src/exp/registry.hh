/**
 * @file
 * Static self-registration registry of all experiments.
 *
 * Each experiment translation unit defines a file-local
 * `Registrar reg_<name>(info, run);` at namespace scope; constructing
 * it adds the experiment to the process-wide registry before main()
 * runs. The experiment TUs are linked as an object library
 * (`padc_experiments` in src/CMakeLists.txt) so a static-library
 * linker can never drop the otherwise-unreferenced registrations.
 */

#ifndef PADC_EXP_REGISTRY_HH
#define PADC_EXP_REGISTRY_HH

#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace padc::exp
{

/**
 * Glob match supporting '*' (any run) and '?' (any one character);
 * used by the driver's selectors, e.g. `padc run 'fig1*'`.
 */
bool globMatch(const std::string &pattern, const std::string &text);

/** Process-wide experiment registry. */
class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /**
     * Register an experiment.
     * @throws std::logic_error on a duplicate name (two registrations
     *         competing for one CLI name is a programming error).
     */
    void add(ExperimentInfo info, ExperimentFn run);

    /** All experiments, sorted by name. */
    std::vector<const Experiment *> all() const;

    /** Exact-name lookup; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

    /**
     * Every experiment selected by @p selector, name-sorted: an exact
     * name, a tag, or a glob over names. Empty when nothing matches.
     */
    std::vector<const Experiment *>
    match(const std::string &selector) const;

    /**
     * The registered name closest to @p input by edit distance, for
     * "did you mean" suggestions; empty when the registry is empty.
     */
    std::string closestName(const std::string &input) const;

    std::size_t size() const { return experiments_.size(); }

  private:
    ExperimentRegistry() = default;

    std::vector<Experiment> experiments_;
};

/** Registers an experiment from a namespace-scope constructor. */
class Registrar
{
  public:
    Registrar(ExperimentInfo info, ExperimentFn run)
    {
        ExperimentRegistry::instance().add(std::move(info), run);
    }
};

} // namespace padc::exp

#endif // PADC_EXP_REGISTRY_HH
