/**
 * @file
 * Client/daemon protocol of the `padc serve` sweep service.
 *
 * A daemon owns one *state directory* and listens on a Unix-domain
 * stream socket inside it. Clients connect, send any number of
 * request frames, and read one response frame per request; frames are
 * the process-pool wire format (sim/wire.hh): a u32 little-endian
 * length prefix followed by one JSON document.
 *
 * Encoding follows the wire-protocol conventions exactly: doubles as
 * shortest-round-trip JSON numbers, 64-bit integers as decimal
 * strings (the JSON parser stores numbers as double, which silently
 * loses precision past 2^53 -- job ids are small today, seeds are
 * not).
 *
 * State-directory layout (all paths derived here so daemon, client,
 * and tests agree):
 *
 *   <state>/serve.sock        the listening socket
 *   <state>/serve.lock        lock file holding the daemon's pid
 *   <state>/jobs.jsonl        durable job journal (serve/jobstore.hh)
 *   <state>/jobs/<id>/        one directory per job: sweep journal,
 *                             status.json + events.jsonl, BENCH JSON,
 *                             log.txt
 */

#ifndef PADC_SERVE_PROTOCOL_HH
#define PADC_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace padc::serve
{

/** Schema tags of the two frame payload shapes. */
inline constexpr char kRequestSchema[] = "padc-serve-request-v1";
inline constexpr char kResponseSchema[] = "padc-serve-response-v1";

/** Schema tag of the daemon-status document inside a Status response. */
inline constexpr char kServeStatusSchema[] = "padc-serve-status-v1";

// --- state-directory layout -------------------------------------------

std::string socketPath(const std::string &state_dir);
std::string lockPath(const std::string &state_dir);
std::string jobsLogPath(const std::string &state_dir);
std::string jobDir(const std::string &state_dir, std::uint64_t job_id);

// --- requests ---------------------------------------------------------

/** One client->daemon request. */
struct ServeRequest
{
    enum class Op : std::uint8_t
    {
        Ping,     ///< liveness probe; empty ok response
        Submit,   ///< enqueue jobs for experiment selectors
        Jobs,     ///< list every job the daemon knows about
        Cancel,   ///< cancel one job (pending or running)
        Metrics,  ///< obs::MetricsRegistry snapshot (the GET /metrics)
        Status,   ///< daemon status document (queue, running job, ...)
        Shutdown, ///< graceful drain + exit, acknowledged first
    };

    Op op = Op::Ping;

    /** Submit: experiment names / tags / globs, expanded server-side. */
    std::vector<std::string> selectors;

    /** Submit: optional --seed override shipped with every job. */
    std::optional<std::uint64_t> seed;

    /** Cancel: the job to cancel. */
    std::uint64_t job_id = 0;

    /** Metrics: emit the JSON snapshot instead of Prometheus text. */
    bool metrics_json = false;
};

// --- responses --------------------------------------------------------

/** Job states a response can report (serve/jobstore.hh mirrors these). */
inline constexpr char kJobPending[] = "pending";
inline constexpr char kJobRunning[] = "running";
inline constexpr char kJobDone[] = "done";
inline constexpr char kJobFailed[] = "failed";
inline constexpr char kJobCancelled[] = "cancelled";

/** One job row of a Jobs (or Submit) response. */
struct JobView
{
    std::uint64_t id = 0;
    std::string experiment;
    std::string state;   ///< kJob* above
    std::string status;  ///< BENCH-level status once finished ("ok"/...)
    std::string detail;  ///< failure / cancellation diagnostic
    std::uint64_t attempts = 0; ///< times the job was started
    std::optional<std::uint64_t> seed;
    std::uint64_t submitted_t_ms = 0; ///< steady-clock ms of submission
    std::string dir; ///< job directory, relative to the state dir
};

/** One daemon->client response. */
struct ServeResponse
{
    bool ok = false;
    std::vector<std::string> errors; ///< accumulated admission errors

    std::vector<std::uint64_t> job_ids; ///< Submit: assigned ids
    std::vector<JobView> jobs;          ///< Jobs (and Submit echo)
    std::string text; ///< Metrics exposition / Status document
};

// --- codec ------------------------------------------------------------

std::string encodeRequest(const ServeRequest &request);
std::string encodeResponse(const ServeResponse &response);

/** @return false with a diagnostic in @p error on malformed payloads. */
bool decodeRequest(const std::string &payload, ServeRequest *out,
                   std::string *error);
bool decodeResponse(const std::string &payload, ServeResponse *out,
                    std::string *error);

} // namespace padc::serve

#endif // PADC_SERVE_PROTOCOL_HH
