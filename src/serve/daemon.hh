/**
 * @file
 * The `padc serve <state-dir>` daemon: a long-running sweep service on
 * top of the crash-isolated process pool.
 *
 * Architecture (DESIGN.md section 15):
 *
 *  - The *socket thread* (run()) owns a Unix-domain listening socket
 *    in the state directory and serves any number of concurrent
 *    clients with a poll(2) loop; each client sends request frames and
 *    receives one response frame per request (serve/protocol.hh).
 *  - The *executor thread* drains the durable FIFO job queue
 *    (serve/jobstore.hh): one job = one registered experiment run,
 *    executed through the shared ProcessPool (constructed once at
 *    startup and reused across every job, so worker processes and
 *    their warm alone-IPC caches persist) with a per-job sweep journal
 *    for exactly-once point resume.
 *  - Every job gets its own directory `<state>/jobs/<id>/` holding the
 *    sweep journal, the BENCH_<name>.json result, the experiment's
 *    text output (log.txt), and live status.json + events.jsonl
 *    written by an obs::FleetMonitor -- `padc status <state>/jobs/<id>`
 *    works mid-job and post-mortem.
 *
 * Crash story:
 *  - Daemon SIGKILLed mid-job: jobs.jsonl shows started-without-
 *    finished, so a restarted daemon re-queues the job; its sweep
 *    journal replays every completed point, so the re-run is
 *    exactly-once. The stale serve.sock/serve.lock are reclaimed after
 *    a pid liveness check; a second daemon against a LIVE lock exits 2.
 *  - Graceful SIGTERM/SIGINT (or a shutdown request): stop accepting
 *    requests, interrupt the in-flight sweep (in-flight points drain
 *    per the sim/interrupt.hh contract, journaled work is kept),
 *    leave the running job resumable, and exit 0.
 *
 * Admission control: submit requests are validated against the
 * experiment registry with accumulated errors (unknown selectors get
 * did-you-mean suggestions) and rejected wholesale when the pending
 * queue would exceed the bounded capacity (backpressure;
 * PADC_SERVE_QUEUE_CAP overrides the default of 256).
 *
 * Test hook (PADC_FAULT_INJECT style, deterministic):
 * PADC_SERVE_TEST_KILL_AFTER=<n> SIGKILLs the daemon after n jobs have
 * reached a terminal record, standing in for a machine reaping the
 * service between jobs.
 */

#ifndef PADC_SERVE_DAEMON_HH
#define PADC_SERVE_DAEMON_HH

#include <cstdint>
#include <string>

namespace padc::serve
{

/** Startup configuration of one daemon (from `padc serve` flags). */
struct ServeConfig
{
    std::string state_dir;
    unsigned workers = 0;   ///< process-pool size; 0 = in-thread sweeps
    /** Max pending jobs (backpressure); 0 = PADC_SERVE_QUEUE_CAP or
     *  kDefaultQueueCap. */
    std::size_t queue_cap = 0;
    std::string corpus_dir; ///< trace corpus registered at startup
};

/** Default pending-queue bound (PADC_SERVE_QUEUE_CAP overrides). */
inline constexpr std::size_t kDefaultQueueCap = 256;

/**
 * Run a daemon until a graceful stop.
 * @return 0 after a clean drain; 2 when the state directory cannot be
 *         set up or another live daemon owns it.
 */
int serveMain(const ServeConfig &config);

/**
 * True when @p pid names a live process (the stale-lock liveness
 * probe: kill(pid, 0), with EPERM counting as alive). Exposed for
 * tests.
 */
bool pidAlive(std::int64_t pid);

} // namespace padc::serve

#endif // PADC_SERVE_DAEMON_HH
