#include "serve/protocol.hh"

#include <cerrno>
#include <cstdlib>

#include "exp/json.hh"

namespace padc::serve
{

namespace
{

std::string
joinPath(const std::string &dir, const std::string &leaf)
{
    if (dir.empty() || dir.back() == '/')
        return dir + leaf;
    return dir + "/" + leaf;
}

/** Wire convention: u64s travel as decimal strings (see wire.hh). */
std::string
u64String(std::uint64_t value)
{
    return std::to_string(value);
}

bool
parseU64String(const exp::JsonValue &value, std::uint64_t *out)
{
    if (!value.isString() || value.string.empty())
        return false;
    const char *text = value.string.c_str();
    if (*text == '-' || *text == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = parsed;
    return true;
}

const char *
opName(ServeRequest::Op op)
{
    switch (op) {
      case ServeRequest::Op::Ping:
        return "ping";
      case ServeRequest::Op::Submit:
        return "submit";
      case ServeRequest::Op::Jobs:
        return "jobs";
      case ServeRequest::Op::Cancel:
        return "cancel";
      case ServeRequest::Op::Metrics:
        return "metrics";
      case ServeRequest::Op::Status:
        return "status";
      case ServeRequest::Op::Shutdown:
        return "shutdown";
    }
    return "ping";
}

bool
opFromName(const std::string &name, ServeRequest::Op *out)
{
    for (const ServeRequest::Op op :
         {ServeRequest::Op::Ping, ServeRequest::Op::Submit,
          ServeRequest::Op::Jobs, ServeRequest::Op::Cancel,
          ServeRequest::Op::Metrics, ServeRequest::Op::Status,
          ServeRequest::Op::Shutdown}) {
        if (name == opName(op)) {
            *out = op;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
socketPath(const std::string &state_dir)
{
    return joinPath(state_dir, "serve.sock");
}

std::string
lockPath(const std::string &state_dir)
{
    return joinPath(state_dir, "serve.lock");
}

std::string
jobsLogPath(const std::string &state_dir)
{
    return joinPath(state_dir, "jobs.jsonl");
}

std::string
jobDir(const std::string &state_dir, std::uint64_t job_id)
{
    return joinPath(state_dir, "jobs/" + std::to_string(job_id));
}

std::string
encodeRequest(const ServeRequest &request)
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("padc", kRequestSchema);
    writer.member("op", opName(request.op));
    writer.beginArray("selectors");
    for (const std::string &selector : request.selectors)
        writer.element(selector);
    writer.endArray();
    if (request.seed.has_value())
        writer.member("seed", u64String(*request.seed));
    writer.member("job", u64String(request.job_id));
    writer.member("metrics_json", request.metrics_json);
    writer.endObject();
    return writer.str();
}

bool
decodeRequest(const std::string &payload, ServeRequest *out,
              std::string *error)
{
    *out = ServeRequest{};
    exp::JsonValue doc;
    if (!exp::parseJson(payload, &doc, error))
        return false;
    if (!doc.isObject()) {
        *error = "request payload is not an object";
        return false;
    }
    const exp::JsonValue *tag = doc.find("padc");
    if (tag == nullptr || !tag->isString() ||
        tag->string != kRequestSchema) {
        *error = "request payload is not a " +
                 std::string(kRequestSchema) + " document";
        return false;
    }
    const exp::JsonValue *op = doc.find("op");
    if (op == nullptr || !op->isString() ||
        !opFromName(op->string, &out->op)) {
        *error = "request has an unknown op";
        return false;
    }
    if (const exp::JsonValue *selectors = doc.find("selectors")) {
        if (!selectors->isArray()) {
            *error = "request 'selectors' is not an array";
            return false;
        }
        for (const exp::JsonValue &element : selectors->array) {
            if (!element.isString()) {
                *error = "request 'selectors' holds a non-string";
                return false;
            }
            out->selectors.push_back(element.string);
        }
    }
    if (const exp::JsonValue *seed = doc.find("seed")) {
        std::uint64_t value = 0;
        if (!parseU64String(*seed, &value)) {
            *error = "request 'seed' is not a decimal u64 string";
            return false;
        }
        out->seed = value;
    }
    if (const exp::JsonValue *job = doc.find("job")) {
        if (!parseU64String(*job, &out->job_id)) {
            *error = "request 'job' is not a decimal u64 string";
            return false;
        }
    }
    if (const exp::JsonValue *flag = doc.find("metrics_json");
        flag != nullptr && flag->kind == exp::JsonValue::Kind::Bool) {
        out->metrics_json = flag->boolean;
    }
    return true;
}

std::string
encodeResponse(const ServeResponse &response)
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("padc", kResponseSchema);
    writer.member("ok", response.ok);
    writer.beginArray("errors");
    for (const std::string &message : response.errors)
        writer.element(message);
    writer.endArray();
    writer.beginArray("job_ids");
    for (const std::uint64_t id : response.job_ids)
        writer.element(u64String(id));
    writer.endArray();
    writer.beginArray("jobs");
    for (const JobView &job : response.jobs) {
        writer.beginObject();
        writer.member("job", u64String(job.id));
        writer.member("experiment", job.experiment);
        writer.member("state", job.state);
        writer.member("status", job.status);
        writer.member("detail", job.detail);
        writer.member("attempts", u64String(job.attempts));
        if (job.seed.has_value())
            writer.member("seed", u64String(*job.seed));
        writer.member("t_submit_ms", u64String(job.submitted_t_ms));
        writer.member("dir", job.dir);
        writer.endObject();
    }
    writer.endArray();
    writer.member("text", response.text);
    writer.endObject();
    return writer.str();
}

bool
decodeResponse(const std::string &payload, ServeResponse *out,
               std::string *error)
{
    *out = ServeResponse{};
    exp::JsonValue doc;
    if (!exp::parseJson(payload, &doc, error))
        return false;
    if (!doc.isObject()) {
        *error = "response payload is not an object";
        return false;
    }
    const exp::JsonValue *tag = doc.find("padc");
    if (tag == nullptr || !tag->isString() ||
        tag->string != kResponseSchema) {
        *error = "response payload is not a " +
                 std::string(kResponseSchema) + " document";
        return false;
    }
    const exp::JsonValue *ok = doc.find("ok");
    if (ok == nullptr || ok->kind != exp::JsonValue::Kind::Bool) {
        *error = "response has no boolean 'ok'";
        return false;
    }
    out->ok = ok->boolean;
    if (const exp::JsonValue *errors = doc.find("errors");
        errors != nullptr && errors->isArray()) {
        for (const exp::JsonValue &element : errors->array) {
            if (element.isString())
                out->errors.push_back(element.string);
        }
    }
    if (const exp::JsonValue *ids = doc.find("job_ids");
        ids != nullptr && ids->isArray()) {
        for (const exp::JsonValue &element : ids->array) {
            std::uint64_t id = 0;
            if (!parseU64String(element, &id)) {
                *error = "response 'job_ids' holds a malformed id";
                return false;
            }
            out->job_ids.push_back(id);
        }
    }
    if (const exp::JsonValue *jobs = doc.find("jobs");
        jobs != nullptr && jobs->isArray()) {
        for (const exp::JsonValue &element : jobs->array) {
            if (!element.isObject()) {
                *error = "response 'jobs' holds a non-object";
                return false;
            }
            JobView job;
            if (const exp::JsonValue *v = element.find("job")) {
                if (!parseU64String(*v, &job.id)) {
                    *error = "response job has a malformed id";
                    return false;
                }
            }
            if (const exp::JsonValue *v = element.find("experiment");
                v != nullptr && v->isString())
                job.experiment = v->string;
            if (const exp::JsonValue *v = element.find("state");
                v != nullptr && v->isString())
                job.state = v->string;
            if (const exp::JsonValue *v = element.find("status");
                v != nullptr && v->isString())
                job.status = v->string;
            if (const exp::JsonValue *v = element.find("detail");
                v != nullptr && v->isString())
                job.detail = v->string;
            if (const exp::JsonValue *v = element.find("attempts"))
                parseU64String(*v, &job.attempts);
            if (const exp::JsonValue *v = element.find("seed")) {
                std::uint64_t seed = 0;
                if (parseU64String(*v, &seed))
                    job.seed = seed;
            }
            if (const exp::JsonValue *v = element.find("t_submit_ms"))
                parseU64String(*v, &job.submitted_t_ms);
            if (const exp::JsonValue *v = element.find("dir");
                v != nullptr && v->isString())
                job.dir = v->string;
            out->jobs.push_back(std::move(job));
        }
    }
    if (const exp::JsonValue *text = doc.find("text");
        text != nullptr && text->isString())
        out->text = text->string;
    return true;
}

} // namespace padc::serve
