#include "serve/daemon.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/driver.hh"
#include "exp/json.hh"
#include "exp/registry.hh"
#include "exp/report.hh"
#include "obs/metrics.hh"
#include "obs/monitor.hh"
#include "serve/jobstore.hh"
#include "serve/protocol.hh"
#include "sim/interrupt.hh"
#include "sim/journal.hh"
#include "sim/procpool.hh"
#include "sim/wire.hh"
#include "telemetry/profiler.hh"
#include "trace/corpus.hh"

namespace padc::serve
{

bool
pidAlive(std::int64_t pid)
{
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    // EPERM: the process exists but belongs to someone else.
    return errno == EPERM;
}

namespace
{

/** Wall-clock milliseconds since the epoch (journal timestamps). */
std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

bool
parseEnvU64(const char *name, std::uint64_t *out)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0' || text[0] == '-' ||
        text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

/**
 * First SIGINT/SIGTERM asks for a graceful drain (finish the in-flight
 * points, journal, leave the running job resumable); a second one exits
 * immediately. The handler only touches lock-free atomics (the kernel
 * may deliver the signal on either thread while the other reads the
 * flag, so sig_atomic_t alone is not enough), calls the
 * async-signal-safe sim::requestInterrupt(), and pokes the self-pipe so
 * the poll() loop wakes without a timeout race.
 */
std::atomic<int> serve_stop_seen{0};
int serve_signal_fd = -1;

void
onServeSignal(int)
{
    if (serve_stop_seen.exchange(1, std::memory_order_relaxed) != 0)
        _exit(130);
    sim::requestInterrupt();
    if (serve_signal_fd >= 0) {
        const char byte = 0;
        while (::write(serve_signal_fd, &byte, 1) < 0 && errno == EINTR) {
        }
    }
}

/**
 * Redirect stdout into the job's log.txt for the scope of one job: the
 * experiments print their human-readable rows through printf, and a
 * daemon has no terminal to show them on. O_APPEND so a resumed job
 * extends its log instead of truncating the first attempt's output.
 */
class StdoutRedirect
{
  public:
    explicit StdoutRedirect(const std::string &path)
    {
        std::fflush(stdout);
        saved_ = ::dup(::fileno(stdout));
        const int fd =
            ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, ::fileno(stdout));
            ::close(fd);
        }
    }

    ~StdoutRedirect()
    {
        if (saved_ < 0)
            return;
        std::fflush(stdout);
        ::dup2(saved_, ::fileno(stdout));
        ::close(saved_);
    }

    StdoutRedirect(const StdoutRedirect &) = delete;
    StdoutRedirect &operator=(const StdoutRedirect &) = delete;

  private:
    int saved_ = -1;
};

JobView
viewOf(const Job &job)
{
    JobView view;
    view.id = job.id;
    view.experiment = job.experiment;
    view.state = toString(job.state);
    view.status = job.status;
    view.detail = job.detail;
    view.attempts = job.attempts;
    view.seed = job.seed;
    view.submitted_t_ms = job.submitted_t_ms;
    view.dir = "jobs/" + std::to_string(job.id);
    return view;
}

/** One connected client of the poll loop. */
struct ClientConn
{
    int fd = -1;
    sim::wire::FrameBuffer frames;
};

class Daemon
{
  public:
    explicit Daemon(ServeConfig config) : config_(std::move(config)) {}

    int run();

  private:
    bool acquireLock();
    void releaseLock();
    bool bindSocket();
    void serveLoop();
    bool serviceClient(ClientConn &client);
    ServeResponse handle(const ServeRequest &request, bool *shutdown);
    ServeResponse handleSubmit(const ServeRequest &request);
    ServeResponse handleCancel(const ServeRequest &request);
    std::string statusDocument();
    void requestStop();
    bool stopRequested();
    void executorLoop();
    void runJob(std::uint64_t id, exp::ExperimentResult *result_out,
                std::string *bench_error);
    void finishJob(std::uint64_t id, const exp::ExperimentResult &result,
                   const std::string &bench_error);
    void noteTerminal();
    void publishQueueMetrics();

    ServeConfig config_;
    std::unique_ptr<JobStore> store_;
    std::unique_ptr<sim::ProcessPool> pool_;
    int lock_fd_ = -1;
    int listen_fd_ = -1;
    int sig_pipe_[2] = {-1, -1};
    std::uint64_t kill_after_ = 0; ///< PADC_SERVE_TEST_KILL_AFTER
    std::uint64_t terminal_seen_ = 0;
    std::chrono::steady_clock::time_point started_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::uint64_t current_job_ = 0; ///< 0 = executor idle
    bool cancel_current_ = false;
};

bool
Daemon::acquireLock()
{
    const std::string path = lockPath(config_.state_dir);
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                              0644);
        if (fd >= 0) {
            std::string line = std::to_string(::getpid());
            line += '\n';
            std::size_t off = 0;
            while (off < line.size()) {
                const ssize_t n =
                    ::write(fd, line.data() + off, line.size() - off);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    break;
                }
                off += static_cast<std::size_t>(n);
            }
            lock_fd_ = fd;
            return true;
        }
        if (errno != EEXIST) {
            std::fprintf(stderr, "padc serve: cannot create '%s': %s\n",
                         path.c_str(), std::strerror(errno));
            return false;
        }

        // A lock already exists: stale (SIGKILLed daemon) or live?
        std::int64_t pid = 0;
        if (std::FILE *in = std::fopen(path.c_str(), "rb")) {
            long long parsed = 0;
            if (std::fscanf(in, "%lld", &parsed) == 1)
                pid = parsed;
            std::fclose(in);
        }
        if (pid > 0 && pid != ::getpid() && pidAlive(pid)) {
            std::fprintf(stderr,
                         "padc serve: state dir '%s' is owned by a live "
                         "daemon (pid %lld); refusing to start a second "
                         "one\n",
                         config_.state_dir.c_str(),
                         static_cast<long long>(pid));
            return false;
        }
        std::fprintf(stderr,
                     "padc serve: reclaiming stale lock '%s' (owner pid "
                     "%lld is gone)\n",
                     path.c_str(), static_cast<long long>(pid));
        ::unlink(path.c_str());
    }
    std::fprintf(stderr,
                 "padc serve: could not acquire '%s' (another daemon is "
                 "racing for it)\n",
                 path.c_str());
    return false;
}

void
Daemon::releaseLock()
{
    if (lock_fd_ < 0)
        return;
    ::close(lock_fd_);
    lock_fd_ = -1;
    ::unlink(lockPath(config_.state_dir).c_str());
}

bool
Daemon::bindSocket()
{
    const std::string path = socketPath(config_.state_dir);
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr,
                     "padc serve: socket path '%s' exceeds sun_path\n",
                     path.c_str());
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    // We hold the lock, so any existing socket file is a stale leftover
    // of a killed daemon; reclaim it.
    ::unlink(path.c_str());

    const int fd = ::socket(
        AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        std::fprintf(stderr, "padc serve: socket: %s\n",
                     std::strerror(errno));
        return false;
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        std::fprintf(stderr, "padc serve: cannot listen on '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        ::close(fd);
        return false;
    }
    listen_fd_ = fd;
    return true;
}

void
Daemon::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    sim::requestInterrupt();
    cv_.notify_all();
}

bool
Daemon::stopRequested()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stop_;
}

void
Daemon::publishQueueMetrics()
{
    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    registry
        .gauge("padc_serve_queue_depth", "jobs waiting for the executor")
        .set(static_cast<std::int64_t>(store_->pendingCount()));
    std::lock_guard<std::mutex> lock(mutex_);
    registry.gauge("padc_serve_running", "1 while a job is executing")
        .set(current_job_ != 0 ? 1 : 0);
}

ServeResponse
Daemon::handleSubmit(const ServeRequest &request)
{
    ServeResponse response;
    if (stopRequested()) {
        response.errors.push_back(
            "daemon is draining; submissions are disabled");
        obs::MetricsRegistry::instance()
            .counter("padc_serve_rejected_total",
                     "submit requests rejected at admission")
            .inc();
        return response;
    }

    // Admission: accumulate EVERY problem before rejecting, so one
    // round trip reports the full damage (the ConfigError convention).
    const exp::ExperimentRegistry &registry =
        exp::ExperimentRegistry::instance();
    std::vector<const exp::Experiment *> selected;
    if (request.selectors.empty())
        response.errors.push_back(
            "submit expects at least one experiment name, tag, or glob");
    for (const std::string &selector : request.selectors) {
        const auto matches = registry.match(selector);
        if (matches.empty()) {
            std::string error = "unknown experiment '" + selector + "'";
            const std::string suggestion = registry.closestName(selector);
            if (!suggestion.empty())
                error += " (did you mean '" + suggestion + "'?)";
            response.errors.push_back(error);
            continue;
        }
        for (const exp::Experiment *match : matches) {
            if (std::find(selected.begin(), selected.end(), match) ==
                selected.end())
                selected.push_back(match);
        }
    }

    // Bounded queue: reject the whole batch rather than admit a prefix
    // (partial admission would make retries double-submit).
    const std::size_t pending = store_->pendingCount();
    if (!selected.empty() &&
        pending + selected.size() > config_.queue_cap) {
        response.errors.push_back(
            "queue is full (" + std::to_string(pending) + " pending, cap " +
            std::to_string(config_.queue_cap) + ", batch of " +
            std::to_string(selected.size()) + "); retry later");
    }
    if (!response.errors.empty()) {
        obs::MetricsRegistry::instance()
            .counter("padc_serve_rejected_total",
                     "submit requests rejected at admission")
            .inc();
        return response;
    }

    for (const exp::Experiment *experiment : selected) {
        const std::uint64_t id = store_->submit(experiment->info.name,
                                                request.seed, nowMs());
        response.job_ids.push_back(id);
        if (const auto job = store_->job(id))
            response.jobs.push_back(viewOf(*job));
    }
    obs::MetricsRegistry::instance()
        .counter("padc_serve_jobs_submitted_total", "jobs admitted")
        .inc(selected.size());
    publishQueueMetrics();
    response.ok = true;
    cv_.notify_all();
    return response;
}

ServeResponse
Daemon::handleCancel(const ServeRequest &request)
{
    ServeResponse response;
    const std::uint64_t id = request.job_id;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto job = store_->job(id);
    if (!job.has_value()) {
        response.errors.push_back("unknown job '" + std::to_string(id) +
                                  "'");
        return response;
    }
    switch (job->state) {
      case JobState::Pending:
        store_->cancel(id, "cancelled by client", nowMs());
        obs::MetricsRegistry::instance()
            .counter("padc_serve_jobs_cancelled_total", "jobs cancelled")
            .inc();
        noteTerminal();
        response.ok = true;
        break;
      case JobState::Running:
        // The executor owns the job; ask it to drain. It appends the
        // cancelled record once the sweep has stopped.
        cancel_current_ = true;
        sim::requestInterrupt();
        response.ok = true;
        break;
      case JobState::Done:
      case JobState::Failed:
      case JobState::Cancelled:
        response.errors.push_back("job '" + std::to_string(id) +
                                  "' is already " + toString(job->state));
        break;
    }
    if (const auto updated = store_->job(id))
        response.jobs.push_back(viewOf(*updated));
    return response;
}

std::string
Daemon::statusDocument()
{
    std::vector<Job> jobs = store_->jobs();
    std::uint64_t pending = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    for (const Job &job : jobs) {
        pending += job.state == JobState::Pending ? 1 : 0;
        done += job.state == JobState::Done ? 1 : 0;
        failed += job.state == JobState::Failed ? 1 : 0;
        cancelled += job.state == JobState::Cancelled ? 1 : 0;
    }
    std::uint64_t running = 0;
    bool draining = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running = current_job_;
        draining = stop_;
    }
    const std::chrono::duration<double> uptime =
        std::chrono::steady_clock::now() - started_;

    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("schema", kServeStatusSchema);
    writer.member("state", draining ? "draining" : "running");
    writer.member("pid", std::to_string(::getpid()));
    writer.member("uptime_seconds", uptime.count());
    writer.member("workers", static_cast<std::uint64_t>(config_.workers));
    writer.member("queue_cap",
                  static_cast<std::uint64_t>(config_.queue_cap));
    writer.member("jobs_total",
                  static_cast<std::uint64_t>(jobs.size()));
    writer.member("pending", pending);
    writer.member("running_job", std::to_string(running));
    writer.member("done", done);
    writer.member("failed", failed);
    writer.member("cancelled", cancelled);
    writer.endObject();
    return writer.str();
}

ServeResponse
Daemon::handle(const ServeRequest &request, bool *shutdown)
{
    obs::MetricsRegistry::instance()
        .counter("padc_serve_requests_total", "serve requests handled")
        .inc();
    ServeResponse response;
    switch (request.op) {
      case ServeRequest::Op::Ping:
        response.ok = true;
        return response;
      case ServeRequest::Op::Submit:
        return handleSubmit(request);
      case ServeRequest::Op::Jobs:
        response.ok = true;
        for (const Job &job : store_->jobs())
            response.jobs.push_back(viewOf(job));
        return response;
      case ServeRequest::Op::Cancel:
        return handleCancel(request);
      case ServeRequest::Op::Metrics:
        response.ok = true;
        response.text =
            request.metrics_json
                ? obs::MetricsRegistry::instance().jsonText()
                : obs::MetricsRegistry::instance().prometheusText();
        return response;
      case ServeRequest::Op::Status:
        response.ok = true;
        response.text = statusDocument();
        return response;
      case ServeRequest::Op::Shutdown:
        // Acknowledge first; the drain starts after the response frame
        // is on the wire (serviceClient sets *shutdown for us).
        response.ok = true;
        *shutdown = true;
        return response;
    }
    response.errors.push_back("unhandled op");
    return response;
}

/**
 * Drain whatever the client delivered: feed the frame buffer, answer
 * every complete request.
 * @return false when the connection should close (EOF, error, corrupt
 *         framing, or a failed response write).
 */
bool
Daemon::serviceClient(ClientConn &client)
{
    char buf[4096];
    const ssize_t n = ::read(client.fd, buf, sizeof(buf));
    if (n == 0)
        return false; // client hung up
    if (n < 0)
        return errno == EINTR || errno == EAGAIN;
    client.frames.feed(buf, static_cast<std::size_t>(n));
    if (client.frames.corrupt())
        return false;

    std::string payload;
    while (client.frames.next(&payload)) {
        ServeRequest request;
        std::string error;
        ServeResponse response;
        bool shutdown = false;
        if (!decodeRequest(payload, &request, &error)) {
            response.ok = false;
            response.errors.push_back("malformed request: " + error);
        } else {
            response = handle(request, &shutdown);
        }
        if (!sim::wire::writeFrame(client.fd, encodeResponse(response)))
            return false;
        if (shutdown) {
            requestStop();
            return false;
        }
    }
    return true;
}

void
Daemon::serveLoop()
{
    std::vector<std::unique_ptr<ClientConn>> clients;
    while (!stopRequested()) {
        if (serve_stop_seen != 0)
            requestStop();

        // Clients accepted below this point join fds[] next round:
        // only the first `polled` entries of clients have revents.
        const std::size_t polled = clients.size();
        std::vector<struct pollfd> fds;
        fds.push_back({sig_pipe_[0], POLLIN, 0});
        fds.push_back({listen_fd_, POLLIN, 0});
        for (const auto &client : clients)
            fds.push_back({client->fd, POLLIN, 0});

        const int n = ::poll(fds.data(), fds.size(), 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        if ((fds[0].revents & POLLIN) != 0) {
            char drain[64];
            while (::read(sig_pipe_[0], drain, sizeof(drain)) > 0) {
            }
            requestStop();
            break;
        }

        if ((fds[1].revents & POLLIN) != 0) {
            for (;;) {
                const int fd =
                    ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
                if (fd < 0)
                    break;
                auto client = std::make_unique<ClientConn>();
                client->fd = fd;
                clients.push_back(std::move(client));
            }
        }

        for (std::size_t i = 0; i < polled;) {
            const short revents = fds[2 + i].revents;
            bool keep = true;
            if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                keep = serviceClient(*clients[i]);
            if (stopRequested())
                keep = keep && false;
            if (keep) {
                ++i;
            } else {
                ::close(clients[i]->fd);
                clients.erase(clients.begin() +
                              static_cast<std::ptrdiff_t>(i));
                // fds[] is stale past this point; rebuild next round.
                break;
            }
        }
    }
    for (const auto &client : clients)
        ::close(client->fd);
}

void
Daemon::noteTerminal()
{
    // Deterministic kill-matrix hook: after n jobs reach a terminal
    // record, die like a SIGKILLed service would (no cleanup at all).
    ++terminal_seen_;
    if (kill_after_ != 0 && terminal_seen_ >= kill_after_) {
        std::fflush(nullptr);
        ::raise(SIGKILL);
    }
}

void
Daemon::runJob(std::uint64_t id, exp::ExperimentResult *result_out,
               std::string *bench_error)
{
    const auto snapshot = store_->job(id);
    if (!snapshot.has_value()) {
        *bench_error = "job vanished from the store";
        return;
    }
    const exp::Experiment *experiment =
        exp::ExperimentRegistry::instance().find(snapshot->experiment);
    if (experiment == nullptr) {
        *bench_error = "experiment '" + snapshot->experiment +
                       "' is not registered in this binary";
        return;
    }
    const std::string dir = jobDir(config_.state_dir, id);
    std::error_code dir_error;
    std::filesystem::create_directories(dir, dir_error);
    if (dir_error) {
        *bench_error =
            "cannot create '" + dir + "': " + dir_error.message();
        return;
    }

    std::unique_ptr<sim::SweepJournal> journal;
    try {
        journal = std::make_unique<sim::SweepJournal>(
            dir + "/sweep.padcjournal");
    } catch (const std::exception &e) {
        *bench_error = e.what();
        return;
    }

    // Fresh workers for a fresh job: respawn any that died during the
    // previous job so one crashy sweep cannot shrink the pool forever.
    if (pool_ != nullptr)
        pool_->refresh();

    obs::MonitorConfig monitor_config;
    monitor_config.events_path = dir + "/events.jsonl";
    monitor_config.status_path = dir + "/status.json";
    monitor_config.progress = false;
    obs::FleetMonitor monitor(monitor_config);
    obs::setActiveMonitor(&monitor);

    const exp::ExperimentInfo &info = experiment->info;
    exp::ExperimentContext context(info, sim::sharedRunner(),
                                   journal.get(), snapshot->seed, {},
                                   pool_.get());
    telemetry::WallProfiler::instance().reset();
    const auto start = std::chrono::steady_clock::now();
    {
        StdoutRedirect log(dir + "/log.txt");
        exp::banner(info.anchor, info.title, info.paper_shape);
        try {
            experiment->run(context);
        } catch (const std::exception &e) {
            context.result().status = "failed";
            context.result().detail = e.what();
        }
    }
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    obs::setActiveMonitor(nullptr);

    exp::ExperimentResult &result = context.result();
    result.wall_seconds = wall.count();
    exp::recordRunProfile(result);
    if (pool_ != nullptr && pool_->available())
        exp::recordPoolProfile(*pool_, result);

    // The BENCH document is written even for interrupted runs (partial
    // results are honest results); a resumed job overwrites it with the
    // completed one.
    const std::string document = exp::resultJson(info, result);
    const std::string bench_path = dir + "/BENCH_" + info.name + ".json";
    if (std::FILE *file = std::fopen(bench_path.c_str(), "w")) {
        std::fputs(document.c_str(), file);
        std::fputc('\n', file);
        std::fclose(file);
    } else if (!result.interrupted) {
        *bench_error = "cannot write '" + bench_path + "'";
    }
    *result_out = std::move(result);
}

void
Daemon::finishJob(std::uint64_t id, const exp::ExperimentResult &result,
                  const std::string &bench_error)
{
    obs::MetricsRegistry &metrics = obs::MetricsRegistry::instance();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!bench_error.empty()) {
        store_->finish(id, "failed", bench_error, nowMs());
        metrics.counter("padc_serve_jobs_failed_total", "jobs failed")
            .inc();
        noteTerminal();
    } else if (result.interrupted && cancel_current_) {
        store_->cancel(id, "cancelled by client", nowMs());
        metrics
            .counter("padc_serve_jobs_cancelled_total", "jobs cancelled")
            .inc();
        noteTerminal();
    } else if (result.interrupted) {
        // Graceful drain: no terminal record -- the absent `finished`
        // line IS the durable resumable marker a restart picks up.
        store_->requeue(id);
    } else {
        store_->finish(id, result.status, result.detail, nowMs());
        metrics
            .counter(result.status == "ok" ? "padc_serve_jobs_done_total"
                                           : "padc_serve_jobs_failed_total",
                     result.status == "ok" ? "jobs finished ok"
                                           : "jobs failed")
            .inc();
        noteTerminal();
    }
    current_job_ = 0;
    // A cancel drain must not leak its interrupt into the next job; a
    // shutdown drain must keep it (the executor exits right after).
    const bool was_cancel = cancel_current_;
    cancel_current_ = false;
    if (was_cancel && !stop_)
        sim::resetInterruptState();
}

void
Daemon::executorLoop()
{
    for (;;) {
        std::uint64_t id = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
                return stop_ || store_->nextPending().has_value();
            });
            if (stop_)
                return;
            const auto next = store_->nextPending();
            if (!next.has_value())
                continue;
            id = *next;
            store_->start(id, nowMs());
            current_job_ = id;
            cancel_current_ = false;
        }
        publishQueueMetrics();

        exp::ExperimentResult result;
        std::string bench_error;
        runJob(id, &result, &bench_error);
        finishJob(id, result, bench_error);
        publishQueueMetrics();
    }
}

int
Daemon::run()
{
    started_ = std::chrono::steady_clock::now();

    std::error_code dir_error;
    std::filesystem::create_directories(
        std::filesystem::path(config_.state_dir) / "jobs", dir_error);
    if (dir_error) {
        std::fprintf(stderr,
                     "padc serve: cannot create state dir '%s': %s\n",
                     config_.state_dir.c_str(),
                     dir_error.message().c_str());
        return 2;
    }

    if (!acquireLock())
        return 2;

    store_ = std::make_unique<JobStore>(jobsLogPath(config_.state_dir));
    if (!store_->ok()) {
        std::fprintf(stderr, "padc serve: %s\n", store_->error().c_str());
        releaseLock();
        return 2;
    }

    if (!config_.corpus_dir.empty()) {
        trace::Corpus corpus;
        std::string error;
        if (!trace::loadCorpus(config_.corpus_dir, &corpus, &error) ||
            !trace::registerCorpus(corpus, &error)) {
            std::fprintf(stderr, "padc serve: %s\n", error.c_str());
            releaseLock();
            return 2;
        }
    }

    if (!bindSocket()) {
        releaseLock();
        return 2;
    }

    if (config_.workers > 0) {
        std::vector<std::string> worker_argv = {"/proc/self/exe",
                                                "worker"};
        if (!config_.corpus_dir.empty()) {
            worker_argv.push_back("--corpus");
            worker_argv.push_back(config_.corpus_dir);
        }
        pool_ = std::make_unique<sim::ProcessPool>(
            std::move(worker_argv),
            sim::ProcPoolConfig::fromEnv(config_.workers));
        if (!pool_->available()) {
            std::fprintf(stderr,
                         "padc serve: warning: no sweep worker process "
                         "came up; sweeps run in-thread\n");
        }
    }

    parseEnvU64("PADC_SERVE_TEST_KILL_AFTER", &kill_after_);

    if (::pipe2(sig_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
        std::fprintf(stderr, "padc serve: pipe2: %s\n",
                     std::strerror(errno));
        releaseLock();
        return 2;
    }

    sim::resetInterruptState();
    serve_stop_seen = 0;
    serve_signal_fd = sig_pipe_[1];
    struct sigaction action = {};
    action.sa_handler = &onServeSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    struct sigaction old_int = {};
    struct sigaction old_term = {};
    ::sigaction(SIGINT, &action, &old_int);
    ::sigaction(SIGTERM, &action, &old_term);
    // Responses to a vanished client must fail with EPIPE, not kill us.
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    struct sigaction old_pipe = {};
    ::sigaction(SIGPIPE, &ignore, &old_pipe);

    std::fprintf(stderr,
                 "padc serve: listening on '%s' (pid %lld, %u workers, "
                 "queue cap %zu, %zu jobs loaded, %zu resumed)\n",
                 socketPath(config_.state_dir).c_str(),
                 static_cast<long long>(::getpid()), config_.workers,
                 config_.queue_cap, store_->loadedJobs(),
                 store_->resumedJobs());
    publishQueueMetrics();

    std::thread executor(&Daemon::executorLoop, this);
    serveLoop();

    // Drain: stop accepting, let the executor finish its interrupt
    // drain (in-flight points complete and journal; the job itself is
    // requeued as resumable), then exit 0.
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socketPath(config_.state_dir).c_str());
    cv_.notify_all();
    executor.join();

    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);
    serve_signal_fd = -1;
    ::close(sig_pipe_[0]);
    ::close(sig_pipe_[1]);
    sig_pipe_[0] = sig_pipe_[1] = -1;

    std::size_t pending = store_->pendingCount();
    std::fprintf(stderr,
                 "padc serve: drained; %zu job(s) left resumable in "
                 "'%s'\n",
                 pending, store_->path().c_str());
    store_.reset();
    releaseLock();
    return 0;
}

} // namespace

int
serveMain(const ServeConfig &config)
{
    ServeConfig effective = config;
    if (effective.queue_cap == 0) {
        std::uint64_t cap = 0;
        effective.queue_cap =
            parseEnvU64("PADC_SERVE_QUEUE_CAP", &cap) && cap > 0
                ? static_cast<std::size_t>(cap)
                : kDefaultQueueCap;
    }
    Daemon daemon(std::move(effective));
    return daemon.run();
}

} // namespace padc::serve
