/**
 * @file
 * Client side of the `padc serve` protocol: connect to a state
 * directory's Unix socket, send request frames, read response frames.
 * The `padc submit` / `jobs` / `cancel` / `metrics` subcommands and
 * the integration tests all go through this one library, so the CLI
 * and the tests cannot drift from the daemon's protocol.
 */

#ifndef PADC_SERVE_CLIENT_HH
#define PADC_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace padc::serve
{

/**
 * One connection to a serve daemon. Any number of requests may be
 * issued over it; the daemon answers them in order.
 */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /**
     * Connect to the daemon owning @p state_dir.
     * @return false with a diagnostic in error() when no daemon is
     *         listening there (socket absent or connection refused).
     */
    bool connect(const std::string &state_dir);

    bool connected() const { return fd_ >= 0; }

    const std::string &error() const { return error_; }

    /**
     * Send @p request and block for the matching response.
     * @return false on I/O or protocol errors (daemon died mid-call);
     *         a response with ok == false is still `true` here -- the
     *         transport worked, the daemon rejected the request.
     */
    bool request(const ServeRequest &request, ServeResponse *response);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string error_;
};

/**
 * Convenience: connect, issue one request, disconnect.
 * @return false with a diagnostic when the daemon is unreachable or
 *         the exchange failed; the response's ok/errors members carry
 *         daemon-side rejections.
 */
bool requestOnce(const std::string &state_dir, const ServeRequest &request,
                 ServeResponse *response, std::string *error);

/**
 * Poll the daemon until every job in @p ids is terminal (done, failed,
 * or cancelled), at @p poll_ms intervals.
 * @return the terminal JobViews (id order of @p ids); nullopt with a
 *         diagnostic when the daemon becomes unreachable or
 *         @p timeout_ms expires.
 */
std::optional<std::vector<JobView>>
awaitJobs(const std::string &state_dir,
          const std::vector<std::uint64_t> &ids, std::uint64_t timeout_ms,
          std::uint64_t poll_ms, std::string *error);

} // namespace padc::serve

#endif // PADC_SERVE_CLIENT_HH
