#include "serve/jobstore.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exp/json.hh"

namespace padc::serve
{

namespace
{

bool
parseU64(const exp::JsonValue *value, std::uint64_t *out)
{
    if (value == nullptr || !value->isString() || value->string.empty())
        return false;
    const char *text = value->string.c_str();
    if (*text == '-' || *text == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = parsed;
    return true;
}

/**
 * Single-line record, hand-rolled like obs::formatEvent: JsonWriter
 * pretty-prints across lines and JSONL needs exactly one line.
 */
std::string
formatRecord(const char *ev, std::uint64_t job, std::uint64_t t_ms,
             const std::string &extra)
{
    std::string out = "{\"padc\":";
    out += exp::jsonQuote(kJobSchema);
    out += ",\"ev\":\"";
    out += ev;
    out += "\",\"job\":";
    out += exp::jsonQuote(std::to_string(job));
    out += ",\"t_ms\":";
    out += exp::jsonQuote(std::to_string(t_ms));
    out += extra;
    out += "}";
    return out;
}

} // namespace

const char *
toString(JobState state)
{
    switch (state) {
      case JobState::Pending:
        return "pending";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
    }
    return "pending";
}

JobStore::JobStore(std::string path) : path_(std::move(path))
{
    // Torn-tail detection before opening for append: a non-empty file
    // whose last byte is not '\n' was cut mid-record by a kill.
    bool torn_tail = false;
    if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
        int c = 0;
        int last = '\n';
        while ((c = std::fgetc(in)) != EOF)
            last = c;
        torn_tail = last != '\n';
        std::fclose(in);
    }

    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        error_ = "JobStore: cannot open '" + path_ +
                 "' for appending: " + std::strerror(errno);
        return;
    }
    // Terminate the torn tail so the next record cannot merge into it;
    // the fragment then fails to parse and load() skips it.
    if (torn_tail) {
        const char nl = '\n';
        while (::write(fd_, &nl, 1) < 0 && errno == EINTR) {
        }
    }
    load();
}

JobStore::~JobStore()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
JobStore::ok() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fd_ >= 0 && error_.empty();
}

std::string
JobStore::error() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return error_;
}

void
JobStore::load()
{
    std::FILE *in = std::fopen(path_.c_str(), "rb");
    if (in == nullptr)
        return; // freshly created: nothing to replay
    std::string line;
    int c = 0;
    bool complete = false;
    auto consume = [&] {
        // Torn or malformed lines are skipped (journal-replay contract).
        if (!complete || line.empty())
            return;
        exp::JsonValue doc;
        if (!exp::parseJson(line, &doc, nullptr) || !doc.isObject())
            return;
        const exp::JsonValue *tag = doc.find("padc");
        if (tag == nullptr || !tag->isString() ||
            tag->string != kJobSchema)
            return;
        const exp::JsonValue *ev = doc.find("ev");
        std::uint64_t id = 0;
        if (ev == nullptr || !ev->isString() ||
            !parseU64(doc.find("job"), &id))
            return;
        std::uint64_t t_ms = 0;
        parseU64(doc.find("t_ms"), &t_ms);

        if (ev->string == "submitted") {
            Job job;
            job.id = id;
            job.submitted_t_ms = t_ms;
            if (const exp::JsonValue *v = doc.find("experiment");
                v != nullptr && v->isString())
                job.experiment = v->string;
            std::uint64_t seed = 0;
            if (parseU64(doc.find("seed"), &seed))
                job.seed = seed;
            if (find(id) == nullptr) {
                jobs_.push_back(std::move(job));
                next_id_ = std::max(next_id_, id + 1);
            }
            return;
        }
        Job *job = find(id);
        if (job == nullptr)
            return; // records for a job whose submit line was torn
        if (ev->string == "started") {
            job->state = JobState::Running;
            ++job->attempts;
        } else if (ev->string == "finished") {
            std::string status;
            if (const exp::JsonValue *v = doc.find("status");
                v != nullptr && v->isString())
                status = v->string;
            job->status = status;
            job->state =
                status == "ok" ? JobState::Done : JobState::Failed;
            if (const exp::JsonValue *v = doc.find("detail");
                v != nullptr && v->isString())
                job->detail = v->string;
        } else if (ev->string == "cancelled") {
            job->state = JobState::Cancelled;
            job->status = "cancelled";
            if (const exp::JsonValue *v = doc.find("detail");
                v != nullptr && v->isString())
                job->detail = v->string;
        }
    };
    while ((c = std::fgetc(in)) != EOF) {
        if (c == '\n') {
            complete = true;
            consume();
            line.clear();
            complete = false;
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    consume(); // unterminated tail: dropped by `complete`
    std::fclose(in);

    loaded_ = jobs_.size();
    // A job left Running by a killed daemon returns to the queue; its
    // per-job sweep journal makes the re-run exactly-once.
    for (Job &job : jobs_) {
        if (job.state == JobState::Running) {
            job.state = JobState::Pending;
            job.resumed = true;
            ++resumed_;
        }
    }
}

void
JobStore::appendLine(const std::string &record)
{
    if (fd_ < 0)
        return;
    std::string line = record;
    line += '\n';
    // One write(2) per record: atomic w.r.t. concurrent O_APPEND
    // writers; a kill mid-write tears only THIS line.
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error_.empty())
                error_ = "JobStore: append to '" + path_ +
                         "' failed: " + std::strerror(errno);
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

Job *
JobStore::find(std::uint64_t id)
{
    for (Job &job : jobs_) {
        if (job.id == id)
            return &job;
    }
    return nullptr;
}

const Job *
JobStore::find(std::uint64_t id) const
{
    return const_cast<JobStore *>(this)->find(id);
}

std::uint64_t
JobStore::submit(const std::string &experiment,
                 std::optional<std::uint64_t> seed, std::uint64_t t_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job job;
    job.id = next_id_++;
    job.experiment = experiment;
    job.seed = seed;
    job.submitted_t_ms = t_ms;
    std::string extra = ",\"experiment\":" + exp::jsonQuote(experiment);
    if (seed.has_value())
        extra += ",\"seed\":" + exp::jsonQuote(std::to_string(*seed));
    appendLine(formatRecord("submitted", job.id, t_ms, extra));
    const std::uint64_t id = job.id;
    jobs_.push_back(std::move(job));
    return id;
}

bool
JobStore::start(std::uint64_t id, std::uint64_t t_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = find(id);
    if (job == nullptr || job->state != JobState::Pending)
        return false;
    job->state = JobState::Running;
    ++job->attempts;
    appendLine(formatRecord("started", id, t_ms, ""));
    return true;
}

bool
JobStore::finish(std::uint64_t id, const std::string &status,
                 const std::string &detail, std::uint64_t t_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = find(id);
    if (job == nullptr || job->state != JobState::Running)
        return false;
    job->status = status;
    job->detail = detail;
    job->state = status == "ok" ? JobState::Done : JobState::Failed;
    appendLine(formatRecord("finished", id, t_ms,
                            ",\"status\":" + exp::jsonQuote(status) +
                                ",\"detail\":" + exp::jsonQuote(detail)));
    return true;
}

bool
JobStore::cancel(std::uint64_t id, const std::string &detail,
                 std::uint64_t t_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = find(id);
    if (job == nullptr || (job->state != JobState::Pending &&
                           job->state != JobState::Running))
        return false;
    job->state = JobState::Cancelled;
    job->status = "cancelled";
    job->detail = detail;
    appendLine(formatRecord("cancelled", id, t_ms,
                            ",\"detail\":" + exp::jsonQuote(detail)));
    return true;
}

bool
JobStore::requeue(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Job *job = find(id);
    if (job == nullptr || job->state != JobState::Running)
        return false;
    job->state = JobState::Pending;
    job->resumed = true;
    return true;
}

std::optional<std::uint64_t>
JobStore::nextPending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Job &job : jobs_) {
        if (job.state == JobState::Pending)
            return job.id;
    }
    return std::nullopt;
}

std::optional<Job>
JobStore::job(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Job *found = find(id);
    if (found == nullptr)
        return std::nullopt;
    return *found;
}

std::vector<Job>
JobStore::jobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_;
}

std::size_t
JobStore::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const Job &job : jobs_)
        count += job.state == JobState::Pending ? 1 : 0;
    return count;
}

} // namespace padc::serve
