#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "sim/wire.hh"

namespace padc::serve
{

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::connect(const std::string &state_dir)
{
    close();
    const std::string path = socketPath(state_dir);
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error_ = "socket path '" + path + "' exceeds sun_path";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error_ = "cannot connect to '" + path +
                 "': " + std::strerror(errno) +
                 " (is a `padc serve` daemon running there?)";
        ::close(fd);
        return false;
    }
    fd_ = fd;
    error_.clear();
    return true;
}

bool
ServeClient::request(const ServeRequest &request, ServeResponse *response)
{
    if (fd_ < 0) {
        error_ = "not connected";
        return false;
    }
    if (!sim::wire::writeFrame(fd_, encodeRequest(request))) {
        error_ = "daemon closed the connection mid-request";
        close();
        return false;
    }
    std::string payload;
    if (!sim::wire::readFrame(fd_, &payload)) {
        error_ = "daemon closed the connection before responding";
        close();
        return false;
    }
    std::string decode_error;
    if (!decodeResponse(payload, response, &decode_error)) {
        error_ = "malformed response: " + decode_error;
        close();
        return false;
    }
    return true;
}

bool
requestOnce(const std::string &state_dir, const ServeRequest &request,
            ServeResponse *response, std::string *error)
{
    ServeClient client;
    if (!client.connect(state_dir) ||
        !client.request(request, response)) {
        if (error != nullptr)
            *error = client.error();
        return false;
    }
    return true;
}

std::optional<std::vector<JobView>>
awaitJobs(const std::string &state_dir,
          const std::vector<std::uint64_t> &ids, std::uint64_t timeout_ms,
          std::uint64_t poll_ms, std::string *error)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        ServeRequest request;
        request.op = ServeRequest::Op::Jobs;
        ServeResponse response;
        if (!requestOnce(state_dir, request, &response, error))
            return std::nullopt;
        if (!response.ok) {
            if (error != nullptr)
                *error = response.errors.empty() ? "jobs query rejected"
                                                 : response.errors[0];
            return std::nullopt;
        }

        std::vector<JobView> terminal;
        for (const std::uint64_t id : ids) {
            for (const JobView &job : response.jobs) {
                if (job.id != id)
                    continue;
                if (job.state == kJobDone || job.state == kJobFailed ||
                    job.state == kJobCancelled)
                    terminal.push_back(job);
                break;
            }
        }
        if (terminal.size() == ids.size())
            return terminal;

        if (std::chrono::steady_clock::now() >= deadline) {
            if (error != nullptr)
                *error = "timed out waiting for " +
                         std::to_string(ids.size()) + " job(s)";
            return std::nullopt;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
}

} // namespace padc::serve
