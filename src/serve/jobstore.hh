/**
 * @file
 * Durable FIFO job queue of the `padc serve` daemon.
 *
 * Every queue transition is appended to `<state>/jobs.jsonl` as one
 * single-line JSON record (schema padc-serve-job-v1), using the sweep
 * journal's durability idiom (sim/journal.cc): an O_APPEND fd, one
 * write(2) per record, and torn-tail repair on reopen -- a daemon
 * killed mid-append loses at most the trailing partial line, which
 * load() then skips.
 *
 * Record kinds:
 *
 *   {"padc":"padc-serve-job-v1","ev":"submitted","job":"1",
 *    "experiment":"fig09","seed":"7","t_ms":"..."}
 *   {"padc":"padc-serve-job-v1","ev":"started","job":"1","t_ms":"..."}
 *   {"padc":"padc-serve-job-v1","ev":"finished","job":"1",
 *    "status":"ok","detail":"","t_ms":"..."}
 *   {"padc":"padc-serve-job-v1","ev":"cancelled","job":"1","t_ms":"..."}
 *
 * Replaying the log reconstructs the queue exactly-once: a job whose
 * last record is `submitted` is pending; `started` without a later
 * terminal record means the daemon died mid-job, so the job returns to
 * pending (resumable -- its per-job sweep journal replays the points
 * that completed); `finished`/`cancelled` are terminal. Job ids are
 * monotonically increasing and survive restarts (next id = max + 1).
 *
 * Thread-safe: the daemon's socket thread submits/cancels while the
 * executor thread starts/finishes; every public method locks.
 */

#ifndef PADC_SERVE_JOBSTORE_HH
#define PADC_SERVE_JOBSTORE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace padc::serve
{

/** Line schema tag each job record carries. */
inline constexpr char kJobSchema[] = "padc-serve-job-v1";

/** Lifecycle state of one job (names shared with the protocol). */
enum class JobState : std::uint8_t
{
    Pending,   ///< submitted, waiting for the executor
    Running,   ///< the executor is on it right now
    Done,      ///< finished with a BENCH result (status "ok"/...)
    Failed,    ///< finished unsuccessfully (experiment threw / failed)
    Cancelled, ///< cancelled before or during execution
};

const char *toString(JobState state);

/** One job as reconstructed from (and appended to) jobs.jsonl. */
struct Job
{
    std::uint64_t id = 0;
    std::string experiment; ///< exact registered experiment name
    std::optional<std::uint64_t> seed; ///< submit-time --seed override
    JobState state = JobState::Pending;
    std::string status;  ///< BENCH-level status once terminal
    std::string detail;  ///< failure / cancellation diagnostic
    std::uint64_t attempts = 0;       ///< `started` records seen
    std::uint64_t submitted_t_ms = 0; ///< steady-clock submission stamp
    bool resumed = false; ///< went back to pending after a daemon death
};

/**
 * The durable queue; see file comment. All appends latch an internal
 * error instead of throwing -- a full disk must not kill the daemon --
 * and ok()/error() report the first failure.
 */
class JobStore
{
  public:
    /**
     * Open (creating if needed) the jobs.jsonl at @p path, repair a
     * torn tail, and replay every record into memory. Check ok().
     */
    explicit JobStore(std::string path);

    ~JobStore();

    JobStore(const JobStore &) = delete;
    JobStore &operator=(const JobStore &) = delete;

    bool ok() const;
    std::string error() const;
    const std::string &path() const { return path_; }

    /**
     * Append a `submitted` record and add the pending job.
     * @return the assigned job id (monotonic, restart-stable).
     */
    std::uint64_t submit(const std::string &experiment,
                         std::optional<std::uint64_t> seed,
                         std::uint64_t t_ms);

    /**
     * Mark @p id running (appends `started`).
     * @return false when the job is not pending.
     */
    bool start(std::uint64_t id, std::uint64_t t_ms);

    /**
     * Mark @p id terminal with BENCH-level @p status ("ok" maps to
     * Done, anything else to Failed). Appends `finished`.
     */
    bool finish(std::uint64_t id, const std::string &status,
                const std::string &detail, std::uint64_t t_ms);

    /**
     * Cancel @p id (pending or running; the caller interrupts a
     * running job's sweep first). Appends `cancelled`.
     * @return false when the job is unknown or already terminal.
     */
    bool cancel(std::uint64_t id, const std::string &detail,
                std::uint64_t t_ms);

    /**
     * A running job's daemon is going down without a result: return it
     * to pending WITHOUT appending (the absent terminal record IS the
     * durable "resumable" marker, exactly like an unjournaled sweep
     * point).
     */
    bool requeue(std::uint64_t id);

    /** Oldest pending job id, FIFO; nullopt when none. */
    std::optional<std::uint64_t> nextPending() const;

    /** Snapshot of one job; nullopt when unknown. */
    std::optional<Job> job(std::uint64_t id) const;

    /** Snapshot of every job, id order. */
    std::vector<Job> jobs() const;

    /** Jobs currently pending (queue depth, for backpressure). */
    std::size_t pendingCount() const;

    /** Jobs loaded from an existing log (restart diagnostics). */
    std::size_t loadedJobs() const { return loaded_; }

    /** Jobs that load() returned from Running to Pending (resumed). */
    std::size_t resumedJobs() const { return resumed_; }

  private:
    void appendLine(const std::string &line);
    Job *find(std::uint64_t id);
    const Job *find(std::uint64_t id) const;
    void load();

    mutable std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
    std::string error_;
    std::vector<Job> jobs_; ///< id order (append-only)
    std::uint64_t next_id_ = 1;
    std::size_t loaded_ = 0;
    std::size_t resumed_ = 0;
};

} // namespace padc::serve

#endif // PADC_SERVE_JOBSTORE_HH
