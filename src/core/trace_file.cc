#include "core/trace_file.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/atomic_file.hh"

namespace padc::core
{

namespace
{

constexpr char kMagic[8] = {'P', 'A', 'D', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kFlagLoad = 1u << 0;
constexpr std::uint32_t kFlagDependent = 1u << 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(unsigned char *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

} // namespace

std::vector<TraceOp>
captureTrace(TraceSource &source, std::size_t count)
{
    std::vector<TraceOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        ops.push_back(source.next());
    return ops;
}

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
writeTraceFile(const std::string &path, const std::vector<TraceOp> &ops,
               std::string *error)
{
    // Crash-safe: all bytes go to a '<path>.tmp' sibling which is
    // renamed into place only after a clean flush+close, so an
    // interrupted capture never leaves a truncated file at @p path
    // that a later read rejects as corrupt.
    AtomicFile file(path);

    unsigned char header[16];
    std::memcpy(header, kMagic, 8);
    putU64(header + 8, ops.size());
    file.write(header, sizeof(header));

    for (const TraceOp &op : ops) {
        unsigned char record[24];
        putU64(record, op.addr);
        putU64(record + 8, op.pc);
        putU32(record + 16, op.compute_gap);
        std::uint32_t flags = 0;
        if (op.is_load)
            flags |= kFlagLoad;
        if (op.dependent)
            flags |= kFlagDependent;
        putU32(record + 20, flags);
        if (!file.write(record, sizeof(record)))
            break;
    }

    if (!file.commit())
        return fail(error, file.error());
    return true;
}

bool
readTraceFile(const std::string &path, std::vector<TraceOp> *ops,
              std::string *error)
{
    ops->clear();
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return fail(error, "cannot open '" + path + "' for reading");

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return fail(error, "'" + path + "' is shorter than the " +
                               std::to_string(sizeof(header)) +
                               "-byte PADCTRC1 header");
    }
    if (std::memcmp(header, kMagic, 8) != 0)
        return fail(error, "'" + path + "' is not a PADCTRC1 trace "
                                        "(bad magic)");
    const std::uint64_t count = getU64(header + 8);

    // Check the recorded count against the actual file size up front,
    // so a truncated capture or an absurd count (corrupt header) is
    // rejected before any allocation.
    if (std::fseek(file.get(), 0, SEEK_END) != 0)
        return fail(error, "cannot seek in '" + path + "'");
    const long size = std::ftell(file.get());
    const std::uint64_t expected = sizeof(header) + count * 24;
    if (size < 0 || static_cast<std::uint64_t>(size) != expected) {
        return fail(error,
                    "'" + path + "' holds " + std::to_string(size) +
                        " bytes but its header promises " +
                        std::to_string(count) + " ops (" +
                        std::to_string(expected) +
                        " bytes): truncated or corrupt");
    }
    if (std::fseek(file.get(), sizeof(header), SEEK_SET) != 0)
        return fail(error, "cannot seek in '" + path + "'");

    ops->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        unsigned char record[24];
        if (std::fread(record, 1, sizeof(record), file.get()) !=
            sizeof(record)) {
            ops->clear();
            return fail(error, "'" + path + "' truncated inside op " +
                                   std::to_string(i) + " of " +
                                   std::to_string(count));
        }
        TraceOp op;
        op.addr = getU64(record);
        op.pc = getU64(record + 8);
        op.compute_gap = getU32(record + 16);
        const std::uint32_t flags = getU32(record + 20);
        op.is_load = (flags & kFlagLoad) != 0;
        op.dependent = (flags & kFlagDependent) != 0;
        ops->push_back(op);
    }
    return true;
}

FileTrace::FileTrace(const std::string &path)
{
    ok_ = readTraceFile(path, &ops_, &error_);
    if (ok_ && ops_.empty()) {
        ok_ = false;
        error_ = "'" + path + "' holds no operations";
    }
}

TraceOp
FileTrace::next()
{
    if (ops_.empty())
        return TraceOp{};
    TraceOp op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
    return op;
}

void
FileTrace::reset()
{
    pos_ = 0;
}

} // namespace padc::core
