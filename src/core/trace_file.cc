#include "core/trace_file.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace padc::core
{

namespace
{

constexpr char kMagic[8] = {'P', 'A', 'D', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kFlagLoad = 1u << 0;
constexpr std::uint32_t kFlagDependent = 1u << 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(unsigned char *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

} // namespace

std::vector<TraceOp>
captureTrace(TraceSource &source, std::size_t count)
{
    std::vector<TraceOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        ops.push_back(source.next());
    return ops;
}

bool
writeTraceFile(const std::string &path, const std::vector<TraceOp> &ops)
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (file == nullptr)
        return false;

    unsigned char header[16];
    std::memcpy(header, kMagic, 8);
    putU64(header + 8, ops.size());
    if (std::fwrite(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return false;
    }

    for (const TraceOp &op : ops) {
        unsigned char record[24];
        putU64(record, op.addr);
        putU64(record + 8, op.pc);
        putU32(record + 16, op.compute_gap);
        std::uint32_t flags = 0;
        if (op.is_load)
            flags |= kFlagLoad;
        if (op.dependent)
            flags |= kFlagDependent;
        putU32(record + 20, flags);
        if (std::fwrite(record, 1, sizeof(record), file.get()) !=
            sizeof(record)) {
            return false;
        }
    }
    return true;
}

bool
readTraceFile(const std::string &path, std::vector<TraceOp> *ops)
{
    ops->clear();
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return false;

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return false;
    }
    if (std::memcmp(header, kMagic, 8) != 0)
        return false;
    const std::uint64_t count = getU64(header + 8);

    ops->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        unsigned char record[24];
        if (std::fread(record, 1, sizeof(record), file.get()) !=
            sizeof(record)) {
            ops->clear();
            return false; // truncated
        }
        TraceOp op;
        op.addr = getU64(record);
        op.pc = getU64(record + 8);
        op.compute_gap = getU32(record + 16);
        const std::uint32_t flags = getU32(record + 20);
        op.is_load = (flags & kFlagLoad) != 0;
        op.dependent = (flags & kFlagDependent) != 0;
        ops->push_back(op);
    }
    return true;
}

FileTrace::FileTrace(const std::string &path)
{
    ok_ = readTraceFile(path, &ops_) && !ops_.empty();
}

TraceOp
FileTrace::next()
{
    if (ops_.empty())
        return TraceOp{};
    TraceOp op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
    return op;
}

void
FileTrace::reset()
{
    pos_ = 0;
}

} // namespace padc::core
