/**
 * @file
 * Instruction-trace abstraction consumed by the core model.
 *
 * A trace is an infinite stream of memory operations, each preceded by a
 * number of non-memory (compute) instructions. Synthetic workload
 * generators (src/workload) and fixed test traces both implement
 * TraceSource.
 */

#ifndef PADC_CORE_TRACE_HH
#define PADC_CORE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace padc::core
{

/** One traced memory operation plus its preceding compute block. */
struct TraceOp
{
    std::uint32_t compute_gap = 0; ///< non-memory instructions before op
    Addr addr = 0;                 ///< byte address accessed
    Addr pc = 0;                   ///< PC of the memory instruction
    bool is_load = true;           ///< load (true) or store (false)

    /**
     * Address-dependent on earlier memory results (e.g. pointer chase or
     * induction chain): the op cannot issue while older memory ops are
     * outstanding. Controls the core's memory-level parallelism.
     */
    bool dependent = false;
};

/**
 * Infinite instruction stream. Implementations must be deterministic:
 * after reset(), the same sequence is produced again.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next operation. Never fails; traces are infinite. */
    virtual TraceOp next() = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;
};

/**
 * Replays a fixed vector of operations, looping forever. Used by unit
 * tests and microbenchmarks.
 */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceOp> ops);

    TraceOp next() override;
    void reset() override;

  private:
    std::vector<TraceOp> ops_;
    std::size_t pos_ = 0;
};

} // namespace padc::core

#endif // PADC_CORE_TRACE_HH
