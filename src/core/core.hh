/**
 * @file
 * OoO-lite processing core model.
 *
 * The core is trace-driven and models the properties that matter for
 * memory-system studies (and that the paper's own Figure 2 abstraction
 * relies on): a fixed-size instruction window, wide retire, overlapping
 * cache misses bounded by the load/store queue and the L2 MSHRs, and
 * retirement stalls when an incomplete load reaches the window head.
 * Fetch/decode/branch effects are not modelled.
 *
 * Optional runahead execution (paper Section 6.14): when a load that
 * missed the L2 blocks the window head, the core keeps consuming its
 * trace, issuing future loads as runahead requests (treated as demands
 * by the memory system, "only-train" for the prefetcher) and replays the
 * consumed operations after the blocking miss returns.
 */

#ifndef PADC_CORE_CORE_HH
#define PADC_CORE_CORE_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "core/trace.hh"

namespace padc::core
{

/** Core configuration (paper Table 3 values by default). */
struct CoreConfig
{
    std::uint32_t window_size = 256; ///< instruction window (ROB) entries
    std::uint32_t retire_width = 4;  ///< instructions retired per cycle
    std::uint32_t fetch_width = 4;   ///< instructions fetched per cycle
    std::uint32_t lsq_size = 32;     ///< in-flight memory ops
    std::uint32_t mem_issue_width = 2; ///< memory ops issued per cycle

    bool runahead = false; ///< runahead execution (Section 6.14)
    std::uint32_t runahead_max_ops = 256; ///< trace ops consumed per episode

    /** Append one diagnostic per violated constraint under @p prefix. */
    void validate(ConfigErrors &errors, const std::string &prefix) const;
};

/** Outcome classes returned by the memory port. */
enum class AccessStatus : std::uint8_t
{
    Complete, ///< hit somewhere; data ready at AccessReply::ready
    Pending,  ///< L2 miss in flight; completeLoad() will be called
    Retry,    ///< resources exhausted (MSHR / request buffer); retry
};

/** Reply to a core memory access. */
struct AccessReply
{
    AccessStatus status = AccessStatus::Complete;
    Cycle ready = 0; ///< valid when status == Complete
};

/**
 * Interface through which cores reach the memory hierarchy
 * (implemented by sim::System).
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Perform a memory access for @p core.
     *
     * @param token_tag core-private identifier passed back through
     *        completeLoad() when status is Pending
     * @param runahead the access is speculative runahead work: it must
     *        be treated as a demand by the DRAM scheduler but must not
     *        allocate new prefetcher pattern entries
     */
    virtual AccessReply access(CoreId core, Addr addr, Addr pc,
                               bool is_load, std::uint64_t token_tag,
                               bool runahead, Cycle now) = 0;
};

/** Retirement/stall statistics for one core. */
struct CoreStats
{
    std::uint64_t instructions = 0; ///< retired instructions
    std::uint64_t loads = 0;        ///< retired loads
    std::uint64_t stores = 0;       ///< retired stores
    std::uint64_t load_stall_cycles = 0; ///< cycles head-blocked by a load
                                         ///< (SPL numerator)
    std::uint64_t mem_ops_issued = 0;
    std::uint64_t issue_retries = 0; ///< accesses bounced by full resources
    std::uint64_t runahead_episodes = 0;
    std::uint64_t runahead_ops_issued = 0;
};

/**
 * The core model; see file comment.
 */
class Core
{
  public:
    Core(CoreId id, const CoreConfig &config, TraceSource &trace,
         MemoryPort &port);

    /** Advance one processor cycle: retire, fetch, issue. */
    void tick(Cycle now);

    /**
     * Earliest cycle >= @p from at which a tick() of this core could
     * make progress or have any side effect beyond the head-load stall
     * counter (which accountIdleCycles() reproduces for skipped
     * cycles): @p from itself when any pipeline stage can act this
     * cycle, the head load's known completion time when the core is
     * fully stalled on it, or kNeverCycle when the core can only be
     * woken by a completeLoad() from the memory system (whose timing
     * the controller's own next-event computation bounds).
     */
    Cycle nextEventCycle(Cycle from) const;

    /**
     * Account for skipped cycles during which this core was provably
     * stalled: reproduces the per-cycle head-load stall increment the
     * legacy loop would have made. @pre nextEventCycle(from) covered
     * every skipped cycle, so the stall condition held throughout.
     */
    void accountIdleCycles(std::uint64_t cycles);

    /** Completion callback for Pending accesses. */
    void completeLoad(std::uint64_t tag, Cycle now);

    CoreId id() const { return id_; }

    const CoreStats &stats() const { return stats_; }

    /** True while a runahead episode is active. */
    bool inRunahead() const { return runahead_active_; }

  private:
    /** One window entry: a compute block or a single memory op. */
    struct RobEntry
    {
        bool is_mem = false;
        std::uint32_t compute_left = 0; ///< for compute blocks

        // Memory-op fields:
        bool is_load = true;
        bool dependent = false; ///< must wait for older memory ops
        Addr addr = 0;
        Addr pc = 0;
        std::uint64_t tag = 0;
        bool issued = false;
        bool complete = false;
        bool pending_miss = false; ///< access went to DRAM (L2 miss)
        Cycle ready = kNeverCycle; ///< completion time when known
    };

    /** Ops consumed from the trace during runahead, for replay. */
    void retire(Cycle now);
    void fetch(Cycle now);
    void issue(Cycle now);
    void runaheadStep(Cycle now);

    TraceOp nextOp();

    CoreId id_;
    CoreConfig config_;
    TraceSource &trace_;
    MemoryPort &port_;

    std::deque<RobEntry> rob_;
    std::uint32_t instrs_in_window_ = 0;
    std::uint32_t mem_ops_in_flight_ = 0; ///< issued, not complete (LSQ)

    /** Mem entries fetched but not yet successfully issued. */
    std::deque<RobEntry *> issue_q_;

    /**
     * Pending-miss lookup for completeLoad(), keyed by tag. At most
     * lsq_size (plus runahead) entries are ever in flight, so a flat
     * vector with a linear scan beats a hash table here.
     */
    std::vector<std::pair<std::uint64_t, RobEntry *>> pending_;

    std::uint64_t next_tag_ = 1;

    // Fetch state: the trace op currently being brought into the window.
    bool have_current_op_ = false;
    TraceOp current_op_;
    std::uint32_t compute_left_ = 0; ///< compute instrs left to fetch

    // Runahead state.
    bool runahead_active_ = false;
    std::uint64_t runahead_blocking_tag_ = 0;
    std::uint32_t runahead_ops_this_episode_ = 0;
    std::uint32_t runahead_in_flight_ = 0;
    std::deque<TraceOp> replay_q_; ///< ops to replay after runahead exit
    std::size_t ra_pos_ = 0;       ///< runahead scan position in replay_q_
    bool ra_have_op_ = false;
    TraceOp ra_op_;
    std::uint32_t ra_compute_left_ = 0;
    std::unordered_set<std::uint64_t> runahead_tags_;

    CoreStats stats_;
};

} // namespace padc::core

#endif // PADC_CORE_CORE_HH
