#include "core/core.hh"

#include <algorithm>
#include <cassert>

namespace padc::core
{

void
CoreConfig::validate(ConfigErrors &errors, const std::string &prefix) const
{
    if (window_size == 0)
        errors.add(prefix + ".window_size", "must be >= 1");
    if (retire_width == 0)
        errors.add(prefix + ".retire_width", "must be >= 1");
    if (fetch_width == 0)
        errors.add(prefix + ".fetch_width", "must be >= 1");
    if (lsq_size == 0)
        errors.add(prefix + ".lsq_size", "must be >= 1");
    if (mem_issue_width == 0)
        errors.add(prefix + ".mem_issue_width", "must be >= 1");
    if (runahead && runahead_max_ops == 0)
        errors.add(prefix + ".runahead_max_ops",
                   "must be >= 1 when runahead is enabled");
}

Core::Core(CoreId id, const CoreConfig &config, TraceSource &trace,
           MemoryPort &port)
    : id_(id), config_(config), trace_(trace), port_(port)
{
}

TraceOp
Core::nextOp()
{
    if (!replay_q_.empty()) {
        TraceOp op = replay_q_.front();
        replay_q_.pop_front();
        if (ra_pos_ > 0)
            --ra_pos_; // keep the runahead scan position aligned
        return op;
    }
    return trace_.next();
}

void
Core::retire(Cycle now)
{
    std::uint32_t budget = config_.retire_width;
    while (budget > 0 && !rob_.empty()) {
        RobEntry &head = rob_.front();

        if (!head.is_mem) {
            const std::uint32_t take = std::min(head.compute_left, budget);
            head.compute_left -= take;
            budget -= take;
            stats_.instructions += take;
            instrs_in_window_ -= take;
            if (head.compute_left == 0) {
                rob_.pop_front();
                continue;
            }
            break; // budget exhausted mid-block
        }

        if (head.is_load) {
            const bool done =
                head.issued && (head.complete || head.ready <= now);
            if (!done) {
                ++stats_.load_stall_cycles;
                if (config_.runahead && !runahead_active_ &&
                    head.pending_miss && head.issued) {
                    runahead_active_ = true;
                    runahead_blocking_tag_ = head.tag;
                    runahead_ops_this_episode_ = 0;
                    ra_pos_ = 0;
                    ra_have_op_ = false;
                    ++stats_.runahead_episodes;
                }
                break;
            }
            ++stats_.loads;
        } else {
            if (!head.issued)
                break; // store buffer entry not yet accepted by memory
            // Stores retire once issued; completion is not awaited. If
            // the miss is still outstanding, orphan its pending entry so
            // the completion callback does not touch a popped ROB slot.
            if (head.pending_miss && !head.complete) {
                for (auto &p : pending_) {
                    if (p.first == head.tag) {
                        p.second = nullptr;
                        break;
                    }
                }
            }
            ++stats_.stores;
        }
        ++stats_.instructions;
        --instrs_in_window_;
        --budget;
        rob_.pop_front();
    }
}

void
Core::fetch(Cycle now)
{
    (void)now;
    if (runahead_active_)
        return; // the front end is busy pseudo-executing

    std::uint32_t budget = config_.fetch_width;
    while (budget > 0 && instrs_in_window_ < config_.window_size) {
        if (!have_current_op_) {
            current_op_ = nextOp();
            compute_left_ = current_op_.compute_gap;
            have_current_op_ = true;
        }

        if (compute_left_ > 0) {
            const std::uint32_t take =
                std::min({budget, compute_left_,
                          config_.window_size - instrs_in_window_});
            if (take == 0)
                break;
            if (!rob_.empty() && !rob_.back().is_mem) {
                rob_.back().compute_left += take;
            } else {
                RobEntry entry;
                entry.is_mem = false;
                entry.compute_left = take;
                rob_.push_back(entry);
            }
            instrs_in_window_ += take;
            budget -= take;
            compute_left_ -= take;
            continue;
        }

        // The memory operation itself (one instruction).
        RobEntry entry;
        entry.is_mem = true;
        entry.is_load = current_op_.is_load;
        entry.dependent = current_op_.dependent;
        entry.addr = current_op_.addr;
        entry.pc = current_op_.pc;
        entry.tag = next_tag_++;
        rob_.push_back(entry);
        issue_q_.push_back(&rob_.back());
        ++instrs_in_window_;
        --budget;
        have_current_op_ = false;
    }
}

void
Core::issue(Cycle now)
{
    std::uint32_t issued = 0;
    while (!issue_q_.empty() && issued < config_.mem_issue_width &&
           mem_ops_in_flight_ < config_.lsq_size) {
        RobEntry *entry = issue_q_.front();
        // Address dependence: the op's address is produced by an older
        // memory op, so it cannot issue until outstanding misses drain.
        if (entry->dependent && mem_ops_in_flight_ > 0)
            break;
        const AccessReply reply = port_.access(
            id_, entry->addr, entry->pc, entry->is_load, entry->tag,
            /*runahead=*/false, now);
        if (reply.status == AccessStatus::Retry) {
            ++stats_.issue_retries;
            break; // resources full; keep in-order issue attempts
        }
        entry->issued = true;
        if (reply.status == AccessStatus::Complete) {
            entry->ready = reply.ready;
        } else {
            entry->pending_miss = true;
            pending_.emplace_back(entry->tag, entry);
            ++mem_ops_in_flight_;
        }
        issue_q_.pop_front();
        ++stats_.mem_ops_issued;
        ++issued;
    }
}

void
Core::runaheadStep(Cycle now)
{
    std::uint32_t budget = config_.fetch_width;
    std::uint32_t issued = 0;

    while (budget > 0 &&
           runahead_ops_this_episode_ < config_.runahead_max_ops) {
        if (!ra_have_op_) {
            if (ra_pos_ < replay_q_.size()) {
                ra_op_ = replay_q_[ra_pos_];
            } else {
                ra_op_ = trace_.next();
                replay_q_.push_back(ra_op_);
            }
            ra_compute_left_ = ra_op_.compute_gap;
            ra_have_op_ = true;
        }

        if (ra_compute_left_ > 0) {
            const std::uint32_t take = std::min(budget, ra_compute_left_);
            budget -= take;
            ra_compute_left_ -= take;
            continue;
        }

        if (ra_op_.is_load && !ra_op_.dependent) {
            // Dependent loads cannot be executed in runahead mode (their
            // addresses hang off the very miss being waited on) -- the
            // classic runahead limitation.
            if (issued >= config_.mem_issue_width ||
                runahead_in_flight_ >= config_.lsq_size) {
                break;
            }
            const std::uint64_t tag = next_tag_++;
            const AccessReply reply =
                port_.access(id_, ra_op_.addr, ra_op_.pc, true, tag,
                             /*runahead=*/true, now);
            if (reply.status == AccessStatus::Retry) {
                ++stats_.issue_retries;
                break;
            }
            if (reply.status == AccessStatus::Pending) {
                pending_.emplace_back(tag, nullptr);
                runahead_tags_.insert(tag);
                ++runahead_in_flight_;
            }
            ++issued;
            ++stats_.runahead_ops_issued;
        }
        // Stores are consumed but not issued during runahead (no data to
        // write speculatively); their lines are usually fetched by the
        // surrounding loads anyway.
        ++ra_pos_;
        ++runahead_ops_this_episode_;
        --budget;
        ra_have_op_ = false;
    }
}

void
Core::completeLoad(std::uint64_t tag, Cycle now)
{
    auto it = pending_.begin();
    while (it != pending_.end() && it->first != tag)
        ++it;
    assert(it != pending_.end());
    RobEntry *entry = it->second;
    *it = pending_.back();
    pending_.pop_back();

    if (!runahead_tags_.empty() && runahead_tags_.erase(tag) > 0) {
        assert(runahead_in_flight_ > 0);
        --runahead_in_flight_;
    } else {
        if (entry != nullptr) {
            entry->complete = true;
            entry->ready = now;
        }
        assert(mem_ops_in_flight_ > 0);
        --mem_ops_in_flight_;
    }

    if (runahead_active_ && tag == runahead_blocking_tag_)
        runahead_active_ = false;
}

void
Core::tick(Cycle now)
{
    retire(now);
    if (runahead_active_)
        runaheadStep(now);
    fetch(now);
    issue(now);
}

Cycle
Core::nextEventCycle(Cycle from) const
{
    if (runahead_active_)
        return from; // pseudo-execution consumes trace every cycle

    if (!rob_.empty()) {
        const RobEntry &head = rob_.front();
        if (!head.is_mem)
            return from; // compute blocks retire every cycle
        if (head.is_load) {
            if (head.issued && (head.complete || head.ready <= from))
                return from; // head retires this cycle
            if (config_.runahead && head.pending_miss && head.issued)
                return from; // a stalled tick would start runahead
        } else if (head.issued) {
            return from; // stores retire once issued
        }
    }

    if (instrs_in_window_ < config_.window_size)
        return from; // fetch makes progress (trace sources never run dry)

    if (!issue_q_.empty()) {
        const RobEntry *front = issue_q_.front();
        if (!(front->dependent && mem_ops_in_flight_ > 0) &&
            mem_ops_in_flight_ < config_.lsq_size) {
            // An issue attempt has observable side effects (port access,
            // retry accounting) even when it bounces, so any cycle with
            // one cannot be skipped.
            return from;
        }
    }

    // Fully stalled. A head load with a known completion time wakes the
    // core at that cycle; everything else waits on a completeLoad()
    // driven by a memory-controller event, which the controller's own
    // next-event computation already bounds.
    if (!rob_.empty()) {
        const RobEntry &head = rob_.front();
        if (head.is_mem && head.is_load && head.issued && !head.complete &&
            head.ready != kNeverCycle) {
            return head.ready;
        }
    }
    return kNeverCycle;
}

void
Core::accountIdleCycles(std::uint64_t cycles)
{
    // The gap invariant guarantees the retire stage saw the same
    // not-yet-done load head in every skipped cycle (any state change
    // would have been an event); only that case increments a per-cycle
    // counter in tick().
    if (!rob_.empty() && rob_.front().is_mem && rob_.front().is_load)
        stats_.load_stall_cycles += cycles;
}

} // namespace padc::core
