#include "core/trace.hh"

#include <cassert>

namespace padc::core
{

VectorTrace::VectorTrace(std::vector<TraceOp> ops) : ops_(std::move(ops))
{
    assert(!ops_.empty());
}

TraceOp
VectorTrace::next()
{
    TraceOp op = ops_[pos_];
    pos_ = (pos_ + 1) % ops_.size();
    return op;
}

void
VectorTrace::reset()
{
    pos_ = 0;
}

} // namespace padc::core
