/**
 * @file
 * Binary trace recording and replay.
 *
 * Lets users capture the exact operation stream a TraceSource produced
 * (synthetic or otherwise) and replay it later — for cross-machine
 * regression runs, for sharing workloads without sharing generators,
 * and for importing externally produced traces into the simulator.
 *
 * Format: a 16-byte header ("PADCTRC1" + little-endian op count),
 * followed by one fixed-width 24-byte record per operation:
 *   addr (8B) | pc (8B) | compute_gap (4B) | flags (4B; bit0 = load,
 *   bit1 = dependent).
 */

#ifndef PADC_CORE_TRACE_FILE_HH
#define PADC_CORE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "core/trace.hh"

namespace padc::core
{

/**
 * Capture the next @p count operations of @p source into a vector.
 */
std::vector<TraceOp> captureTrace(TraceSource &source, std::size_t count);

/**
 * Write @p ops to @p path in the PADCTRC1 format.
 *
 * Every byte is accounted for: short fwrites, flush failures, and a
 * failing fclose (delayed ENOSPC and similar) all report failure
 * instead of leaving a silently truncated file behind. Writes are
 * crash-safe: bytes go to a `<path>.tmp` sibling that is atomically
 * renamed onto @p path only on a clean close, so an interrupted
 * capture never leaves a half-written file at the destination.
 *
 * @param error when non-null, receives a descriptive message on failure.
 * @return true on success.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<TraceOp> &ops,
                    std::string *error = nullptr);

/**
 * Read a PADCTRC1 file.
 *
 * Rejects, with a descriptive error: missing files, short headers, bad
 * magic, files whose size disagrees with the recorded op count
 * (truncated or trailing garbage), and short records.
 *
 * @param ops receives the operations; cleared first.
 * @param error when non-null, receives a descriptive message on failure.
 * @return true on success.
 */
bool readTraceFile(const std::string &path, std::vector<TraceOp> *ops,
                   std::string *error = nullptr);

/**
 * A TraceSource replaying a recorded file (looping, like VectorTrace).
 * Construction failure is observable via ok().
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    /** True when the file was loaded successfully. */
    bool ok() const { return ok_; }

    /** Why loading failed; empty when ok(). */
    const std::string &error() const { return error_; }

    /** Number of recorded operations. */
    std::size_t size() const { return ops_.size(); }

    TraceOp next() override;
    void reset() override;

  private:
    std::vector<TraceOp> ops_;
    std::size_t pos_ = 0;
    bool ok_ = false;
    std::string error_;
};

} // namespace padc::core

#endif // PADC_CORE_TRACE_FILE_HH
