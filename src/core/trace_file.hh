/**
 * @file
 * Binary trace recording and replay.
 *
 * Lets users capture the exact operation stream a TraceSource produced
 * (synthetic or otherwise) and replay it later — for cross-machine
 * regression runs, for sharing workloads without sharing generators,
 * and for importing externally produced traces into the simulator.
 *
 * Format: a 16-byte header ("PADCTRC1" + little-endian op count),
 * followed by one fixed-width 24-byte record per operation:
 *   addr (8B) | pc (8B) | compute_gap (4B) | flags (4B; bit0 = load,
 *   bit1 = dependent).
 */

#ifndef PADC_CORE_TRACE_FILE_HH
#define PADC_CORE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "core/trace.hh"

namespace padc::core
{

/**
 * Capture the next @p count operations of @p source into a vector.
 */
std::vector<TraceOp> captureTrace(TraceSource &source, std::size_t count);

/**
 * Write @p ops to @p path in the PADCTRC1 format.
 * @return true on success (false: could not open or write the file).
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<TraceOp> &ops);

/**
 * Read a PADCTRC1 file.
 * @param ops receives the operations; cleared first.
 * @return true on success (false: missing file, bad magic, truncation).
 */
bool readTraceFile(const std::string &path, std::vector<TraceOp> *ops);

/**
 * A TraceSource replaying a recorded file (looping, like VectorTrace).
 * Construction failure is observable via ok().
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    /** True when the file was loaded successfully. */
    bool ok() const { return ok_; }

    /** Number of recorded operations. */
    std::size_t size() const { return ops_.size(); }

    TraceOp next() override;
    void reset() override;

  private:
    std::vector<TraceOp> ops_;
    std::size_t pos_ = 0;
    bool ok_ = false;
};

} // namespace padc::core

#endif // PADC_CORE_TRACE_FILE_HH
