/**
 * @file
 * Parallel experiment runner for embarrassingly parallel sweeps.
 *
 * Every figure bench evaluates a grid of (policy x workload x config)
 * points, each of which builds its own System and trace generators from
 * explicit seeds and shares no mutable state with any other point. The
 * runner fans such points across a persistent std::thread pool.
 *
 * Determinism contract: a job must derive all randomness from its own
 * point (seeds carried in RunOptions / trace parameters) and must not
 * mutate shared state. Under that contract the runner guarantees
 * results identical to serial execution: jobs are indexed, each index
 * runs exactly once, and results are collected into a vector ordered by
 * index -- never by completion time. Thread count (including 1) is
 * therefore purely a wall-clock knob; it can never change a reported
 * number. The PADC_THREADS environment variable overrides the default
 * worker count (hardware concurrency).
 */

#ifndef PADC_SIM_PARALLEL_HH
#define PADC_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace padc::sim
{

/**
 * Worker threads to use by default: the PADC_THREADS environment
 * variable if set (clamped to >= 1), else std::thread::hardware_concurrency.
 */
unsigned defaultThreadCount();

/**
 * A persistent pool of worker threads executing indexed jobs.
 */
class ParallelExperimentRunner
{
  public:
    /** @param threads worker count; 0 means defaultThreadCount(). */
    explicit ParallelExperimentRunner(unsigned threads = 0);

    ~ParallelExperimentRunner();

    ParallelExperimentRunner(const ParallelExperimentRunner &) = delete;
    ParallelExperimentRunner &
    operator=(const ParallelExperimentRunner &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size() + 1); // + caller
    }

    /**
     * Run fn(0), ..., fn(n-1), distributing indices across the pool (the
     * calling thread participates). Returns when every call finished.
     * @p fn must be safe to call concurrently for distinct indices.
     * Reentrant calls (fn itself calling forEach) are not supported.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Ordered map: returns {fn(0), ..., fn(n-1)}, always indexed by
     * point, never by completion order.
     */
    template <typename R>
    std::vector<R> map(std::size_t n,
                       const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void workerLoop();

    /** Claim and run job indices until the current batch is exhausted. */
    void drainBatch();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;

    // Current batch (guarded by mutex_; indices claimed under the lock).
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t batch_size_ = 0;
    std::size_t next_index_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
};

/**
 * Process-wide shared runner (lazily constructed with the default thread
 * count); the benches use this so a binary spins up one pool total.
 */
ParallelExperimentRunner &sharedRunner();

} // namespace padc::sim

#endif // PADC_SIM_PARALLEL_HH
