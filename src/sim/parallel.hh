/**
 * @file
 * Parallel experiment runner for embarrassingly parallel sweeps.
 *
 * Every figure bench evaluates a grid of (policy x workload x config)
 * points, each of which builds its own System and trace generators from
 * explicit seeds and shares no mutable state with any other point. The
 * runner fans such points across a persistent std::thread pool.
 *
 * Determinism contract: a job must derive all randomness from its own
 * point (seeds carried in RunOptions / trace parameters) and must not
 * mutate shared state. Under that contract the runner guarantees
 * results identical to serial execution: jobs are indexed, each index
 * runs exactly once, and results are collected into a vector ordered by
 * index -- never by completion time. Thread count (including 1) is
 * therefore purely a wall-clock knob; it can never change a reported
 * number. The PADC_THREADS environment variable overrides the default
 * worker count (hardware concurrency).
 *
 * Failure contract: a job that throws never terminates the process,
 * never deadlocks the batch, and never poisons the pool. Exceptions are
 * captured per index on whatever thread ran the job; every remaining
 * index still runs. forEach/map rethrow the lowest-index exception on
 * the calling thread once the batch has fully drained (deterministic
 * regardless of thread count); tryForEach instead reports every
 * captured exception so callers can degrade per point.
 */

#ifndef PADC_SIM_PARALLEL_HH
#define PADC_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace padc::sim
{

/**
 * Worker threads to use by default: the PADC_THREADS environment
 * variable if it parses as a whole positive integer (clamped to
 * kMaxThreads), else std::thread::hardware_concurrency. Invalid values
 * (trailing garbage, overflow, zero, negative) fall back to hardware
 * concurrency with a one-line warning on stderr rather than silently
 * serializing a sweep.
 */
unsigned defaultThreadCount();

/** Upper bound accepted from PADC_THREADS. */
inline constexpr unsigned kMaxThreads = 1024;

/**
 * A persistent pool of worker threads executing indexed jobs.
 */
class ParallelExperimentRunner
{
  public:
    /** @param threads worker count; 0 means defaultThreadCount(). */
    explicit ParallelExperimentRunner(unsigned threads = 0);

    ~ParallelExperimentRunner();

    ParallelExperimentRunner(const ParallelExperimentRunner &) = delete;
    ParallelExperimentRunner &
    operator=(const ParallelExperimentRunner &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size() + 1); // + caller
    }

    /**
     * Run fn(0), ..., fn(n-1), distributing indices across the pool (the
     * calling thread participates). Returns when every call finished.
     * @p fn must be safe to call concurrently for distinct indices.
     * Reentrant calls (fn itself calling forEach) are not supported.
     *
     * If any job threw, the exception captured for the lowest throwing
     * index is rethrown here (on the calling thread) after the whole
     * batch drained; the pool stays usable for subsequent batches.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Like forEach, but never throws for job failures: returns one
     * std::exception_ptr per index, null where fn(i) succeeded. The
     * fault-tolerant sweep layer uses this to turn per-point failures
     * into recorded diagnostics instead of aborting the sweep.
     */
    std::vector<std::exception_ptr>
    tryForEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /**
     * Ordered map: returns {fn(0), ..., fn(n-1)}, always indexed by
     * point, never by completion order. Rethrows like forEach.
     */
    template <typename R>
    std::vector<R> map(std::size_t n,
                       const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void workerLoop();

    /** Claim and run job indices until the current batch is exhausted. */
    void drainBatch();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;

    // Current batch (guarded by mutex_; indices claimed under the lock).
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t batch_size_ = 0;
    std::size_t next_index_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;

    /** Per-index exceptions of the current batch (null = succeeded). */
    std::vector<std::exception_ptr> errors_;
};

/**
 * Process-wide shared runner (lazily constructed with the default thread
 * count); the experiments use this so a process spins up one pool total.
 */
ParallelExperimentRunner &sharedRunner();

/**
 * Set the worker count sharedRunner() will be constructed with
 * (0 restores the default). Must be called before the first
 * sharedRunner() use; the `padc` driver's --threads flag goes through
 * here.
 * @return false (and changes nothing) when the shared pool already
 *         exists.
 */
bool setSharedRunnerThreads(unsigned threads);

} // namespace padc::sim

#endif // PADC_SIM_PARALLEL_HH
