#include "sim/system.hh"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "telemetry/profiler.hh"

namespace padc::sim
{

namespace
{

/**
 * PADC_NO_EVENT_SKIP=1 forces the legacy cycle-by-cycle loop, for
 * bisecting any future skip-on/skip-off divergence. Same strict parse
 * as PADC_THREADS: reject trailing garbage and out-of-range values
 * instead of silently misreading them.
 */
bool
envNoEventSkip()
{
    const char *env = std::getenv("PADC_NO_EVENT_SKIP");
    if (env == nullptr)
        return false;
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || parsed < 0) {
        std::fprintf(stderr,
                     "padc: warning: invalid PADC_NO_EVENT_SKIP=\"%s\" "
                     "(want 0 or 1); event skipping stays enabled\n",
                     env);
        return false;
    }
    return parsed != 0;
}

} // namespace

SystemConfig
SystemConfig::baseline(std::uint32_t cores)
{
    SystemConfig c;
    c.num_cores = cores;

    c.l1.size_bytes = 32 * 1024;
    c.l1.ways = 4;
    c.l1.hit_latency = 2;

    c.l2.size_bytes = cores == 1 ? 1024 * 1024 : 512 * 1024;
    c.l2.ways = 8;
    c.l2.hit_latency = 15;

    std::uint32_t buffer = 32 * cores;
    if (cores == 1 || cores == 2)
        buffer = 64;
    else if (cores == 4)
        buffer = 128;
    else if (cores == 8)
        buffer = 256;
    c.sched.request_buffer_size = buffer;
    c.mshr_per_l2 = buffer / cores;

    // The paper measures accuracy over 100K-cycle intervals across 200M
    // instructions; our runs are ~100x shorter, so the baseline interval
    // is scaled down to keep a comparable number of adaptation points.
    c.sched.accuracy.interval = 25000;

    // APD drop thresholds: the paper's Table 6 values. They are safe at
    // our timescales because dropped prefetches leave the interval PSC
    // (see AccuracyTracker), which removes the drop/mismeasure feedback
    // loop; the threshold ablation bench sweeps scaled variants.
    c.sched.drop_thresholds = {100, 1500, 50000, 100000};

    return c;
}

ConfigErrors
SystemConfig::validate() const
{
    ConfigErrors errors;
    memctrl::validateCoreCount(num_cores, errors, "num_cores");
    if (mshr_per_l2 == 0)
        errors.add("mshr_per_l2", "must be >= 1");
    core.validate(errors, "core");
    l1.validate(errors, "l1");
    l2.validate(errors, "l2");
    sched.validate(errors, "sched");
    dram.validate(errors, "dram");
    if (prefetch_enabled && prefetcher.kind == PrefetcherKind::None) {
        errors.add("prefetcher.kind",
                   "prefetch_enabled requires a prefetcher algorithm "
                   "(use prefetch_enabled = false to disable)");
    }
    return errors;
}

std::string
RunStatus::detail() const
{
    if (converged())
        return "";
    std::string cores;
    for (std::uint32_t i = 0; i < 64; ++i) {
        if (truncated_mask & (1ULL << i)) {
            if (!cores.empty())
                cores += ",";
            cores += std::to_string(i);
        }
    }
    return (cores_truncated == 1 ? "core " : "cores ") + cores +
           " hit the " + std::to_string(max_cycles) +
           "-cycle cap before retiring the instruction target";
}

System::System(const SystemConfig &config,
               std::vector<core::TraceSource *> traces)
    : config_(config), traces_(std::move(traces)),
      // Fig. 4(a) layout: eight 200-cycle buckets plus overflow.
      useful_hist_(200, 8), useless_hist_(200, 8)
{
    const ConfigErrors errors = config_.validate();
    if (!errors.ok())
        throw std::invalid_argument("invalid SystemConfig: " + errors.str());
    if (traces_.size() != config_.num_cores) {
        throw std::invalid_argument(
            "System: got " + std::to_string(traces_.size()) +
            " trace sources for " + std::to_string(config_.num_cores) +
            " cores");
    }

    dram_ = std::make_unique<dram::DramSystem>(config_.dram);
    tracker_ = std::make_unique<memctrl::AccuracyTracker>(
        config_.num_cores, config_.sched.accuracy);

    for (std::uint32_t ch = 0; ch < dram_->numChannels(); ++ch) {
        controllers_.push_back(std::make_unique<memctrl::MemoryController>(
            config_.sched, dram_->channel(ch), *tracker_, *this,
            config_.num_cores));
    }

    telem_ = config_.collector;
    if (telem_ != nullptr && telem_->trace() != nullptr) {
        for (std::uint32_t ch = 0; ch < dram_->numChannels(); ++ch) {
            const auto id = static_cast<std::uint8_t>(ch);
            controllers_[ch]->setTrace(telem_->trace(), id);
            dram_->channel(ch).setTrace(telem_->trace(), id);
        }
    }

    const std::uint32_t num_l2 = config_.shared_l2 ? 1 : config_.num_cores;
    for (std::uint32_t i = 0; i < num_l2; ++i) {
        l2s_.push_back(std::make_unique<cache::SetAssocCache>(
            config_.l2, "l2." + std::to_string(i)));
        mshrs_.push_back(
            std::make_unique<cache::MshrFile>(config_.mshr_per_l2));
    }

    for (CoreId i = 0; i < config_.num_cores; ++i) {
        l1s_.push_back(std::make_unique<cache::SetAssocCache>(
            config_.l1, "l1." + std::to_string(i)));
        prefetchers_.push_back(
            prefetch::makePrefetcher(config_.prefetcher));
        if (config_.ddpf_enabled) {
            ddpf_.push_back(
                std::make_unique<prefetch::DdpfFilter>(config_.ddpf));
        }
        if (config_.fdp_enabled) {
            FdpState state;
            state.controller =
                std::make_unique<prefetch::FdpController>(config_.fdp);
            state.pollution = std::make_unique<prefetch::PollutionFilter>(
                config_.fdp.pollution_filter_bits);
            fdp_.push_back(std::move(state));
            prefetchers_.back()->setAggressiveness(
                fdp_.back().controller->degree(),
                fdp_.back().controller->distance());
        }
        cores_.push_back(std::make_unique<core::Core>(
            i, config_.core, *traces_[i], *this));
    }

    mem_.resize(config_.num_cores);
    results_.resize(config_.num_cores);
    next_interval_ = config_.sched.accuracy.interval;
    event_skip_ = config_.event_skip && !envNoEventSkip();
}

System::~System() = default;

void
System::fillL1(CoreId core, Addr line_addr, bool dirty, Cycle now)
{
    cache::SetAssocCache &l1 = *l1s_[core];
    if (cache::Line *existing = l1.peek(line_addr)) {
        existing->dirty = existing->dirty || dirty;
        return;
    }
    const cache::EvictResult ev =
        l1.fill(line_addr, core, 0, false, false, 0);
    if (ev.valid && ev.dirty) {
        // Inclusive hierarchy: the L2 normally still holds the victim.
        cache::Line *l2_line = l2For(core).peek(ev.line_addr);
        if (l2_line != nullptr) {
            l2_line->dirty = true;
        } else {
            const dram::DramCoord coord = dram_->map(ev.line_addr);
            controllerFor(coord).enqueueWrite(coord, ev.line_addr, core,
                                              now);
            ++mem_[core].writebacks;
        }
    }
    if (dirty)
        l1.peek(line_addr)->dirty = true;
}

void
System::resolveUseful(cache::Line &line, Cycle now)
{
    (void)now;
    line.prefetched = false;
    tracker_->onPrefetchUsed(line.owner);
    CoreMemStats &ms = mem_[line.owner];
    ++ms.useful_prefetch_fills;
    ++ms.useful_req_fills;
    if (line.fill_row_hit)
        ++ms.useful_req_row_hits;
    useful_hist_.sample(line.service_time);
    if (config_.ddpf_enabled)
        ddpf_[line.owner]->update(line.line_addr, line.pc, true);
    if (config_.fdp_enabled)
        ++fdp_[line.owner].counts.prefetches_used;
}

void
System::resolveUseless(const cache::EvictResult &victim, Addr pc)
{
    useless_hist_.sample(victim.service_time);
    if (config_.ddpf_enabled)
        ddpf_[victim.owner]->update(victim.line_addr, pc, false);
}

void
System::issuePrefetch(CoreId core, Addr addr, Addr pc, Cycle now)
{
    const Addr line_addr = lineAlign(addr);
    CoreMemStats &ms = mem_[core];
    ++ms.prefetch_candidates;

    if (l2For(core).probe(line_addr))
        return;
    cache::MshrFile &mshr = mshrFor(core);
    if (mshr.find(line_addr) != nullptr)
        return;
    if (config_.ddpf_enabled && !ddpf_[core]->allow(line_addr, pc)) {
        ddpf_[core]->noteFiltered();
        ++ms.prefetches_filtered;
        return;
    }
    if (mshr.full()) {
        ++ms.prefetches_no_room;
        return;
    }
    const dram::DramCoord coord = dram_->map(line_addr);
    if (!controllerFor(coord).enqueueRead(coord, line_addr, core, pc,
                                          RequestClass::Prefetch, now)) {
        ++ms.prefetches_no_room;
        return;
    }
    cache::MshrEntry &entry = mshr.alloc(line_addr);
    entry.core = core;
    entry.pc = pc;
    entry.cls = RequestClass::Prefetch;
    entry.was_prefetch = true;
    entry.issue_cycle = now;
    ++ms.prefetches_issued;
    traceMshr(telemetry::EventKind::MshrAlloc, core, line_addr,
              RequestClass::Prefetch, now);
    if (config_.fdp_enabled)
        ++fdp_[core].counts.prefetches_sent;
}

core::AccessReply
System::access(CoreId core, Addr addr, Addr pc, bool is_load,
               std::uint64_t token_tag, bool runahead, Cycle now)
{
    // L1.
    if (cache::Line *l1_line = l1s_[core]->access(addr)) {
        if (!is_load)
            l1_line->dirty = true;
        return {core::AccessStatus::Complete,
                now + config_.l1.hit_latency};
    }

    // L2.
    cache::SetAssocCache &l2 = l2For(core);
    CoreMemStats &ms = mem_[core];
    ++ms.l2_demand_accesses;
    if (config_.fdp_enabled)
        ++fdp_[core].counts.demand_accesses;

    cache::Line *l2_line = l2.access(addr);
    const bool l2_miss = l2_line == nullptr;
    core::AccessReply reply;

    if (!l2_miss) {
        if (l2_line->prefetched)
            resolveUseful(*l2_line, now);
        fillL1(core, lineAlign(addr), !is_load, now);
        reply = {core::AccessStatus::Complete,
                 now + config_.l1.hit_latency + config_.l2.hit_latency};
    } else {
        const Addr line_addr = lineAlign(addr);
        if (config_.fdp_enabled &&
            fdp_[core].pollution->checkAndClear(line_addr)) {
            ++ms.pollution_misses;
            ++fdp_[core].counts.pollution_misses;
        }

        cache::MshrFile &mshr = mshrFor(core);
        if (cache::MshrEntry *entry = mshr.find(line_addr)) {
            if (entry->isPrefetch()) {
                // Demand matched an in-flight prefetch: promote it.
                // This is a primary miss for MPKI purposes; coalescing
                // onto an existing demand miss is not.
                ++ms.l2_demand_misses;
                entry->cls = RequestClass::DemandRead;
                const dram::DramCoord coord = dram_->map(line_addr);
                controllerFor(coord).promote(line_addr, now);
                tracker_->onPrefetchUsed(entry->core);
                ++ms.promotions;
                if (config_.ddpf_enabled)
                    ddpf_[core]->update(line_addr, entry->pc, true);
                if (config_.fdp_enabled) {
                    ++fdp_[core].counts.late_prefetches;
                    ++fdp_[core].counts.prefetches_used;
                }
            }
            entry->waiters.push_back({core, token_tag});
            if (!is_load)
                entry->store_waiting = true;
            traceMshr(telemetry::EventKind::MshrCoalesce, core, line_addr,
                      entry->cls, now);
            reply = {core::AccessStatus::Pending, 0};
        } else {
            const dram::DramCoord coord = dram_->map(line_addr);
            if (mshr.full() ||
                !controllerFor(coord).enqueueRead(
                    coord, line_addr, core, pc, RequestClass::DemandRead,
                    now)) {
                reply = {core::AccessStatus::Retry, 0};
            } else {
                ++ms.l2_demand_misses;
                cache::MshrEntry &entry = mshr.alloc(line_addr);
                entry.core = core;
                entry.pc = pc;
                entry.cls = RequestClass::DemandRead;
                entry.was_prefetch = false;
                entry.issue_cycle = now;
                entry.waiters.push_back({core, token_tag});
                if (!is_load)
                    entry.store_waiting = true;
                traceMshr(telemetry::EventKind::MshrAlloc, core, line_addr,
                          RequestClass::DemandRead, now);
                reply = {core::AccessStatus::Pending, 0};
            }
        }
    }

    // Prefetcher training and issue. Skipped when the demand itself is
    // being retried, so a stalled access does not re-train the
    // prefetcher every cycle.
    if (config_.prefetch_enabled &&
        reply.status != core::AccessStatus::Retry) {
        candidate_buf_.clear();
        prefetchers_[core]->observe(addr, pc, l2_miss, runahead,
                                    candidate_buf_);
        for (const Addr candidate : candidate_buf_)
            issuePrefetch(core, candidate, pc, now);
    }
    return reply;
}

void
System::dramReadComplete(const memctrl::Request &req, Cycle now)
{
    const Addr line_addr = req.line_addr;
    const CoreId core = req.core;
    cache::MshrFile &mshr = mshrFor(core);
    cache::MshrEntry *entry = mshr.find(line_addr);
    assert(entry != nullptr && "read completion without an MSHR entry");

    // The MSHR is the source of truth for promotion status: a read
    // forwarded from the write queue can be promoted while its request
    // copy is already out of the buffer.
    const bool still_prefetch = entry->isPrefetch();
    const bool was_prefetch = entry->was_prefetch;
    const bool row_hit =
        req.row_outcome == memctrl::Request::RowOutcome::Hit;
    const auto service =
        static_cast<std::uint32_t>(now - req.arrival);

    CoreMemStats &ms = mem_[core];
    ++ms.fills_total;
    if (row_hit)
        ++ms.fills_row_hit;
    if (!was_prefetch) {
        ++ms.demand_fills;
        ++ms.useful_req_fills;
        if (row_hit)
            ++ms.useful_req_row_hits;
    } else {
        ++ms.prefetch_fills;
        if (!still_prefetch) {
            // Promoted prefetch: counted useful at fill (the PUC side
            // was already counted at promotion time).
            ++ms.useful_prefetch_fills;
            ++ms.useful_req_fills;
            if (row_hit)
                ++ms.useful_req_row_hits;
            useful_hist_.sample(service);
        }
    }

    cache::SetAssocCache &l2 = l2For(core);
    const cache::EvictResult ev = l2.fill(
        line_addr, core, entry->pc, still_prefetch, row_hit, service);
    if (ev.valid) {
        const bool l1_dirty = l1s_[ev.owner]->invalidate(ev.line_addr);
        if (ev.dirty || l1_dirty) {
            const dram::DramCoord coord = dram_->map(ev.line_addr);
            controllerFor(coord).enqueueWrite(coord, ev.line_addr,
                                              ev.owner, now);
            ++mem_[ev.owner].writebacks;
        }
        if (ev.prefetched_unused)
            resolveUseless(ev, ev.pc);
        // FDP pollution tracking: a prefetch fill displacing
        // demand-useful data is potential pollution.
        if (config_.fdp_enabled && still_prefetch &&
            !ev.prefetched_unused) {
            fdp_[core].pollution->insert(ev.line_addr);
        }
    }

    if (!still_prefetch)
        fillL1(core, line_addr, entry->store_waiting, now);
    for (const cache::LoadToken &waiter : entry->waiters) {
        cores_[waiter.core]->completeLoad(waiter.tag, now);
        core_next_[waiter.core] = 0; // woken: cached bound is stale
    }
    traceMshr(telemetry::EventKind::MshrRelease, core, line_addr,
              entry->cls, now);
    mshr.release(line_addr);
}

void
System::dramPrefetchDropped(const memctrl::Request &req, Cycle now)
{
    cache::MshrFile &mshr = mshrFor(req.core);
    [[maybe_unused]] cache::MshrEntry *entry = mshr.find(req.line_addr);
    assert(entry != nullptr && entry->isPrefetch() &&
           entry->waiters.empty() &&
           "APD must only drop unpromoted prefetches");
    traceMshr(telemetry::EventKind::MshrRelease, req.core, req.line_addr,
              RequestClass::Prefetch, now);
    mshr.release(req.line_addr);
    // Freed MSHR capacity can unblock a retrying access; the retry loop
    // keeps the core's own next-event at "now", but stay conservative.
    core_next_[req.core] = 0;
}

std::array<std::uint64_t, kRequestClassCount>
System::classServiced() const
{
    std::array<std::uint64_t, kRequestClassCount> total{};
    for (const auto &controller : controllers_) {
        const auto &per_class = controller->stats().serviced_by_class;
        for (std::size_t c = 0; c < kRequestClassCount; ++c)
            total[c] += per_class[c];
    }
    return total;
}

StatSet
System::exportStats() const
{
    StatSet stats;
    stats.add("cycles", static_cast<double>(now_));

    for (CoreId i = 0; i < config_.num_cores; ++i) {
        const std::string prefix = "core" + std::to_string(i) + ".";
        const CoreResult &res = results_[i];
        const core::CoreStats &cs = res.core_stats;
        const CoreMemStats &ms = res.mem_stats;
        stats.add(prefix + "instructions",
                  static_cast<double>(cs.instructions));
        stats.add(prefix + "cycles", static_cast<double>(res.done_cycle));
        stats.add(prefix + "loads", static_cast<double>(cs.loads));
        stats.add(prefix + "stores", static_cast<double>(cs.stores));
        stats.add(prefix + "load_stall_cycles",
                  static_cast<double>(cs.load_stall_cycles));
        stats.add(prefix + "runahead_episodes",
                  static_cast<double>(cs.runahead_episodes));
        stats.add(prefix + "l2_demand_accesses",
                  static_cast<double>(ms.l2_demand_accesses));
        stats.add(prefix + "l2_demand_misses",
                  static_cast<double>(ms.l2_demand_misses));
        stats.add(prefix + "demand_fills",
                  static_cast<double>(ms.demand_fills));
        stats.add(prefix + "prefetch_fills",
                  static_cast<double>(ms.prefetch_fills));
        stats.add(prefix + "useful_prefetch_fills",
                  static_cast<double>(ms.useful_prefetch_fills));
        stats.add(prefix + "writebacks",
                  static_cast<double>(ms.writebacks));
        stats.add(prefix + "prefetches_issued",
                  static_cast<double>(ms.prefetches_issued));
        stats.add(prefix + "prefetch_candidates",
                  static_cast<double>(ms.prefetch_candidates));
        stats.add(prefix + "prefetches_filtered",
                  static_cast<double>(ms.prefetches_filtered));
        stats.add(prefix + "prefetches_no_room",
                  static_cast<double>(ms.prefetches_no_room));
        stats.add(prefix + "promotions",
                  static_cast<double>(ms.promotions));
        stats.add(prefix + "pref_sent",
                  static_cast<double>(res.pref_sent));
        stats.add(prefix + "pref_used",
                  static_cast<double>(res.pref_used));
        stats.add(prefix + "accuracy", tracker_->accuracy(i));
    }

    for (std::uint32_t i = 0; i < controllers_.size(); ++i) {
        const std::string prefix = "ctrl" + std::to_string(i) + ".";
        const memctrl::ControllerStats &cs = controllers_[i]->stats();
        stats.add(prefix + "demand_reads",
                  static_cast<double>(cs.demand_reads));
        stats.add(prefix + "prefetch_reads",
                  static_cast<double>(cs.prefetch_reads));
        stats.add(prefix + "writes", static_cast<double>(cs.writes));
        stats.add(prefix + "row_hits",
                  static_cast<double>(cs.read_row_hits));
        stats.add(prefix + "row_closed",
                  static_cast<double>(cs.read_row_closed));
        stats.add(prefix + "row_conflicts",
                  static_cast<double>(cs.read_row_conflicts));
        stats.add(prefix + "prefetches_dropped",
                  static_cast<double>(cs.prefetches_dropped));
        stats.add(prefix + "prefetches_rejected_full",
                  static_cast<double>(cs.prefetches_rejected_full));
        stats.add(prefix + "demands_rejected_full",
                  static_cast<double>(cs.demands_rejected_full));
        stats.add(prefix + "promotions",
                  static_cast<double>(cs.promotions));
        stats.add(prefix + "forwarded_reads",
                  static_cast<double>(cs.forwarded_reads));
        stats.add(prefix + "duplicate_reads",
                  static_cast<double>(cs.duplicate_reads));
        stats.add(prefix + "avg_read_queue",
                  cs.dram_cycles > 0
                      ? static_cast<double>(cs.read_queue_occupancy_sum) /
                            static_cast<double>(cs.dram_cycles)
                      : 0.0);
        for (std::size_t c = 0; c < kRequestClassCount; ++c) {
            stats.add(prefix + "serviced." +
                          toString(static_cast<RequestClass>(c)),
                      static_cast<double>(cs.serviced_by_class[c]));
        }
    }

    const dram::ChannelStats ds = dram_->totalStats();
    stats.add("dram.activates", static_cast<double>(ds.activates));
    stats.add("dram.precharges", static_cast<double>(ds.precharges));
    stats.add("dram.reads", static_cast<double>(ds.reads));
    stats.add("dram.writes", static_cast<double>(ds.writes));
    stats.add("dram.refreshes", static_cast<double>(ds.refreshes));

    for (std::uint32_t i = 0; i < l2s_.size(); ++i) {
        const std::string prefix = "l2." + std::to_string(i) + ".";
        const cache::CacheStats &cs = l2s_[i]->stats();
        stats.add(prefix + "hits", static_cast<double>(cs.hits));
        stats.add(prefix + "misses", static_cast<double>(cs.misses));
        stats.add(prefix + "fills", static_cast<double>(cs.fills));
        stats.add(prefix + "evictions",
                  static_cast<double>(cs.evictions));
        stats.add(prefix + "dirty_evictions",
                  static_cast<double>(cs.dirty_evictions));
        stats.add(prefix + "useless_evictions",
                  static_cast<double>(cs.useless_evictions));
    }
    return stats;
}

void
System::sampleTelemetry(Cycle now)
{
    telemetry::IntervalSampler &sampler = *telem_->sampler();

    core_samples_.resize(config_.num_cores);
    for (CoreId i = 0; i < config_.num_cores; ++i) {
        telemetry::IntervalSampler::CoreSample &s = core_samples_[i];
        s.par = tracker_->accuracy(i);
        s.sent = tracker_->totalSent(i);
        s.used = tracker_->totalUsed(i);
        s.dropped = tracker_->totalDropped(i);
        s.drop_threshold = config_.sched.apd_enabled
                               ? controllers_[0]->apd().dropThreshold(i)
                               : 0;
    }

    chan_samples_.resize(controllers_.size());
    for (std::uint32_t ch = 0; ch < controllers_.size(); ++ch) {
        const memctrl::ControllerStats &cs = controllers_[ch]->stats();
        telemetry::IntervalSampler::ChannelSample &s = chan_samples_[ch];
        s.reads = cs.demand_reads + cs.prefetch_reads;
        s.writes = cs.writes;
        s.row_hits = cs.read_row_hits;
        s.row_reads =
            cs.read_row_hits + cs.read_row_closed + cs.read_row_conflicts;
        s.occupancy_sum = cs.read_queue_occupancy_sum;
        s.dram_cycles = cs.dram_cycles;
        s.write_queue = controllers_[ch]->writeQueueSize();
        s.serviced_by_class = cs.serviced_by_class;
    }

    const dram::TimingParams &timing = dram_->channel(0).timing();
    sampler.sample(now, core_samples_, chan_samples_,
                   timing.toCpu(timing.tBURST));
}

void
System::traceMshr(telemetry::EventKind kind, CoreId core, Addr line_addr,
                  RequestClass cls, Cycle now)
{
    if (telem_ == nullptr || telem_->trace() == nullptr)
        return;
    const dram::DramCoord coord = dram_->map(line_addr);
    telemetry::TraceEvent event;
    event.cycle = now;
    event.addr = line_addr;
    event.row = coord.row;
    event.kind = kind;
    event.core = static_cast<std::uint8_t>(core);
    event.channel = static_cast<std::uint8_t>(coord.channel);
    event.bank = static_cast<std::uint16_t>(coord.bank);
    event.cls = static_cast<std::uint8_t>(cls);
    event.flags = cls == RequestClass::Prefetch
                      ? telemetry::TraceEvent::kPrefetch
                      : 0;
    telem_->trace()->record(event);
}

void
System::intervalTick(Cycle now)
{
    accuracy_timeline_.emplace_back(now, tracker_->accuracy(0));
    if (telem_ != nullptr && telem_->sampler() != nullptr)
        sampleTelemetry(now);
    if (config_.fdp_enabled) {
        for (CoreId i = 0; i < config_.num_cores; ++i) {
            FdpState &state = fdp_[i];
            state.controller->evaluate(state.counts);
            state.counts = {};
            prefetchers_[i]->setAggressiveness(
                state.controller->degree(), state.controller->distance());
        }
    }
    next_interval_ = now + config_.sched.accuracy.interval;
}

RunStatus
System::run(std::uint64_t instructions_per_core, std::uint64_t max_cycles,
            std::uint64_t warmup_instructions)
{
    const Cycle end = now_ + max_cycles;
    std::uint64_t jump_cycles = 0;
    std::uint64_t jump_count = 0;
    core_next_.assign(config_.num_cores, 0);
    while (now_ < end) {
        tracker_->tick(now_);
        if (now_ >= next_interval_)
            intervalTick(now_);
        if ((now_ & (telemetry::kSchedulerSampleInterval - 1)) == 0) {
            // 1-in-1024 sampled wall-clock timing of the scheduler hot
            // path (extrapolated in the profiler snapshot); two steady-
            // clock reads per kilocycle, negligible against a cycle of
            // simulation work.
            telemetry::WallProfiler::Scope scope(
                telemetry::ProfilePhase::SchedulerSample);
            for (auto &controller : controllers_)
                controller->tick(now_);
        } else {
            for (auto &controller : controllers_)
                controller->tick(now_);
        }

        bool all_done = true;
        for (CoreId i = 0; i < config_.num_cores; ++i) {
            if (event_skip_ && core_next_[i] > now_) {
                // Provably idle this cycle (nothing ticked the core and
                // no completion touched it since its bound was taken):
                // replay the exact 1-cycle idle accounting instead of a
                // full no-op tick, just as the jump below does for gap
                // cycles. A skipped core cannot have newly finished.
                cores_[i]->accountIdleCycles(1);
                if (!results_[i].done)
                    all_done = false;
                continue;
            }
            cores_[i]->tick(now_);
            if (event_skip_)
                core_next_[i] = cores_[i]->nextEventCycle(now_ + 1);
            if (!results_[i].done) {
                CoreResult &res = results_[i];
                const std::uint64_t retired =
                    cores_[i]->stats().instructions;
                if (!res.warmed && warmup_instructions > 0 &&
                    retired >= warmup_instructions) {
                    res.warmed = true;
                    res.warm_cycle = now_ + 1;
                    res.warm_core_stats = cores_[i]->stats();
                    res.warm_mem_stats = mem_[i];
                    res.warm_pref_sent = tracker_->totalSent(i);
                    res.warm_pref_used = tracker_->totalUsed(i);
                }
                if (retired >= instructions_per_core) {
                    res.done = true;
                    res.done_cycle = now_ + 1;
                    res.core_stats = cores_[i]->stats();
                    res.mem_stats = mem_[i];
                    res.pref_sent = tracker_->totalSent(i);
                    res.pref_used = tracker_->totalUsed(i);
                } else {
                    all_done = false;
                }
            }
        }
        ++now_;
        if (all_done)
            break;

        if (!event_skip_)
            continue;

        // Next-event jump: derive the earliest cycle >= now_ at which
        // anything can change -- interval and accuracy-tracker
        // boundaries (stat/telemetry sampling points must fire at their
        // exact cycles), per-core retire/issue/wake-up events, and each
        // controller's bank wakes, completions, refresh deadlines, and
        // APD drop deadlines -- then advance simulated time in one step.
        // Skipped cycles are provably no-ops apart from per-cycle stat
        // integrals, which skipTo()/accountIdleCycles() replay exactly,
        // so all results stay bit-identical with the legacy loop.
        Cycle next = std::min(end, next_interval_);
        next = std::min(next, tracker_->nextBoundary());
        if (next <= now_)
            continue;
        bool can_skip = true;
        for (CoreId i = 0; i < config_.num_cores; ++i) {
            // Cached by the tick loop above (and reset to 0 by the
            // completion handlers); a core that ticked this cycle has a
            // fresh bound, a skipped core's frozen bound is still exact.
            const Cycle c = core_next_[i];
            if (c <= now_) {
                can_skip = false; // a core acts this very cycle
                break;
            }
            next = std::min(next, c);
        }
        if (!can_skip || next <= now_)
            continue;
        for (const auto &controller : controllers_) {
            next = std::min(next, controller->nextEventCycle(now_));
            if (next <= now_)
                break;
        }
        if (next <= now_)
            continue;
        const std::uint64_t skipped = next - now_;
        for (auto &controller : controllers_)
            controller->skipTo(now_, next);
        for (CoreId i = 0; i < config_.num_cores; ++i)
            cores_[i]->accountIdleCycles(skipped);
        jump_cycles += skipped;
        ++jump_count;
        now_ = next;
    }
    // Per-jump profiler updates are two atomic RMWs each; batch them so
    // the hot loop stays atomic-free (nothing observes the counters
    // mid-run -- snapshots happen after run() returns).
    if (jump_count > 0)
        telemetry::WallProfiler::instance().addEventJumps(jump_cycles,
                                                          jump_count);

    // Cycle cap reached: freeze whatever progress the remaining cores
    // made so metrics stay computable (done remains false), and report
    // the truncation in the returned status instead of pretending the
    // run converged.
    RunStatus status;
    status.cycles = now_;
    status.max_cycles = max_cycles;
    for (CoreId i = 0; i < config_.num_cores; ++i) {
        if (!results_[i].done) {
            CoreResult &res = results_[i];
            res.done_cycle = now_;
            res.core_stats = cores_[i]->stats();
            res.mem_stats = mem_[i];
            res.pref_sent = tracker_->totalSent(i);
            res.pref_used = tracker_->totalUsed(i);
            status.truncated_mask |= 1ULL << i;
            ++status.cores_truncated;
        } else {
            ++status.cores_completed;
        }
    }
    return status;
}

} // namespace padc::sim
