#include "sim/parallel.hh"

#include <cstdlib>

namespace padc::sim
{

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("PADC_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
        return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ParallelExperimentRunner::ParallelExperimentRunner(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    // The calling thread participates in every batch, so spawn one
    // fewer worker than the requested total parallelism.
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelExperimentRunner::~ParallelExperimentRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ParallelExperimentRunner::forEach(std::size_t n,
                                  const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        batch_size_ = n;
        next_index_ = 0;
        completed_ = 0;
        ++generation_;
    }
    work_ready_.notify_all();
    drainBatch();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batch_done_.wait(lock, [this] { return completed_ == batch_size_; });
        job_ = nullptr;
    }
}

void
ParallelExperimentRunner::drainBatch()
{
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t index = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (job_ == nullptr || next_index_ >= batch_size_)
                return;
            job = job_;
            index = next_index_++;
        }
        (*job)(index);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++completed_;
            if (completed_ == batch_size_)
                batch_done_.notify_all();
        }
    }
}

void
ParallelExperimentRunner::workerLoop()
{
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(lock, [&] {
            return shutdown_ ||
                   (job_ != nullptr && generation_ != seen_generation &&
                    next_index_ < batch_size_);
        });
        if (shutdown_)
            return;
        seen_generation = generation_;
        lock.unlock();
        drainBatch();
        lock.lock();
    }
}

ParallelExperimentRunner &
sharedRunner()
{
    static ParallelExperimentRunner runner;
    return runner;
}

} // namespace padc::sim
