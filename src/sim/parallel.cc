#include "sim/parallel.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace padc::sim
{

unsigned
defaultThreadCount()
{
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const unsigned hw = hw_raw >= 1 ? hw_raw : 1;
    const char *env = std::getenv("PADC_THREADS");
    if (env == nullptr)
        return hw;

    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || parsed < 1) {
        std::fprintf(stderr,
                     "padc: warning: invalid PADC_THREADS=\"%s\" "
                     "(want a positive integer); using %u threads\n",
                     env, hw);
        return hw;
    }
    if (parsed > static_cast<long>(kMaxThreads)) {
        std::fprintf(stderr,
                     "padc: warning: PADC_THREADS=%ld clamped to %u\n",
                     parsed, kMaxThreads);
        return kMaxThreads;
    }
    return static_cast<unsigned>(parsed);
}

ParallelExperimentRunner::ParallelExperimentRunner(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    // The calling thread participates in every batch, so spawn one
    // fewer worker than the requested total parallelism.
    workers_.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelExperimentRunner::~ParallelExperimentRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ParallelExperimentRunner::forEach(std::size_t n,
                                  const std::function<void(std::size_t)> &fn)
{
    const std::vector<std::exception_ptr> errors = tryForEach(n, fn);
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

std::vector<std::exception_ptr>
ParallelExperimentRunner::tryForEach(
    std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return {};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        batch_size_ = n;
        next_index_ = 0;
        completed_ = 0;
        errors_.assign(n, nullptr);
        ++generation_;
    }
    work_ready_.notify_all();
    drainBatch();
    std::vector<std::exception_ptr> errors;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        batch_done_.wait(lock, [this] { return completed_ == batch_size_; });
        job_ = nullptr;
        errors.swap(errors_);
    }
    return errors;
}

void
ParallelExperimentRunner::drainBatch()
{
    for (;;) {
        const std::function<void(std::size_t)> *job = nullptr;
        std::size_t index = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (job_ == nullptr || next_index_ >= batch_size_)
                return;
            job = job_;
            index = next_index_++;
        }
        // A throwing job must still count toward batch completion --
        // otherwise forEach waits on completed_ forever (worker throw)
        // or std::terminate tears the process down (caller throw).
        std::exception_ptr error;
        try {
            (*job)(index);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error)
                errors_[index] = std::move(error);
            ++completed_;
            if (completed_ == batch_size_)
                batch_done_.notify_all();
        }
    }
}

void
ParallelExperimentRunner::workerLoop()
{
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(lock, [&] {
            return shutdown_ ||
                   (job_ != nullptr && generation_ != seen_generation &&
                    next_index_ < batch_size_);
        });
        if (shutdown_)
            return;
        seen_generation = generation_;
        lock.unlock();
        drainBatch();
        lock.lock();
    }
}

namespace
{

/** Thread count the shared runner is created with (0 = default). */
unsigned shared_runner_threads = 0;

/** Whether sharedRunner() has constructed the pool already. */
bool shared_runner_created = false;

} // namespace

ParallelExperimentRunner &
sharedRunner()
{
    shared_runner_created = true;
    static ParallelExperimentRunner runner(shared_runner_threads);
    return runner;
}

bool
setSharedRunnerThreads(unsigned threads)
{
    if (shared_runner_created)
        return false;
    shared_runner_threads = threads;
    return true;
}

} // namespace padc::sim
