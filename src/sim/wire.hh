/**
 * @file
 * Wire protocol of the process-sharded sweep executor.
 *
 * The supervisor (ProcessPool) and its `padc worker` subprocesses
 * exchange length-prefixed JSON frames over pipes:
 *
 *   frame    := <u32 little-endian payload length> <payload bytes>
 *   payload  := one JSON document (exp::JsonWriter / exp::parseJson)
 *
 * Three payload shapes exist: the worker's hello (handshake), a task
 * (one SweepPoint plus, for evaluate tasks, the alone-run baseline the
 * worker's AloneIpcCache needs), and a result (padc-bench-result-v1
 * style status/detail plus the full metrics).
 *
 * Encoding rules:
 *  - doubles are plain JSON numbers; exp::jsonNumber emits the shortest
 *    decimal that strtod()s back to the same bits, so replaying a
 *    worker's result is bit-identical to computing it in-process.
 *  - 64-bit integers are decimal STRINGS ("123"), never JSON numbers:
 *    the parser stores numbers as double, which silently loses
 *    precision past 2^53 (seeds and cycle caps can exceed that).
 *  - enums travel as their underlying integer value; both ends run the
 *    same binary (the supervisor execs /proc/self/exe), so the values
 *    always agree.
 *
 * The deterministic fault-injection hook lives here too:
 * PADC_FAULT_INJECT=crash:<every>|hang:<every>|exit:<code>:<every>
 * fires on every <every>-th task index but only on attempt 0, so a
 * retried point always succeeds and the merged sweep stays bit-
 * identical to a fault-free run; poison:<index> fires on every attempt
 * of one index, which is what drives a point into quarantine.
 */

#ifndef PADC_SIM_WIRE_HH
#define PADC_SIM_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "exp/json.hh"
#include "sim/experiment.hh"

namespace padc::sim::wire
{

/** Hard upper bound on one frame's payload (corruption guard). */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

// --- frame I/O --------------------------------------------------------

/**
 * Write one length-prefixed frame, retrying short writes and EINTR.
 * @return false when the peer is gone (EPIPE/other write error).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Blocking read of one complete frame.
 * @return false on EOF, read error, or an oversized length prefix.
 */
bool readFrame(int fd, std::string *payload);

/**
 * Incremental frame reassembly for the supervisor's non-blocking
 * event loop: feed() whatever poll() delivered, then drain complete
 * frames with next().
 */
class FrameBuffer
{
  public:
    /** Append @p n raw bytes from the pipe. */
    void feed(const char *data, std::size_t n);

    /**
     * Extract the next complete frame payload.
     * @return true when a frame was extracted into @p payload.
     */
    bool next(std::string *payload);

    /** A length prefix exceeded kMaxFramePayload (protocol corrupt). */
    bool corrupt() const { return corrupt_; }

  private:
    std::string pending_;
    bool corrupt_ = false;
};

// --- task / result payloads -------------------------------------------

/** One supervisor->worker task. */
struct WireTask
{
    enum class Kind : std::uint8_t
    {
        Run,  ///< sim::runMix the point
        Eval, ///< sim::evaluateMix the point (needs the alone baseline)
    };

    Kind kind = Kind::Run;
    std::uint64_t index = 0;   ///< sweep-point index (fault schedule key)
    std::uint32_t attempt = 0; ///< 0 on first dispatch, +1 per retry
    SweepPoint point;

    SystemConfig alone_base;    ///< Eval only: AloneIpcCache base config
    RunOptions alone_options;   ///< Eval only: AloneIpcCache options
};

/**
 * Optional per-task worker self-report riding on a result frame.
 *
 * Appended as the named member "worker" — an append-only protocol
 * extension: decodeResult looks members up by name and ignores unknown
 * ones, so old supervisors skip it and old workers simply never send
 * it (present stays false). Values are per-THIS-task deltas, not
 * worker-lifetime totals, so the supervisor aggregates without delta
 * bookkeeping across retries/respawns.
 */
struct WireWorkerReport
{
    bool present = false;       ///< member was on the wire
    std::uint64_t pid = 0;      ///< reporting worker process
    std::uint64_t tasks = 0;    ///< tasks this worker has completed
    std::uint64_t sim_cycles = 0; ///< simulated cycles of this task
    double exec_seconds = 0.0;  ///< wall seconds executing this task
};

/** One worker->supervisor result (or the initial hello when hello). */
struct WireResult
{
    bool hello = false; ///< handshake frame; all other members unset
    WireTask::Kind kind = WireTask::Kind::Run;
    std::uint64_t index = 0;
    Result<RunMetrics> run;      ///< Kind::Run payload
    Result<MixEvaluation> eval;  ///< Kind::Eval payload
    WireWorkerReport worker;     ///< optional self-report extension
};

std::string encodeHello();
std::string encodeTask(const WireTask &task);
std::string encodeResult(const WireResult &result);

/** @return false with a diagnostic in @p error on malformed payloads. */
bool decodeTask(const std::string &payload, WireTask *out,
                std::string *error);
bool decodeResult(const std::string &payload, WireResult *out,
                  std::string *error);

// --- point (de)serialization, exposed for tests ----------------------

/** Append the point as a JSON object member @p key of @p writer. */
void encodePoint(exp::JsonWriter &writer, const std::string &key,
                 const SweepPoint &point);

/** Decode a point encoded by encodePoint. */
bool decodePoint(const exp::JsonValue &value, SweepPoint *out,
                 std::string *error);

// --- fault injection --------------------------------------------------

/** Parsed PADC_FAULT_INJECT schedule. */
struct FaultSpec
{
    enum class Mode : std::uint8_t
    {
        None,   ///< no faults
        Crash,  ///< raise(SIGKILL) before running the task
        Hang,   ///< block until the supervisor disappears or kills us
        Exit,   ///< _exit(code) before running the task
        Poison, ///< crash on ONE index, every attempt (quarantine path)
    };

    Mode mode = Mode::None;
    std::uint64_t every = 0;  ///< crash/hang/exit: period over indices
    int exit_code = 1;        ///< exit mode only
    std::uint64_t poison_index = 0; ///< poison mode only

    bool enabled() const { return mode != Mode::None; }
};

/**
 * Parse a PADC_FAULT_INJECT value. nullptr/empty parses as None;
 * malformed input warns on stderr once per call and parses as None
 * (mirroring the strict PADC_THREADS convention: never guess).
 */
FaultSpec parseFaultSpec(const char *text);

/** The process's PADC_FAULT_INJECT schedule. */
FaultSpec envFaultSpec();

/** Does the schedule fire for this (task index, attempt)? */
bool faultFires(const FaultSpec &spec, std::uint64_t index,
                std::uint32_t attempt);

} // namespace padc::sim::wire

#endif // PADC_SIM_WIRE_HH
