/**
 * @file
 * Graceful-stop coordination for sweeps.
 *
 * A single process-wide flag, settable from a signal handler
 * (async-signal-safe), that the sweep layers poll between points: a
 * point that has not started when the flag rises is recorded as Failed
 * with detail "interrupted" and deliberately NOT journaled, so a
 * subsequent PADC_RESUME run retries it. Points already in flight run
 * to completion (in-thread execution cannot be cancelled safely); the
 * process-pool supervisor instead kills its in-flight workers and
 * records their points as interrupted too.
 *
 * The PADC_TEST_INTERRUPT_AFTER=<n> hook raises the flag automatically
 * after n completed sweep points, giving tests a deterministic stand-in
 * for an operator's Ctrl-C (real signal timing is unreproducible).
 */

#ifndef PADC_SIM_INTERRUPT_HH
#define PADC_SIM_INTERRUPT_HH

namespace padc::sim
{

/** Detail string carried by points skipped due to a graceful stop. */
inline constexpr char kInterruptedDetail[] = "interrupted";

/** True once a graceful stop has been requested. */
bool interruptRequested();

/**
 * Request a graceful stop. Async-signal-safe: only writes a lock-free
 * atomic flag, so SIGINT/SIGTERM handlers may call it directly; the
 * atomic (not plain sig_atomic_t) also makes it safe for another
 * thread -- the serve daemon's executor -- to poll interruptRequested()
 * while a handler fires.
 */
void requestInterrupt();

/**
 * Clear the flag and (re)arm the PADC_TEST_INTERRUPT_AFTER counter from
 * the environment. The driver calls this at the start of every `run`
 * invocation so one interrupted in-process run cannot leak its stop
 * request into the next.
 */
void resetInterruptState();

/**
 * Count one executed (not journal-replayed) sweep point toward the
 * PADC_TEST_INTERRUPT_AFTER budget; raises the interrupt flag when the
 * budget is exhausted. No-op unless the hook is armed.
 */
void notePointCompleted();

} // namespace padc::sim

#endif // PADC_SIM_INTERRUPT_HH
