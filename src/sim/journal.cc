#include "sim/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace padc::sim
{

namespace
{

// --- hashing ----------------------------------------------------------

/** FNV-1a over typed fields; the canonical sweep-point fingerprint. */
class Fnv
{
  public:
    void
    byte(unsigned char b)
    {
        hash_ ^= b;
        hash_ *= 0x100000001b3ULL;
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<unsigned char>(v >> (8 * i)));
    }

    void
    d(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (const char c : s)
            byte(static_cast<unsigned char>(c));
    }

    std::uint64_t
    digest() const
    {
        return hash_;
    }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// --- payload serialization --------------------------------------------
//
// One journal line is: "padcj1 <kind> <key> <body...>\n", where every
// token is space-separated, integers are lowercase hex, doubles are the
// hex of their IEEE-754 bit pattern (bit-exact round trip), and the
// outcome detail string is hex-encoded bytes ("-" when empty).

class TokenWriter
{
  public:
    void
    u64(std::uint64_t v)
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(v));
        append(buf);
    }

    void
    d(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        if (s.empty()) {
            append("-");
            return;
        }
        std::string hex;
        hex.reserve(s.size() * 2);
        static const char digits[] = "0123456789abcdef";
        for (const char c : s) {
            const auto b = static_cast<unsigned char>(c);
            hex.push_back(digits[b >> 4]);
            hex.push_back(digits[b & 0xf]);
        }
        append(hex.c_str());
    }

    const std::string &
    out() const
    {
        return body_;
    }

  private:
    void
    append(const char *token)
    {
        if (!body_.empty())
            body_.push_back(' ');
        body_ += token;
    }

    std::string body_;
};

class TokenReader
{
  public:
    explicit TokenReader(const std::string &body) : in_(body) {}

    bool
    u64(std::uint64_t *v)
    {
        std::string token;
        if (!(in_ >> token))
            return false;
        char *end = nullptr;
        *v = std::strtoull(token.c_str(), &end, 16);
        return end != token.c_str() && *end == '\0';
    }

    bool
    d(double *v)
    {
        std::uint64_t bits = 0;
        if (!u64(&bits))
            return false;
        std::memcpy(v, &bits, sizeof(*v));
        return true;
    }

    bool
    str(std::string *s)
    {
        std::string token;
        if (!(in_ >> token))
            return false;
        s->clear();
        if (token == "-")
            return true;
        if (token.size() % 2 != 0)
            return false;
        for (std::size_t i = 0; i < token.size(); i += 2) {
            int hi = hexVal(token[i]);
            int lo = hexVal(token[i + 1]);
            if (hi < 0 || lo < 0)
                return false;
            s->push_back(static_cast<char>((hi << 4) | lo));
        }
        return true;
    }

    bool
    done()
    {
        std::string token;
        return !(in_ >> token);
    }

  private:
    static int
    hexVal(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    }

    std::istringstream in_;
};

void
writeOutcome(TokenWriter &w, const PointOutcome &outcome)
{
    w.u64(static_cast<std::uint64_t>(outcome.status));
    w.str(outcome.detail);
}

bool
readOutcome(TokenReader &r, PointOutcome *outcome)
{
    std::uint64_t status = 0;
    if (!r.u64(&status) || status > 2)
        return false;
    outcome->status = static_cast<PointStatus>(status);
    return r.str(&outcome->detail);
}

void
writeMetrics(TokenWriter &w, const RunMetrics &metrics)
{
    w.u64(metrics.cores.size());
    for (const CoreMetrics &core : metrics.cores) {
        w.d(core.ipc);
        w.d(core.mpki);
        w.d(core.spl);
        w.d(core.acc);
        w.d(core.cov);
        w.d(core.rbh);
        w.d(core.rbhu);
        w.u64(core.traffic_demand);
        w.u64(core.traffic_pref_useful);
        w.u64(core.traffic_pref_useless);
        w.u64(core.traffic_writeback);
        w.u64(core.instructions);
        w.u64(core.cycles);
    }
    for (const std::uint64_t serviced : metrics.class_serviced)
        w.u64(serviced);
}

bool
readMetrics(TokenReader &r, RunMetrics *metrics)
{
    std::uint64_t cores = 0;
    if (!r.u64(&cores) || cores > memctrl::kMaxCores)
        return false;
    metrics->cores.clear();
    metrics->cores.resize(cores);
    for (CoreMetrics &core : metrics->cores) {
        if (!r.d(&core.ipc) || !r.d(&core.mpki) || !r.d(&core.spl) ||
            !r.d(&core.acc) || !r.d(&core.cov) || !r.d(&core.rbh) ||
            !r.d(&core.rbhu) || !r.u64(&core.traffic_demand) ||
            !r.u64(&core.traffic_pref_useful) ||
            !r.u64(&core.traffic_pref_useless) ||
            !r.u64(&core.traffic_writeback) ||
            !r.u64(&core.instructions) || !r.u64(&core.cycles)) {
            return false;
        }
    }
    for (std::uint64_t &serviced : metrics->class_serviced) {
        if (!r.u64(&serviced))
            return false;
    }
    return true;
}

void
writeSummary(TokenWriter &w, const MultiCoreMetrics &summary)
{
    w.u64(summary.speedups.size());
    for (const double is : summary.speedups)
        w.d(is);
    w.d(summary.ws);
    w.d(summary.hs);
    w.d(summary.uf);
}

bool
readSummary(TokenReader &r, MultiCoreMetrics *summary)
{
    std::uint64_t n = 0;
    if (!r.u64(&n) || n > memctrl::kMaxCores)
        return false;
    summary->speedups.clear();
    summary->speedups.resize(n);
    for (double &is : summary->speedups) {
        if (!r.d(&is))
            return false;
    }
    return r.d(&summary->ws) && r.d(&summary->hs) && r.d(&summary->uf);
}

std::string
serialize(const Result<RunMetrics> &result)
{
    TokenWriter w;
    writeOutcome(w, result.outcome);
    writeMetrics(w, result.value);
    return w.out();
}

std::string
serialize(const Result<MixEvaluation> &result)
{
    TokenWriter w;
    writeOutcome(w, result.outcome);
    writeMetrics(w, result.value.metrics);
    writeSummary(w, result.value.summary);
    return w.out();
}

bool
deserialize(const std::string &body, Result<RunMetrics> *result)
{
    TokenReader r(body);
    return readOutcome(r, &result->outcome) &&
           readMetrics(r, &result->value) && r.done();
}

bool
deserialize(const std::string &body, Result<MixEvaluation> *result)
{
    TokenReader r(body);
    return readOutcome(r, &result->outcome) &&
           readMetrics(r, &result->value.metrics) &&
           readSummary(r, &result->value.summary) && r.done();
}

constexpr char kLineTag[] = "padcj2";

} // namespace

std::uint64_t
sweepPointKey(const SweepPoint &point)
{
    Fnv h;
    const SystemConfig &c = point.config;

    h.u64(c.num_cores);
    h.u64(c.core.window_size);
    h.u64(c.core.retire_width);
    h.u64(c.core.fetch_width);
    h.u64(c.core.lsq_size);
    h.u64(c.core.mem_issue_width);
    h.u64(c.core.runahead ? 1 : 0);
    h.u64(c.core.runahead_max_ops);

    for (const cache::CacheConfig *cache : {&c.l1, &c.l2}) {
        h.u64(cache->size_bytes);
        h.u64(cache->ways);
        h.u64(cache->hit_latency);
        h.u64(static_cast<std::uint64_t>(cache->repl));
    }
    h.u64(c.shared_l2 ? 1 : 0);
    h.u64(c.mshr_per_l2);

    h.u64(c.prefetch_enabled ? 1 : 0);
    h.u64(static_cast<std::uint64_t>(c.prefetcher.kind));
    h.u64(c.prefetcher.stream_entries);
    h.u64(c.prefetcher.degree);
    h.u64(c.prefetcher.distance);
    h.u64(c.prefetcher.train_window);
    h.u64(c.prefetcher.stride_entries);
    h.u64(c.prefetcher.czone_shift);
    h.u64(c.prefetcher.czone_entries);
    h.u64(c.prefetcher.delta_history);
    h.u64(c.prefetcher.markov_entries);
    h.u64(c.prefetcher.markov_successors);

    h.u64(c.ddpf_enabled ? 1 : 0);
    h.u64(c.ddpf.table_entries);
    h.u64(c.ddpf.threshold);
    h.u64(c.ddpf.initial);

    h.u64(c.fdp_enabled ? 1 : 0);
    h.u64(c.fdp.interval);
    h.d(c.fdp.accuracy_high);
    h.d(c.fdp.accuracy_low);
    h.d(c.fdp.lateness_threshold);
    h.d(c.fdp.pollution_threshold);
    h.u64(c.fdp.pollution_filter_bits);
    h.u64(c.fdp.initial_level);

    h.u64(static_cast<std::uint64_t>(c.sched.kind));
    h.u64(c.sched.apd_enabled ? 1 : 0);
    h.u64(c.sched.urgency_enabled ? 1 : 0);
    h.u64(c.sched.ranking_enabled ? 1 : 0);
    h.d(c.sched.promotion_threshold);
    h.u64(c.sched.request_buffer_size);
    h.u64(c.sched.write_buffer_size);
    h.u64(c.sched.write_drain_high);
    h.u64(c.sched.write_drain_low);
    h.u64(static_cast<std::uint64_t>(c.sched.row_policy));
    h.u64(c.sched.reference_scheduler ? 1 : 0);
    h.u64(c.sched.age_quantum);
    for (const Cycle t : c.sched.drop_thresholds)
        h.u64(t);
    for (const double b : c.sched.drop_accuracy_bounds)
        h.d(b);
    h.u64(c.sched.accuracy.interval);
    h.d(c.sched.accuracy.initial_accuracy);
    h.u64(c.sched.accuracy.min_samples);

    const dram::TimingParams &t = c.dram.timing;
    h.u64(t.cpu_per_dram_cycle);
    h.u64(t.tRCD);
    h.u64(t.tRP);
    h.u64(t.tCL);
    h.u64(t.tCWL);
    h.u64(t.tRAS);
    h.u64(t.tRC);
    h.u64(t.tBURST);
    h.u64(t.tCCD);
    h.u64(t.tRRD);
    h.u64(t.tFAW);
    h.u64(t.tWTR);
    h.u64(t.tWR);
    h.u64(t.tRTP);
    h.u64(t.tREFI);
    h.u64(t.tRFC);
    h.u64(t.refresh_enabled ? 1 : 0);

    const dram::Geometry &g = c.dram.geometry;
    h.u64(g.channels);
    h.u64(g.banks_per_channel);
    h.u64(g.row_bytes);
    h.u64(static_cast<std::uint64_t>(g.interleave));
    h.u64(g.permutation_interleaving ? 1 : 0);

    h.u64(point.mix.size());
    for (const std::string &profile : point.mix)
        h.str(profile);

    h.u64(point.options.instructions);
    h.u64(point.options.warmup);
    h.u64(point.options.max_cycles);
    h.u64(point.options.mix_seed);

    return h.digest();
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    // Load whatever a previous (possibly killed) run managed to append.
    bool torn_tail = false; // file ends without '\n' (killed mid-write)
    if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
        std::string line;
        int c = 0;
        bool complete = false;
        auto consume = [&] {
            // A line missing its terminating '\n' is an append the
            // previous process died inside; drop it.
            if (!complete || line.empty())
                return;
            std::istringstream tokens(line);
            std::string tag, kind, key_hex;
            if (!(tokens >> tag >> kind >> key_hex) || tag != kLineTag ||
                kind.size() != 1) {
                return;
            }
            char *end = nullptr;
            const std::uint64_t key =
                std::strtoull(key_hex.c_str(), &end, 16);
            if (end == key_hex.c_str() || *end != '\0')
                return;
            std::string body;
            std::getline(tokens, body);
            // Validate the payload now so a corrupt line surfaces as a
            // miss at load time, not a broken result mid-sweep.
            bool valid = false;
            if (kind[0] == 'e') {
                Result<MixEvaluation> probe;
                valid = deserialize(body, &probe);
            } else if (kind[0] == 'r') {
                Result<RunMetrics> probe;
                valid = deserialize(body, &probe);
            }
            if (!valid)
                return;
            entries_[{kind[0], key}] = body;
            ++loaded_;
        };
        while ((c = std::fgetc(in)) != EOF) {
            if (c == '\n') {
                complete = true;
                consume();
                line.clear();
                complete = false;
            } else {
                line.push_back(static_cast<char>(c));
            }
        }
        consume(); // trailing line without '\n': dropped by `complete`
        torn_tail = !line.empty();
        std::fclose(in);
    }

    // O_APPEND + one write(2) per record is what makes concurrent
    // writers (other threads, other processes) line-atomic.
    append_fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (append_fd_ < 0)
        throw std::runtime_error("SweepJournal: cannot open '" + path_ +
                                 "' for appending");

    // Terminate a torn tail now; otherwise the next record would merge
    // into the partial line and BOTH would be unparseable on reload.
    if (torn_tail) {
        const char nl = '\n';
        while (::write(append_fd_, &nl, 1) < 0 && errno == EINTR) {
        }
    }

    const char *fsync_env = std::getenv("PADC_JOURNAL_FSYNC");
    fsync_each_ = fsync_env != nullptr &&
                  (std::strcmp(fsync_env, "1") == 0 ||
                   std::strcmp(fsync_env, "always") == 0);
}

SweepJournal::~SweepJournal()
{
    if (append_fd_ >= 0)
        ::close(append_fd_);
}

std::size_t
SweepJournal::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

bool
SweepJournal::lookupLine(char kind, std::uint64_t key, std::string *line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find({kind, key});
    if (it == entries_.end())
        return false;
    *line = it->second;
    ++hits_;
    return true;
}

void
SweepJournal::recordLine(char kind, std::uint64_t key,
                         const std::string &body)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(EntryKey{kind, key}, body).second)
        return; // already recorded (e.g. duplicate point in one sweep)

    char head[32];
    std::snprintf(head, sizeof(head), "%s %c %llx ", kLineTag, kind,
                  static_cast<unsigned long long>(key));
    std::string line = head;
    line += body;
    line += '\n';

    // The whole line in one write(2): with O_APPEND this is atomic with
    // respect to other writers of the same file, and a kill mid-write
    // can only tear THIS line (which the loader then drops).
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(append_fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // journal is best-effort; the sweep must go on
        }
        off += static_cast<std::size_t>(n);
    }
    if (fsync_each_)
        ::fsync(append_fd_);
}

bool
SweepJournal::containsEval(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find({'e', key}) != entries_.end();
}

bool
SweepJournal::lookup(std::uint64_t key, Result<MixEvaluation> *out)
{
    std::string body;
    return lookupLine('e', key, &body) && deserialize(body, out);
}

bool
SweepJournal::lookup(std::uint64_t key, Result<RunMetrics> *out)
{
    std::string body;
    return lookupLine('r', key, &body) && deserialize(body, out);
}

void
SweepJournal::record(std::uint64_t key, const Result<MixEvaluation> &result)
{
    recordLine('e', key, serialize(result));
}

void
SweepJournal::record(std::uint64_t key, const Result<RunMetrics> &result)
{
    recordLine('r', key, serialize(result));
}

namespace
{

/** Path override installed by setEnvJournalPath (wins over the env). */
std::string env_journal_override;

/** Whether envJournal() already resolved its journal. */
bool env_journal_resolved = false;

} // namespace

SweepJournal *
envJournal()
{
    env_journal_resolved = true;
    static std::unique_ptr<SweepJournal> journal = [] {
        std::unique_ptr<SweepJournal> j;
        const char *path = env_journal_override.empty()
                               ? std::getenv("PADC_RESUME")
                               : env_journal_override.c_str();
        if (path != nullptr) {
            try {
                j = std::make_unique<SweepJournal>(path);
                std::fprintf(stderr,
                             "padc: resuming from journal '%s' "
                             "(%zu completed points loaded)\n",
                             path, j->loadedEntries());
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "padc: warning: PADC_RESUME ignored: %s\n",
                             e.what());
            }
        }
        return j;
    }();
    return journal.get();
}

bool
setEnvJournalPath(const std::string &path)
{
    if (env_journal_resolved)
        return false;
    env_journal_override = path;
    return true;
}

} // namespace padc::sim
