#include "sim/wire.hh"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace padc::sim::wire
{

namespace
{

// --- low-level pipe I/O -----------------------------------------------

bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::read(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame
        off += static_cast<std::size_t>(n);
    }
    return true;
}

// --- JSON member helpers ----------------------------------------------

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/** Decimal u64 as a string member (see file comment of wire.hh). */
std::string
u64s(std::uint64_t value)
{
    return std::to_string(value);
}

/** Strict unsigned decimal parse: whole string, no sign, no overflow. */
bool
parseU64Strict(const char *text, std::uint64_t *out)
{
    if (text == nullptr || *text == '\0' || text[0] == '-' ||
        text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

bool
getObject(const exp::JsonValue &value, const std::string &key,
          const exp::JsonValue **out, std::string *error)
{
    const exp::JsonValue *member = value.find(key);
    if (member == nullptr || !member->isObject())
        return fail(error, "missing object member '" + key + "'");
    *out = member;
    return true;
}

bool
getString(const exp::JsonValue &value, const std::string &key,
          std::string *out, std::string *error)
{
    const exp::JsonValue *member = value.find(key);
    if (member == nullptr || !member->isString())
        return fail(error, "missing string member '" + key + "'");
    *out = member->string;
    return true;
}

bool
getU64(const exp::JsonValue &value, const std::string &key,
       std::uint64_t *out, std::string *error)
{
    std::string text;
    if (!getString(value, key, &text, error))
        return false;
    if (!parseU64Strict(text.c_str(), out))
        return fail(error, "member '" + key + "' is not a u64: '" +
                               text + "'");
    return true;
}

/** getU64 into any integer/enum field type. */
template <typename T>
bool
u64Field(const exp::JsonValue &value, const std::string &key, T *field,
         std::string *error)
{
    std::uint64_t v = 0;
    if (!getU64(value, key, &v, error))
        return false;
    *field = static_cast<T>(v);
    return true;
}

bool
getDouble(const exp::JsonValue &value, const std::string &key,
          double *out, std::string *error)
{
    const exp::JsonValue *member = value.find(key);
    if (member == nullptr || !member->isNumber())
        return fail(error, "missing number member '" + key + "'");
    *out = member->number;
    return true;
}

bool
getBool(const exp::JsonValue &value, const std::string &key, bool *out,
        std::string *error)
{
    const exp::JsonValue *member = value.find(key);
    if (member == nullptr || member->kind != exp::JsonValue::Kind::Bool)
        return fail(error, "missing bool member '" + key + "'");
    *out = member->boolean;
    return true;
}

// --- config / options / mix -------------------------------------------

void
encodeOptions(exp::JsonWriter &w, const std::string &key,
              const RunOptions &options)
{
    w.beginObject(key);
    w.member("instructions", u64s(options.instructions));
    w.member("warmup", u64s(options.warmup));
    w.member("max_cycles", u64s(options.max_cycles));
    w.member("mix_seed", u64s(options.mix_seed));
    w.endObject();
}

bool
decodeOptions(const exp::JsonValue &value, RunOptions *out,
              std::string *error)
{
    return u64Field(value, "instructions", &out->instructions, error) &&
           u64Field(value, "warmup", &out->warmup, error) &&
           u64Field(value, "max_cycles", &out->max_cycles, error) &&
           u64Field(value, "mix_seed", &out->mix_seed, error);
}

void
encodeCache(exp::JsonWriter &w, const std::string &key,
            const cache::CacheConfig &cache)
{
    w.beginObject(key);
    w.member("size_bytes", u64s(cache.size_bytes));
    w.member("ways", u64s(cache.ways));
    w.member("hit_latency", u64s(cache.hit_latency));
    w.member("repl", u64s(static_cast<std::uint64_t>(cache.repl)));
    w.endObject();
}

bool
decodeCache(const exp::JsonValue &value, cache::CacheConfig *out,
            std::string *error)
{
    return u64Field(value, "size_bytes", &out->size_bytes, error) &&
           u64Field(value, "ways", &out->ways, error) &&
           u64Field(value, "hit_latency", &out->hit_latency, error) &&
           u64Field(value, "repl", &out->repl, error);
}

/**
 * Serialize every SystemConfig field sweepPointKey() hashes, in the
 * same order (that function is the canonical "fields that influence a
 * result" list; collector and event_skip are execution details and
 * deliberately stay behind).
 */
void
encodeConfig(exp::JsonWriter &w, const std::string &key,
             const SystemConfig &c)
{
    w.beginObject(key);
    w.member("num_cores", u64s(c.num_cores));

    w.beginObject("core");
    w.member("window_size", u64s(c.core.window_size));
    w.member("retire_width", u64s(c.core.retire_width));
    w.member("fetch_width", u64s(c.core.fetch_width));
    w.member("lsq_size", u64s(c.core.lsq_size));
    w.member("mem_issue_width", u64s(c.core.mem_issue_width));
    w.member("runahead", c.core.runahead);
    w.member("runahead_max_ops", u64s(c.core.runahead_max_ops));
    w.endObject();

    encodeCache(w, "l1", c.l1);
    encodeCache(w, "l2", c.l2);
    w.member("shared_l2", c.shared_l2);
    w.member("mshr_per_l2", u64s(c.mshr_per_l2));

    w.member("prefetch_enabled", c.prefetch_enabled);
    w.beginObject("prefetcher");
    w.member("kind", u64s(static_cast<std::uint64_t>(c.prefetcher.kind)));
    w.member("stream_entries", u64s(c.prefetcher.stream_entries));
    w.member("degree", u64s(c.prefetcher.degree));
    w.member("distance", u64s(c.prefetcher.distance));
    w.member("train_window", u64s(c.prefetcher.train_window));
    w.member("stride_entries", u64s(c.prefetcher.stride_entries));
    w.member("czone_shift", u64s(c.prefetcher.czone_shift));
    w.member("czone_entries", u64s(c.prefetcher.czone_entries));
    w.member("delta_history", u64s(c.prefetcher.delta_history));
    w.member("markov_entries", u64s(c.prefetcher.markov_entries));
    w.member("markov_successors", u64s(c.prefetcher.markov_successors));
    w.endObject();

    w.member("ddpf_enabled", c.ddpf_enabled);
    w.beginObject("ddpf");
    w.member("table_entries", u64s(c.ddpf.table_entries));
    w.member("threshold", u64s(c.ddpf.threshold));
    w.member("initial", u64s(c.ddpf.initial));
    w.endObject();

    w.member("fdp_enabled", c.fdp_enabled);
    w.beginObject("fdp");
    w.member("interval", u64s(c.fdp.interval));
    w.member("accuracy_high", c.fdp.accuracy_high);
    w.member("accuracy_low", c.fdp.accuracy_low);
    w.member("lateness_threshold", c.fdp.lateness_threshold);
    w.member("pollution_threshold", c.fdp.pollution_threshold);
    w.member("pollution_filter_bits", u64s(c.fdp.pollution_filter_bits));
    w.member("initial_level", u64s(c.fdp.initial_level));
    w.endObject();

    w.beginObject("sched");
    w.member("kind", u64s(static_cast<std::uint64_t>(c.sched.kind)));
    w.member("apd_enabled", c.sched.apd_enabled);
    w.member("urgency_enabled", c.sched.urgency_enabled);
    w.member("ranking_enabled", c.sched.ranking_enabled);
    w.member("promotion_threshold", c.sched.promotion_threshold);
    w.member("request_buffer_size", u64s(c.sched.request_buffer_size));
    w.member("write_buffer_size", u64s(c.sched.write_buffer_size));
    w.member("write_drain_high", u64s(c.sched.write_drain_high));
    w.member("write_drain_low", u64s(c.sched.write_drain_low));
    w.member("row_policy",
             u64s(static_cast<std::uint64_t>(c.sched.row_policy)));
    w.member("reference_scheduler", c.sched.reference_scheduler);
    w.member("age_quantum", u64s(c.sched.age_quantum));
    for (std::size_t i = 0; i < c.sched.drop_thresholds.size(); ++i)
        w.member("drop_thresholds_" + std::to_string(i),
                 u64s(c.sched.drop_thresholds[i]));
    for (std::size_t i = 0; i < c.sched.drop_accuracy_bounds.size(); ++i)
        w.member("drop_accuracy_bounds_" + std::to_string(i),
                 c.sched.drop_accuracy_bounds[i]);
    w.beginObject("accuracy");
    w.member("interval", u64s(c.sched.accuracy.interval));
    w.member("initial_accuracy", c.sched.accuracy.initial_accuracy);
    w.member("min_samples", u64s(c.sched.accuracy.min_samples));
    w.endObject();
    w.endObject();

    w.beginObject("dram");
    const dram::TimingParams &t = c.dram.timing;
    w.beginObject("timing");
    w.member("cpu_per_dram_cycle", u64s(t.cpu_per_dram_cycle));
    w.member("tRCD", u64s(t.tRCD));
    w.member("tRP", u64s(t.tRP));
    w.member("tCL", u64s(t.tCL));
    w.member("tCWL", u64s(t.tCWL));
    w.member("tRAS", u64s(t.tRAS));
    w.member("tRC", u64s(t.tRC));
    w.member("tBURST", u64s(t.tBURST));
    w.member("tCCD", u64s(t.tCCD));
    w.member("tRRD", u64s(t.tRRD));
    w.member("tFAW", u64s(t.tFAW));
    w.member("tWTR", u64s(t.tWTR));
    w.member("tWR", u64s(t.tWR));
    w.member("tRTP", u64s(t.tRTP));
    w.member("tREFI", u64s(t.tREFI));
    w.member("tRFC", u64s(t.tRFC));
    w.member("refresh_enabled", t.refresh_enabled);
    w.endObject();
    const dram::Geometry &g = c.dram.geometry;
    w.beginObject("geometry");
    w.member("channels", u64s(g.channels));
    w.member("banks_per_channel", u64s(g.banks_per_channel));
    w.member("row_bytes", u64s(g.row_bytes));
    w.member("interleave",
             u64s(static_cast<std::uint64_t>(g.interleave)));
    w.member("permutation_interleaving", g.permutation_interleaving);
    w.endObject();
    w.endObject();

    w.endObject();
}

bool
decodeConfig(const exp::JsonValue &value, SystemConfig *out,
             std::string *error)
{
    SystemConfig &c = *out;
    if (!u64Field(value, "num_cores", &c.num_cores, error))
        return false;

    const exp::JsonValue *core = nullptr;
    if (!getObject(value, "core", &core, error) ||
        !u64Field(*core, "window_size", &c.core.window_size, error) ||
        !u64Field(*core, "retire_width", &c.core.retire_width, error) ||
        !u64Field(*core, "fetch_width", &c.core.fetch_width, error) ||
        !u64Field(*core, "lsq_size", &c.core.lsq_size, error) ||
        !u64Field(*core, "mem_issue_width", &c.core.mem_issue_width,
                  error) ||
        !getBool(*core, "runahead", &c.core.runahead, error) ||
        !u64Field(*core, "runahead_max_ops", &c.core.runahead_max_ops,
                  error)) {
        return false;
    }

    const exp::JsonValue *l1 = nullptr;
    const exp::JsonValue *l2 = nullptr;
    if (!getObject(value, "l1", &l1, error) ||
        !decodeCache(*l1, &c.l1, error) ||
        !getObject(value, "l2", &l2, error) ||
        !decodeCache(*l2, &c.l2, error) ||
        !getBool(value, "shared_l2", &c.shared_l2, error) ||
        !u64Field(value, "mshr_per_l2", &c.mshr_per_l2, error)) {
        return false;
    }

    const exp::JsonValue *pf = nullptr;
    if (!getBool(value, "prefetch_enabled", &c.prefetch_enabled,
                 error) ||
        !getObject(value, "prefetcher", &pf, error) ||
        !u64Field(*pf, "kind", &c.prefetcher.kind, error) ||
        !u64Field(*pf, "stream_entries", &c.prefetcher.stream_entries,
                  error) ||
        !u64Field(*pf, "degree", &c.prefetcher.degree, error) ||
        !u64Field(*pf, "distance", &c.prefetcher.distance, error) ||
        !u64Field(*pf, "train_window", &c.prefetcher.train_window,
                  error) ||
        !u64Field(*pf, "stride_entries", &c.prefetcher.stride_entries,
                  error) ||
        !u64Field(*pf, "czone_shift", &c.prefetcher.czone_shift,
                  error) ||
        !u64Field(*pf, "czone_entries", &c.prefetcher.czone_entries,
                  error) ||
        !u64Field(*pf, "delta_history", &c.prefetcher.delta_history,
                  error) ||
        !u64Field(*pf, "markov_entries", &c.prefetcher.markov_entries,
                  error) ||
        !u64Field(*pf, "markov_successors",
                  &c.prefetcher.markov_successors, error)) {
        return false;
    }

    const exp::JsonValue *ddpf = nullptr;
    if (!getBool(value, "ddpf_enabled", &c.ddpf_enabled, error) ||
        !getObject(value, "ddpf", &ddpf, error) ||
        !u64Field(*ddpf, "table_entries", &c.ddpf.table_entries,
                  error) ||
        !u64Field(*ddpf, "threshold", &c.ddpf.threshold, error) ||
        !u64Field(*ddpf, "initial", &c.ddpf.initial, error)) {
        return false;
    }

    const exp::JsonValue *fdp = nullptr;
    if (!getBool(value, "fdp_enabled", &c.fdp_enabled, error) ||
        !getObject(value, "fdp", &fdp, error) ||
        !u64Field(*fdp, "interval", &c.fdp.interval, error) ||
        !getDouble(*fdp, "accuracy_high", &c.fdp.accuracy_high,
                   error) ||
        !getDouble(*fdp, "accuracy_low", &c.fdp.accuracy_low, error) ||
        !getDouble(*fdp, "lateness_threshold",
                   &c.fdp.lateness_threshold, error) ||
        !getDouble(*fdp, "pollution_threshold",
                   &c.fdp.pollution_threshold, error) ||
        !u64Field(*fdp, "pollution_filter_bits",
                  &c.fdp.pollution_filter_bits, error) ||
        !u64Field(*fdp, "initial_level", &c.fdp.initial_level, error)) {
        return false;
    }

    const exp::JsonValue *sched = nullptr;
    if (!getObject(value, "sched", &sched, error) ||
        !u64Field(*sched, "kind", &c.sched.kind, error) ||
        !getBool(*sched, "apd_enabled", &c.sched.apd_enabled, error) ||
        !getBool(*sched, "urgency_enabled", &c.sched.urgency_enabled,
                 error) ||
        !getBool(*sched, "ranking_enabled", &c.sched.ranking_enabled,
                 error) ||
        !getDouble(*sched, "promotion_threshold",
                   &c.sched.promotion_threshold, error) ||
        !u64Field(*sched, "request_buffer_size",
                  &c.sched.request_buffer_size, error) ||
        !u64Field(*sched, "write_buffer_size",
                  &c.sched.write_buffer_size, error) ||
        !u64Field(*sched, "write_drain_high", &c.sched.write_drain_high,
                  error) ||
        !u64Field(*sched, "write_drain_low", &c.sched.write_drain_low,
                  error) ||
        !u64Field(*sched, "row_policy", &c.sched.row_policy, error) ||
        !getBool(*sched, "reference_scheduler",
                 &c.sched.reference_scheduler, error) ||
        !u64Field(*sched, "age_quantum", &c.sched.age_quantum, error)) {
        return false;
    }
    for (std::size_t i = 0; i < c.sched.drop_thresholds.size(); ++i) {
        if (!u64Field(*sched, "drop_thresholds_" + std::to_string(i),
                      &c.sched.drop_thresholds[i], error))
            return false;
    }
    for (std::size_t i = 0; i < c.sched.drop_accuracy_bounds.size();
         ++i) {
        if (!getDouble(*sched,
                       "drop_accuracy_bounds_" + std::to_string(i),
                       &c.sched.drop_accuracy_bounds[i], error))
            return false;
    }
    const exp::JsonValue *accuracy = nullptr;
    if (!getObject(*sched, "accuracy", &accuracy, error) ||
        !u64Field(*accuracy, "interval", &c.sched.accuracy.interval,
                  error) ||
        !getDouble(*accuracy, "initial_accuracy",
                   &c.sched.accuracy.initial_accuracy, error) ||
        !u64Field(*accuracy, "min_samples",
                  &c.sched.accuracy.min_samples, error)) {
        return false;
    }

    const exp::JsonValue *dram = nullptr;
    const exp::JsonValue *timing = nullptr;
    const exp::JsonValue *geometry = nullptr;
    if (!getObject(value, "dram", &dram, error) ||
        !getObject(*dram, "timing", &timing, error) ||
        !getObject(*dram, "geometry", &geometry, error)) {
        return false;
    }
    dram::TimingParams &t = c.dram.timing;
    if (!u64Field(*timing, "cpu_per_dram_cycle", &t.cpu_per_dram_cycle,
                  error) ||
        !u64Field(*timing, "tRCD", &t.tRCD, error) ||
        !u64Field(*timing, "tRP", &t.tRP, error) ||
        !u64Field(*timing, "tCL", &t.tCL, error) ||
        !u64Field(*timing, "tCWL", &t.tCWL, error) ||
        !u64Field(*timing, "tRAS", &t.tRAS, error) ||
        !u64Field(*timing, "tRC", &t.tRC, error) ||
        !u64Field(*timing, "tBURST", &t.tBURST, error) ||
        !u64Field(*timing, "tCCD", &t.tCCD, error) ||
        !u64Field(*timing, "tRRD", &t.tRRD, error) ||
        !u64Field(*timing, "tFAW", &t.tFAW, error) ||
        !u64Field(*timing, "tWTR", &t.tWTR, error) ||
        !u64Field(*timing, "tWR", &t.tWR, error) ||
        !u64Field(*timing, "tRTP", &t.tRTP, error) ||
        !u64Field(*timing, "tREFI", &t.tREFI, error) ||
        !u64Field(*timing, "tRFC", &t.tRFC, error) ||
        !getBool(*timing, "refresh_enabled", &t.refresh_enabled,
                 error)) {
        return false;
    }
    dram::Geometry &g = c.dram.geometry;
    if (!u64Field(*geometry, "channels", &g.channels, error) ||
        !u64Field(*geometry, "banks_per_channel", &g.banks_per_channel,
                  error) ||
        !u64Field(*geometry, "row_bytes", &g.row_bytes, error) ||
        !u64Field(*geometry, "interleave", &g.interleave, error) ||
        !getBool(*geometry, "permutation_interleaving",
                 &g.permutation_interleaving, error)) {
        return false;
    }
    return true;
}

// --- outcome / metrics / summary --------------------------------------

void
encodeOutcome(exp::JsonWriter &w, const PointOutcome &outcome)
{
    w.member("status", toString(outcome.status));
    w.member("detail", outcome.detail);
}

bool
decodeOutcome(const exp::JsonValue &value, PointOutcome *out,
              std::string *error)
{
    std::string status;
    if (!getString(value, "status", &status, error) ||
        !getString(value, "detail", &out->detail, error))
        return false;
    if (status == "ok")
        out->status = PointStatus::Ok;
    else if (status == "truncated")
        out->status = PointStatus::Truncated;
    else if (status == "failed")
        out->status = PointStatus::Failed;
    else
        return fail(error, "unknown point status '" + status + "'");
    return true;
}

void
encodeMetrics(exp::JsonWriter &w, const std::string &key,
              const RunMetrics &metrics)
{
    w.beginObject(key);
    w.beginArray("cores");
    for (const CoreMetrics &core : metrics.cores) {
        w.beginObject();
        w.member("ipc", core.ipc);
        w.member("mpki", core.mpki);
        w.member("spl", core.spl);
        w.member("acc", core.acc);
        w.member("cov", core.cov);
        w.member("rbh", core.rbh);
        w.member("rbhu", core.rbhu);
        w.member("traffic_demand", u64s(core.traffic_demand));
        w.member("traffic_pref_useful", u64s(core.traffic_pref_useful));
        w.member("traffic_pref_useless",
                 u64s(core.traffic_pref_useless));
        w.member("traffic_writeback", u64s(core.traffic_writeback));
        w.member("instructions", u64s(core.instructions));
        w.member("cycles", u64s(core.cycles));
        w.endObject();
    }
    w.endArray();
    w.beginObject("class_serviced");
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        w.member(toString(static_cast<RequestClass>(c)),
                 u64s(metrics.class_serviced[c]));
    }
    w.endObject();
    w.endObject();
}

bool
decodeMetrics(const exp::JsonValue &value, RunMetrics *out,
              std::string *error)
{
    const exp::JsonValue *cores = value.find("cores");
    if (cores == nullptr || !cores->isArray())
        return fail(error, "missing array member 'cores'");
    if (cores->array.size() > memctrl::kMaxCores)
        return fail(error, "implausible core count");
    out->cores.clear();
    out->cores.resize(cores->array.size());
    for (std::size_t i = 0; i < cores->array.size(); ++i) {
        const exp::JsonValue &v = cores->array[i];
        CoreMetrics &core = out->cores[i];
        if (!getDouble(v, "ipc", &core.ipc, error) ||
            !getDouble(v, "mpki", &core.mpki, error) ||
            !getDouble(v, "spl", &core.spl, error) ||
            !getDouble(v, "acc", &core.acc, error) ||
            !getDouble(v, "cov", &core.cov, error) ||
            !getDouble(v, "rbh", &core.rbh, error) ||
            !getDouble(v, "rbhu", &core.rbhu, error) ||
            !u64Field(v, "traffic_demand", &core.traffic_demand,
                      error) ||
            !u64Field(v, "traffic_pref_useful",
                      &core.traffic_pref_useful, error) ||
            !u64Field(v, "traffic_pref_useless",
                      &core.traffic_pref_useless, error) ||
            !u64Field(v, "traffic_writeback", &core.traffic_writeback,
                      error) ||
            !u64Field(v, "instructions", &core.instructions, error) ||
            !u64Field(v, "cycles", &core.cycles, error)) {
            return false;
        }
    }
    const exp::JsonValue *by_class = value.find("class_serviced");
    if (by_class == nullptr)
        return fail(error, "missing member 'class_serviced'");
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        if (!u64Field(*by_class, toString(static_cast<RequestClass>(c)),
                      &out->class_serviced[c], error)) {
            return false;
        }
    }
    return true;
}

void
encodeSummary(exp::JsonWriter &w, const std::string &key,
              const MultiCoreMetrics &summary)
{
    w.beginObject(key);
    w.beginArray("speedups");
    for (const double s : summary.speedups)
        w.element(s);
    w.endArray();
    w.member("ws", summary.ws);
    w.member("hs", summary.hs);
    w.member("uf", summary.uf);
    w.endObject();
}

bool
decodeSummary(const exp::JsonValue &value, MultiCoreMetrics *out,
              std::string *error)
{
    const exp::JsonValue *speedups = value.find("speedups");
    if (speedups == nullptr || !speedups->isArray())
        return fail(error, "missing array member 'speedups'");
    if (speedups->array.size() > memctrl::kMaxCores)
        return fail(error, "implausible speedup count");
    out->speedups.clear();
    for (const exp::JsonValue &s : speedups->array) {
        if (!s.isNumber())
            return fail(error, "non-number speedup element");
        out->speedups.push_back(s.number);
    }
    return getDouble(value, "ws", &out->ws, error) &&
           getDouble(value, "hs", &out->hs, error) &&
           getDouble(value, "uf", &out->uf, error);
}

constexpr char kHelloTag[] = "padc-worker-hello-v1";
constexpr char kTaskTag[] = "padc-worker-task-v1";
constexpr char kResultTag[] = "padc-worker-result-v1";

const char *
kindName(WireTask::Kind kind)
{
    return kind == WireTask::Kind::Eval ? "eval" : "run";
}

} // namespace

// --- frame I/O --------------------------------------------------------

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    const auto size = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    for (int i = 0; i < 4; ++i)
        frame.push_back(static_cast<char>((size >> (8 * i)) & 0xff));
    frame += payload;
    return writeAll(fd, frame.data(), frame.size());
}

bool
readFrame(int fd, std::string *payload)
{
    unsigned char header[4];
    if (!readAll(fd, reinterpret_cast<char *>(header), sizeof(header)))
        return false;
    const std::uint32_t size =
        static_cast<std::uint32_t>(header[0]) |
        (static_cast<std::uint32_t>(header[1]) << 8) |
        (static_cast<std::uint32_t>(header[2]) << 16) |
        (static_cast<std::uint32_t>(header[3]) << 24);
    if (size > kMaxFramePayload)
        return false;
    payload->assign(size, '\0');
    return size == 0 || readAll(fd, payload->data(), size);
}

void
FrameBuffer::feed(const char *data, std::size_t n)
{
    pending_.append(data, n);
}

bool
FrameBuffer::next(std::string *payload)
{
    if (corrupt_ || pending_.size() < 4)
        return false;
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(pending_[i]));
    };
    const std::uint32_t size =
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    if (size > kMaxFramePayload) {
        corrupt_ = true;
        return false;
    }
    if (pending_.size() < 4 + static_cast<std::size_t>(size))
        return false;
    *payload = pending_.substr(4, size);
    pending_.erase(0, 4 + static_cast<std::size_t>(size));
    return true;
}

// --- payloads ---------------------------------------------------------

void
encodePoint(exp::JsonWriter &writer, const std::string &key,
            const SweepPoint &point)
{
    writer.beginObject(key);
    encodeConfig(writer, "config", point.config);
    writer.beginArray("mix");
    for (const std::string &profile : point.mix)
        writer.element(profile);
    writer.endArray();
    encodeOptions(writer, "options", point.options);
    writer.endObject();
}

bool
decodePoint(const exp::JsonValue &value, SweepPoint *out,
            std::string *error)
{
    const exp::JsonValue *config = nullptr;
    const exp::JsonValue *options = nullptr;
    if (!getObject(value, "config", &config, error) ||
        !decodeConfig(*config, &out->config, error))
        return false;
    const exp::JsonValue *mix = value.find("mix");
    if (mix == nullptr || !mix->isArray())
        return fail(error, "missing array member 'mix'");
    out->mix.clear();
    for (const exp::JsonValue &profile : mix->array) {
        if (!profile.isString())
            return fail(error, "non-string mix element");
        out->mix.push_back(profile.string);
    }
    return getObject(value, "options", &options, error) &&
           decodeOptions(*options, &out->options, error);
}

std::string
encodeHello()
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("padc", kHelloTag);
    writer.endObject();
    return writer.str();
}

std::string
encodeTask(const WireTask &task)
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("padc", kTaskTag);
    writer.member("kind", kindName(task.kind));
    writer.member("index", u64s(task.index));
    writer.member("attempt", u64s(task.attempt));
    encodePoint(writer, "point", task.point);
    if (task.kind == WireTask::Kind::Eval) {
        encodeConfig(writer, "alone_config", task.alone_base);
        encodeOptions(writer, "alone_options", task.alone_options);
    }
    writer.endObject();
    return writer.str();
}

std::string
encodeResult(const WireResult &result)
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("padc", kResultTag);
    writer.member("kind", kindName(result.kind));
    writer.member("index", u64s(result.index));
    if (result.kind == WireTask::Kind::Eval) {
        encodeOutcome(writer, result.eval.outcome);
        encodeMetrics(writer, "metrics", result.eval.value.metrics);
        encodeSummary(writer, "summary", result.eval.value.summary);
    } else {
        encodeOutcome(writer, result.run.outcome);
        encodeMetrics(writer, "metrics", result.run.value);
    }
    // Append-only extension (see WireWorkerReport): old supervisors
    // decode by member name and skip this object entirely.
    if (result.worker.present) {
        writer.beginObject("worker");
        writer.member("pid", u64s(result.worker.pid));
        writer.member("tasks", u64s(result.worker.tasks));
        writer.member("sim_cycles", u64s(result.worker.sim_cycles));
        writer.member("exec_seconds", result.worker.exec_seconds);
        writer.endObject();
    }
    writer.endObject();
    return writer.str();
}

namespace
{

bool
decodeKind(const exp::JsonValue &root, WireTask::Kind *kind,
           std::string *error)
{
    std::string text;
    if (!getString(root, "kind", &text, error))
        return false;
    if (text == "run")
        *kind = WireTask::Kind::Run;
    else if (text == "eval")
        *kind = WireTask::Kind::Eval;
    else
        return fail(error, "unknown task kind '" + text + "'");
    return true;
}

bool
parseTagged(const std::string &payload, const char *expected_tag,
            exp::JsonValue *root, std::string *error)
{
    if (!exp::parseJson(payload, root, error))
        return false;
    std::string tag;
    if (!getString(*root, "padc", &tag, error))
        return false;
    if (tag != expected_tag)
        return fail(error, "unexpected payload tag '" + tag + "'");
    return true;
}

} // namespace

bool
decodeTask(const std::string &payload, WireTask *out, std::string *error)
{
    exp::JsonValue root;
    if (!parseTagged(payload, kTaskTag, &root, error))
        return false;
    const exp::JsonValue *point = nullptr;
    if (!decodeKind(root, &out->kind, error) ||
        !getU64(root, "index", &out->index, error) ||
        !u64Field(root, "attempt", &out->attempt, error) ||
        !getObject(root, "point", &point, error) ||
        !decodePoint(*point, &out->point, error)) {
        return false;
    }
    if (out->kind == WireTask::Kind::Eval) {
        const exp::JsonValue *alone_config = nullptr;
        const exp::JsonValue *alone_options = nullptr;
        if (!getObject(root, "alone_config", &alone_config, error) ||
            !decodeConfig(*alone_config, &out->alone_base, error) ||
            !getObject(root, "alone_options", &alone_options, error) ||
            !decodeOptions(*alone_options, &out->alone_options, error)) {
            return false;
        }
    }
    return true;
}

bool
decodeResult(const std::string &payload, WireResult *out,
             std::string *error)
{
    exp::JsonValue root;
    if (!exp::parseJson(payload, &root, error))
        return false;
    std::string tag;
    if (!getString(root, "padc", &tag, error))
        return false;
    if (tag == kHelloTag) {
        out->hello = true;
        return true;
    }
    if (tag != kResultTag)
        return fail(error, "unexpected payload tag '" + tag + "'");
    out->hello = false;
    if (!decodeKind(root, &out->kind, error) ||
        !getU64(root, "index", &out->index, error))
        return false;
    // Optional worker self-report: absent from old workers, and a
    // malformed one is dropped rather than failing the whole result
    // (it is advisory observability data, not the payload).
    out->worker = WireWorkerReport{};
    if (const exp::JsonValue *worker = root.find("worker");
        worker != nullptr && worker->isObject()) {
        WireWorkerReport report;
        std::string ignored;
        if (getU64(*worker, "pid", &report.pid, &ignored) &&
            getU64(*worker, "tasks", &report.tasks, &ignored) &&
            getU64(*worker, "sim_cycles", &report.sim_cycles,
                   &ignored) &&
            getDouble(*worker, "exec_seconds", &report.exec_seconds,
                      &ignored)) {
            report.present = true;
            out->worker = report;
        }
    }
    const exp::JsonValue *metrics = nullptr;
    if (out->kind == WireTask::Kind::Eval) {
        const exp::JsonValue *summary = nullptr;
        return decodeOutcome(root, &out->eval.outcome, error) &&
               getObject(root, "metrics", &metrics, error) &&
               decodeMetrics(*metrics, &out->eval.value.metrics,
                             error) &&
               getObject(root, "summary", &summary, error) &&
               decodeSummary(*summary, &out->eval.value.summary, error);
    }
    return decodeOutcome(root, &out->run.outcome, error) &&
           getObject(root, "metrics", &metrics, error) &&
           decodeMetrics(*metrics, &out->run.value, error);
}

// --- fault injection --------------------------------------------------

FaultSpec
parseFaultSpec(const char *text)
{
    FaultSpec spec;
    if (text == nullptr || *text == '\0')
        return spec;

    const auto warn = [&] {
        std::fprintf(stderr,
                     "padc: warning: invalid PADC_FAULT_INJECT=\"%s\" "
                     "(want crash:<every>, hang:<every>, "
                     "exit:<code>:<every>, or poison:<index>); faults "
                     "disabled\n",
                     text);
        return FaultSpec{};
    };

    const std::string value = text;
    const std::size_t colon = value.find(':');
    if (colon == std::string::npos)
        return warn();
    const std::string mode = value.substr(0, colon);
    const std::string rest = value.substr(colon + 1);

    std::uint64_t number = 0;
    if (mode == "crash" || mode == "hang") {
        if (!parseU64Strict(rest.c_str(), &number) || number == 0)
            return warn();
        spec.mode = mode == "crash" ? FaultSpec::Mode::Crash
                                    : FaultSpec::Mode::Hang;
        spec.every = number;
        return spec;
    }
    if (mode == "poison") {
        if (!parseU64Strict(rest.c_str(), &number))
            return warn();
        spec.mode = FaultSpec::Mode::Poison;
        spec.poison_index = number;
        return spec;
    }
    if (mode == "exit") {
        const std::size_t second = rest.find(':');
        if (second == std::string::npos)
            return warn();
        std::uint64_t code = 0;
        if (!parseU64Strict(rest.substr(0, second).c_str(), &code) ||
            code > 255 ||
            !parseU64Strict(rest.substr(second + 1).c_str(), &number) ||
            number == 0) {
            return warn();
        }
        spec.mode = FaultSpec::Mode::Exit;
        spec.exit_code = static_cast<int>(code);
        spec.every = number;
        return spec;
    }
    return warn();
}

FaultSpec
envFaultSpec()
{
    return parseFaultSpec(std::getenv("PADC_FAULT_INJECT"));
}

bool
faultFires(const FaultSpec &spec, std::uint64_t index,
           std::uint32_t attempt)
{
    switch (spec.mode) {
      case FaultSpec::Mode::None:
        return false;
      case FaultSpec::Mode::Crash:
      case FaultSpec::Mode::Hang:
      case FaultSpec::Mode::Exit:
        // Attempt 0 only: the retry always succeeds, keeping the merged
        // sweep bit-identical to a fault-free run.
        return attempt == 0 && (index + 1) % spec.every == 0;
      case FaultSpec::Mode::Poison:
        // Every attempt: this is the schedule that exercises quarantine.
        return index == spec.poison_index;
    }
    return false;
}

} // namespace padc::sim::wire
