/**
 * @file
 * Experiment harness shared by the benchmark binaries and examples.
 *
 * Provides the paper's canonical policy setups (no-pref, demand-first,
 * demand-prefetch-equal, prefetch-first, APS-only, PADC, PADC+rank and
 * the no-urgency ablations), single-mix runners, an alone-IPC cache for
 * WS/HS/UF computation, and small fixed-width table printing helpers so
 * every bench prints the same row format the paper reports.
 */

#ifndef PADC_SIM_EXPERIMENT_HH
#define PADC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"
#include "workload/mixes.hh"

namespace padc::sim
{

class SweepJournal;

/** The policy columns appearing in the paper's figures. */
enum class PolicySetup
{
    NoPref,          ///< prefetcher disabled
    DemandFirst,     ///< rigid demand-over-prefetch (baseline)
    DemandPrefEqual, ///< rigid FR-FCFS, prefetch-blind
    PrefetchFirst,   ///< rigid prefetch-over-demand (footnote 2)
    ApsOnly,         ///< adaptive scheduling, no dropping
    Padc,            ///< APS + APD
    PadcRank,        ///< PADC with the Section 6.5 ranking rule
    ApsNoUrgent,     ///< APS without the urgency level (Table 8)
    PadcNoUrgent,    ///< PADC without the urgency level (Table 8)
    ApdOnly,         ///< demand-first scheduling + APD (Section 6.12)
};

/** Figure-style label, e.g. "aps-apd (PADC)". */
std::string policyLabel(PolicySetup setup);

/** Apply a policy setup to a base system configuration. */
SystemConfig applyPolicy(SystemConfig base, PolicySetup setup);

/** Common run options. */
struct RunOptions
{
    std::uint64_t instructions = 200000; ///< per-core retire target
    std::uint64_t warmup = 50000;        ///< per-core warm-up instructions
    std::uint64_t max_cycles = 30000000; ///< safety cap
    std::uint64_t mix_seed = 0;          ///< per-mix seed salt
};

/**
 * Run one multiprogrammed mix under @p config.
 * Builds one SyntheticTrace per core from the named profiles.
 *
 * @param status when non-null, receives the RunStatus of the underlying
 *        System::run, so callers can distinguish converged results from
 *        runs truncated at the max_cycles cap.
 * @throws std::invalid_argument when @p config fails validation or the
 *         mix size does not match num_cores.
 */
RunMetrics runMix(const SystemConfig &config, const workload::Mix &mix,
                  const RunOptions &options, RunStatus *status = nullptr);

/**
 * Memoizing provider of alone-run IPCs.
 *
 * Per the paper's methodology, IPC_alone is measured with the
 * demand-first policy on the same shared-resource configuration, with
 * the application on core 0 and the remaining cores idle.
 *
 * Thread-safe: concurrent ipcAlone calls are allowed (each alone-run is
 * deterministic, so a racing re-computation of the same key yields the
 * same value; the first insert wins). Use prewarm() to fill the cache in
 * parallel up front so sweep jobs only ever hit.
 */
class AloneIpcCache
{
  public:
    /**
     * @param base the CMP configuration the together-runs use
     * @param options same run options as the together-runs
     */
    AloneIpcCache(SystemConfig base, RunOptions options);

    /** Alone IPC of @p profile_name running on core @p core of the CMP. */
    double ipcAlone(const std::string &profile_name, std::uint32_t core,
                    std::uint64_t mix_seed);

    /**
     * Compute the alone IPC of every (profile, core) slot of the given
     * mixes across @p runner, where mix i uses seed base_seed + i (the
     * convention every bench uses). Deterministic regardless of the
     * runner's thread count.
     */
    void prewarm(const std::vector<workload::Mix> &mixes,
                 std::uint64_t base_seed, ParallelExperimentRunner &runner);

    /** The CMP configuration the alone-runs execute under. */
    const SystemConfig &base() const { return base_; }

    /** The run options the alone-runs execute under. */
    const RunOptions &options() const { return options_; }

  private:
    double computeAlone(const std::string &profile_name,
                        std::uint32_t core, std::uint64_t mix_seed) const;

    SystemConfig base_;
    RunOptions options_;
    std::mutex mutex_;
    std::map<std::string, double> cache_;
};

/** Together-run + WS/HS/UF against alone-runs, in one call. */
struct MixEvaluation
{
    RunMetrics metrics;
    MultiCoreMetrics summary;
};

MixEvaluation evaluateMix(const SystemConfig &config,
                          const workload::Mix &mix,
                          const RunOptions &options, AloneIpcCache &alone,
                          RunStatus *status = nullptr);

// --- parallel sweeps --------------------------------------------------

/** One fully specified point of an experiment sweep. */
struct SweepPoint
{
    SystemConfig config;  ///< policy already applied
    workload::Mix mix;
    RunOptions options;   ///< carries the per-point seed
};

/** Short human-readable identification of a sweep point. */
std::string describePoint(const SweepPoint &point);

/**
 * Per-point execution status. A sweep never aborts because one point
 * misbehaved: every point carries its own outcome.
 */
enum class PointStatus : std::uint8_t
{
    Ok,        ///< converged; the value is a full result
    Truncated, ///< hit the max_cycles cap; the value holds partial stats
    Failed,    ///< threw (bad config, ...); the value is default-empty
};

/** "ok" / "truncated" / "failed". */
const char *toString(PointStatus status);

/** Outcome + diagnostic of one executed sweep point. */
struct PointOutcome
{
    PointStatus status = PointStatus::Ok;
    std::string detail; ///< why, for Truncated/Failed; empty for Ok

    /**
     * Executions this point took: 1 for a normal run, >1 when the
     * process pool retried it after worker deaths, 0 when it never ran
     * in this process (journal replay, or interrupted before dispatch).
     * Not persisted in the journal (it describes this run, not the
     * result).
     */
    std::uint32_t attempts = 1;

    /**
     * Diagnostic of the last *failed* attempt when attempts were
     * retried (e.g. "killed by signal 9 (Killed)"); distinguishes
     * "failed once, succeeded on retry" from clean first-try results.
     */
    std::string last_error;

    bool ok() const { return status == PointStatus::Ok; }
};

/**
 * A per-point sweep result: the computed value plus the outcome that
 * says how far it can be trusted. Failed points carry a
 * default-constructed value; Truncated points carry the partial
 * (frozen-at-cap) metrics.
 */
template <typename T>
struct Result
{
    T value{};
    PointOutcome outcome;

    bool ok() const { return outcome.ok(); }
};

/**
 * Evaluate every point across @p runner; results are ordered like
 * @p points. The alone cache is prewarmed for every distinct (mix,
 * seed) slot first, so the sweep jobs themselves never miss.
 *
 * Fault tolerance: a point that throws or fails to converge records a
 * Failed/Truncated outcome with a diagnostic; the remaining points
 * still run. Nothing is thrown for per-point failures.
 *
 * @param journal when non-null, points whose key is already recorded
 *        replay the stored result (bit-identical) instead of running,
 *        and freshly computed points are appended for future resumes.
 */
std::vector<Result<MixEvaluation>>
evaluateSweep(const std::vector<SweepPoint> &points, AloneIpcCache &alone,
              ParallelExperimentRunner &runner,
              SweepJournal *journal = nullptr);

/**
 * Run (no WS/HS/UF summary, no alone-runs needed) every point across
 * @p runner; results ordered like @p points. Same fault-tolerance and
 * journal contract as evaluateSweep.
 */
std::vector<Result<RunMetrics>>
runSweep(const std::vector<SweepPoint> &points,
         ParallelExperimentRunner &runner, SweepJournal *journal = nullptr);

// --- table printing helpers -------------------------------------------

/** Print a left-aligned label cell of fixed width. */
void printLabel(const std::string &text, int width = 22);

/** Print one right-aligned numeric cell. */
void printCell(double value, int width = 12, int precision = 3);

/** Print a header row from column names. */
void printHeader(const std::string &label,
                 const std::vector<std::string> &columns, int label_width = 22,
                 int col_width = 12);

/** End the current row. */
void endRow();

} // namespace padc::sim

#endif // PADC_SIM_EXPERIMENT_HH
