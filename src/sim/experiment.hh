/**
 * @file
 * Experiment harness shared by the benchmark binaries and examples.
 *
 * Provides the paper's canonical policy setups (no-pref, demand-first,
 * demand-prefetch-equal, prefetch-first, APS-only, PADC, PADC+rank and
 * the no-urgency ablations), single-mix runners, an alone-IPC cache for
 * WS/HS/UF computation, and small fixed-width table printing helpers so
 * every bench prints the same row format the paper reports.
 */

#ifndef PADC_SIM_EXPERIMENT_HH
#define PADC_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/parallel.hh"
#include "sim/system.hh"
#include "workload/mixes.hh"

namespace padc::sim
{

/** The policy columns appearing in the paper's figures. */
enum class PolicySetup
{
    NoPref,          ///< prefetcher disabled
    DemandFirst,     ///< rigid demand-over-prefetch (baseline)
    DemandPrefEqual, ///< rigid FR-FCFS, prefetch-blind
    PrefetchFirst,   ///< rigid prefetch-over-demand (footnote 2)
    ApsOnly,         ///< adaptive scheduling, no dropping
    Padc,            ///< APS + APD
    PadcRank,        ///< PADC with the Section 6.5 ranking rule
    ApsNoUrgent,     ///< APS without the urgency level (Table 8)
    PadcNoUrgent,    ///< PADC without the urgency level (Table 8)
    ApdOnly,         ///< demand-first scheduling + APD (Section 6.12)
};

/** Figure-style label, e.g. "aps-apd (PADC)". */
std::string policyLabel(PolicySetup setup);

/** Apply a policy setup to a base system configuration. */
SystemConfig applyPolicy(SystemConfig base, PolicySetup setup);

/** Common run options. */
struct RunOptions
{
    std::uint64_t instructions = 200000; ///< per-core retire target
    std::uint64_t warmup = 50000;        ///< per-core warm-up instructions
    std::uint64_t max_cycles = 30000000; ///< safety cap
    std::uint64_t mix_seed = 0;          ///< per-mix seed salt
};

/**
 * Run one multiprogrammed mix under @p config.
 * Builds one SyntheticTrace per core from the named profiles.
 */
RunMetrics runMix(const SystemConfig &config, const workload::Mix &mix,
                  const RunOptions &options);

/**
 * Memoizing provider of alone-run IPCs.
 *
 * Per the paper's methodology, IPC_alone is measured with the
 * demand-first policy on the same shared-resource configuration, with
 * the application on core 0 and the remaining cores idle.
 *
 * Thread-safe: concurrent ipcAlone calls are allowed (each alone-run is
 * deterministic, so a racing re-computation of the same key yields the
 * same value; the first insert wins). Use prewarm() to fill the cache in
 * parallel up front so sweep jobs only ever hit.
 */
class AloneIpcCache
{
  public:
    /**
     * @param base the CMP configuration the together-runs use
     * @param options same run options as the together-runs
     */
    AloneIpcCache(SystemConfig base, RunOptions options);

    /** Alone IPC of @p profile_name running on core @p core of the CMP. */
    double ipcAlone(const std::string &profile_name, std::uint32_t core,
                    std::uint64_t mix_seed);

    /**
     * Compute the alone IPC of every (profile, core) slot of the given
     * mixes across @p runner, where mix i uses seed base_seed + i (the
     * convention every bench uses). Deterministic regardless of the
     * runner's thread count.
     */
    void prewarm(const std::vector<workload::Mix> &mixes,
                 std::uint64_t base_seed, ParallelExperimentRunner &runner);

  private:
    double computeAlone(const std::string &profile_name,
                        std::uint32_t core, std::uint64_t mix_seed) const;

    SystemConfig base_;
    RunOptions options_;
    std::mutex mutex_;
    std::map<std::string, double> cache_;
};

/** Together-run + WS/HS/UF against alone-runs, in one call. */
struct MixEvaluation
{
    RunMetrics metrics;
    MultiCoreMetrics summary;
};

MixEvaluation evaluateMix(const SystemConfig &config,
                          const workload::Mix &mix,
                          const RunOptions &options, AloneIpcCache &alone);

// --- parallel sweeps --------------------------------------------------

/** One fully specified point of an experiment sweep. */
struct SweepPoint
{
    SystemConfig config;  ///< policy already applied
    workload::Mix mix;
    RunOptions options;   ///< carries the per-point seed
};

/**
 * Evaluate every point across @p runner; results are ordered like
 * @p points. The alone cache is prewarmed for every distinct (mix,
 * seed) slot first, so the sweep jobs themselves never miss.
 */
std::vector<MixEvaluation>
evaluateSweep(const std::vector<SweepPoint> &points, AloneIpcCache &alone,
              ParallelExperimentRunner &runner);

/**
 * Run (no WS/HS/UF summary, no alone-runs needed) every point across
 * @p runner; results ordered like @p points.
 */
std::vector<RunMetrics> runSweep(const std::vector<SweepPoint> &points,
                                 ParallelExperimentRunner &runner);

// --- table printing helpers -------------------------------------------

/** Print a left-aligned label cell of fixed width. */
void printLabel(const std::string &text, int width = 22);

/** Print one right-aligned numeric cell. */
void printCell(double value, int width = 12, int precision = 3);

/** Print a header row from column names. */
void printHeader(const std::string &label,
                 const std::vector<std::string> &columns, int label_width = 22,
                 int col_width = 12);

/** End the current row. */
void endRow();

} // namespace padc::sim

#endif // PADC_SIM_EXPERIMENT_HH
