/**
 * @file
 * Crash-isolated process-sharded sweep executor.
 *
 * A ProcessPool runs sweep points in `padc worker` subprocesses so that
 * a point that crashes the simulator (or is killed by the OOM killer,
 * or wedges) takes down one worker, not the whole sweep. The supervisor
 * forks+execs /proc/self/exe with a `worker` argv, talks to each worker
 * over a pair of pipes (tasks down fd 3, results up fd 4; see
 * sim/wire.hh for the frame format), and merges results back in point
 * order, so a pool sweep returns exactly what the in-thread
 * sim::runSweep / sim::evaluateSweep contract promises.
 *
 * Robustness model:
 *  - Worker death (crash, signal, nonzero exit, heartbeat timeout) is
 *    detected via pipe EOF / poll(2); the in-flight point is retried on
 *    another worker with exponential backoff, up to a bounded number of
 *    attempts.
 *  - A point that keeps killing workers is quarantined: it completes as
 *    PointStatus::Failed with the last worker's exit diagnostics in the
 *    outcome, and the sweep carries on. Quarantined points are NOT
 *    journaled, so a resumed run gets to try them again.
 *  - Exactly-once journaling: only the supervisor appends to the
 *    SweepJournal, and only when a worker's result frame has fully
 *    arrived. A supervisor killed mid-sweep therefore re-runs only the
 *    points whose results it had not yet recorded.
 *  - Graceful interrupt (see sim/interrupt.hh): busy workers are killed
 *    immediately (never waited on -- one may be wedged), idle workers
 *    are shut down via pipe EOF, and unfinished points complete as
 *    Failed "interrupted" without being journaled.
 *
 * Workers are plain child processes running the same binary, so the
 * merged results are bit-identical to an in-thread run: the wire format
 * round-trips doubles exactly, and each point's simulation is
 * deterministic given its config.
 */

#ifndef PADC_SIM_PROCPOOL_HH
#define PADC_SIM_PROCPOOL_HH

#include <signal.h>
#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "sim/experiment.hh"
#include "sim/wire.hh"

namespace padc::sim
{

class SweepJournal;

/** The fds a worker inherits its pipe ends on (after dup2 in the child). */
inline constexpr int kWorkerTaskFd = 3;   ///< worker reads tasks here
inline constexpr int kWorkerResultFd = 4; ///< worker writes results here

/** Tunables of the supervisor's retry/backoff/timeout machinery. */
struct ProcPoolConfig
{
    unsigned workers = 0; ///< subprocess count; 0 disables the pool

    /** Max dispatches per point before quarantine (PADC_WORKER_ATTEMPTS). */
    std::uint32_t max_attempts = 3;

    /** Per-task heartbeat: SIGKILL a worker whose task exceeds this
     * (PADC_WORKER_TIMEOUT_MS). Also bounds a respawned worker's
     * handshake. */
    std::uint64_t heartbeat_timeout_ms = 120000;

    /** First retry delay (PADC_RETRY_BACKOFF_MS); doubles per retry. */
    std::uint64_t backoff_initial_ms = 100;

    /** Retry delay ceiling. */
    std::uint64_t backoff_max_ms = 5000;

    /**
     * @p workers plus the PADC_WORKER_ATTEMPTS / PADC_WORKER_TIMEOUT_MS /
     * PADC_RETRY_BACKOFF_MS environment overrides (strictly parsed;
     * malformed values warn on stderr and keep the default).
     */
    static ProcPoolConfig fromEnv(unsigned workers);
};

/**
 * Supervisor of a fixed-size pool of `padc worker` subprocesses. See
 * the file comment for the robustness model.
 *
 * Not thread-safe: one sweep at a time, from one thread.
 */
class ProcessPool
{
  public:
    /** Counters of one pool's lifetime, surfaced for tests and logs. */
    struct Stats
    {
        std::uint64_t executed = 0;    ///< results computed by workers
        std::uint64_t replayed = 0;    ///< points served from the journal
        std::uint64_t retries = 0;     ///< re-dispatches after a death
        std::uint64_t respawns = 0;    ///< workers respawned after a death
        std::uint64_t quarantined = 0; ///< points that exhausted attempts
        bool interrupted = false;      ///< a sweep was cut short
    };

    /** Per-slot lifetime accounting inside a PoolProfile window. */
    struct WorkerSlotProfile
    {
        std::int64_t pid = -1;        ///< last pid seen in this slot
        std::uint64_t tasks = 0;      ///< results received
        std::uint64_t dispatches = 0; ///< tasks handed out (>= tasks)
        std::uint64_t kills = 0;      ///< heartbeat SIGKILLs
        std::uint64_t sim_cycles = 0; ///< worker-reported, summed
        double exec_seconds = 0.0;    ///< worker-reported busy time
    };

    /**
     * Observability counters accumulated since the last drain — the
     * additive per-worker members of the BENCH JSON `profile` block.
     * Unlike Stats (pool lifetime, monotonic), a profile window is
     * drained per experiment so each BENCH document describes only its
     * own sweep. sim_cycles / exec_seconds come from the workers' wire
     * self-reports (WireWorkerReport) and are zero against pre-
     * extension workers.
     */
    struct PoolProfile
    {
        std::uint64_t tasks = 0;
        std::uint64_t replayed = 0;
        std::uint64_t retries = 0;
        std::uint64_t respawns = 0;
        std::uint64_t quarantined = 0;
        std::uint64_t timeout_kills = 0;
        std::uint64_t sim_cycles = 0;
        double exec_seconds = 0.0;
        /** Dispatch->result round trip, ms (heartbeat latency). */
        Histogram task_ms{250, 10};
        std::vector<WorkerSlotProfile> workers; ///< by slot
    };

    /**
     * @param worker_argv argv (argv[0] = executable path) that execs
     *        into worker mode, e.g. {"/proc/self/exe", "worker", ...}
     * @param config pool size and retry tunables
     */
    ProcessPool(std::vector<std::string> worker_argv, ProcPoolConfig config);

    ~ProcessPool();

    ProcessPool(const ProcessPool &) = delete;
    ProcessPool &operator=(const ProcessPool &) = delete;

    /**
     * Spawn the workers (first call only) and wait for their hello
     * handshakes.
     * @return true when at least one worker came up; false when the
     *         pool is disabled (workers == 0) or every spawn/exec
     *         failed -- callers then fall back to the in-thread runner.
     */
    bool available();

    /**
     * Respawn workers that died during a previous sweep, so a pool
     * reused across many jobs (the `padc serve` daemon keeps one pool
     * for its whole lifetime) recovers its full width between jobs
     * instead of lazily mid-sweep. Retired slots (exec/handshake
     * failures) stay retired. Spawns the pool on first call.
     * @return available(): true while at least one worker is usable.
     */
    bool refresh();

    /**
     * Pool equivalent of sim::runSweep: results ordered like @p points,
     * every point carries its own outcome, journaled points replay.
     */
    std::vector<Result<RunMetrics>>
    runSweep(const std::vector<SweepPoint> &points,
             SweepJournal *journal = nullptr);

    /**
     * Pool equivalent of sim::evaluateSweep. The alone-run baseline of
     * @p alone is shipped to the workers, which keep their own caches
     * (warm across the tasks each one executes); the supervisor-side
     * cache is not consulted.
     */
    std::vector<Result<MixEvaluation>>
    evaluateSweep(const std::vector<SweepPoint> &points,
                  AloneIpcCache &alone, SweepJournal *journal = nullptr);

    const Stats &stats() const { return stats_; }

    /** Return the profile window accumulated so far and start a new one. */
    PoolProfile drainProfile();

    /**
     * Worker-process entry point: handshake, then serve task frames
     * from @p task_fd until EOF (the supervisor's shutdown signal),
     * writing one result frame per task to @p result_fd.
     * Installs SIG_IGN for SIGINT/SIGTERM (a terminal Ctrl-C hits the
     * whole process group; shutdown is the supervisor's call) and
     * honors PADC_FAULT_INJECT (see sim/wire.hh).
     * @return the worker's exit status (0 on clean EOF shutdown).
     */
    static int workerMain(int task_fd, int result_fd);

  private:
    struct Worker
    {
        pid_t pid = -1;
        int task_fd = -1;     ///< supervisor writes tasks (worker fd 3)
        int result_fd = -1;   ///< supervisor reads results (worker fd 4)
        wire::FrameBuffer frames;
        bool ready = false;   ///< hello received
        bool retired = false; ///< permanently dead (exec/handshake failed)
        bool timed_out = false;       ///< killed by the heartbeat
        std::int64_t task = -1;       ///< in-flight point index; -1 idle
        std::uint64_t deadline_ms = 0; ///< heartbeat / handshake deadline
        std::uint64_t task_started_ms = 0; ///< dispatch time (profile)

        bool alive() const { return pid > 0; }
    };

    template <typename T>
    std::vector<Result<T>>
    execute(const std::vector<SweepPoint> &points, wire::WireTask::Kind kind,
            const SystemConfig &alone_base, const RunOptions &alone_options,
            SweepJournal *journal);

    bool spawnWorker(Worker *worker);
    std::string reapWorker(Worker *worker); ///< waitpid + close; fate text
    void shutdownWorkers();                 ///< EOF + reap every worker
    std::size_t slotOf(const Worker &worker) const;
    WorkerSlotProfile &slotProfile(const Worker &worker);

    std::vector<std::string> argv_;
    ProcPoolConfig config_;
    std::vector<Worker> workers_;
    Stats stats_;
    PoolProfile profile_;
    bool spawned_ = false;
    bool usable_ = false;
    bool sigpipe_saved_ = false;
    struct sigaction old_sigpipe_ = {};
};

} // namespace padc::sim

#endif // PADC_SIM_PROCPOOL_HH
