/**
 * @file
 * Sweep checkpoint/resume journal.
 *
 * Long figure sweeps (hundreds of (policy x mix) points, minutes of
 * wall-clock) die completely when the process is killed halfway. The
 * journal makes them resumable: every completed point is appended to a
 * text file keyed by a 64-bit hash of its full configuration (system
 * config, mix, run options and seeds), and a rerun pointed at the same
 * journal replays recorded points instead of recomputing them.
 *
 * Guarantees:
 *  - Replayed results are bit-identical to recomputed ones: doubles are
 *    stored as their IEEE-754 bit patterns, never via decimal round
 *    trips.
 *  - A journal truncated mid-append (process killed during a write)
 *    loses at most the final partial line; loading tolerates and
 *    discards it, and opening for append first repairs the missing
 *    newline so the next record cannot merge into the torn tail.
 *  - Records are written with ONE write(2) each to an O_APPEND fd, so
 *    concurrent writers -- threads in this process (serialized by a
 *    mutex) or entirely separate processes sharing the journal file --
 *    interleave whole lines only, never interleaved bytes.
 *  - Durability is flush-to-kernel by default (enough to survive the
 *    process being killed); set PADC_JOURNAL_FSYNC=1 to fsync(2) after
 *    every record when the journal must also survive a machine crash.
 *
 * The key hashes every field that influences a point's result. Config
 * fields added in the future must be folded into sweepPointKey();
 * failing to do so risks stale replays across configs that differ only
 * in the new field (the version tag below guards format changes, not
 * key-coverage changes).
 *
 * Benches opt in via the PADC_RESUME environment variable (see
 * envJournal()); the library never touches the filesystem unless asked.
 */

#ifndef PADC_SIM_JOURNAL_HH
#define PADC_SIM_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "sim/experiment.hh"

namespace padc::sim
{

/**
 * Deterministic 64-bit key of one sweep point: FNV-1a over a canonical
 * serialization of the complete SystemConfig, the mix profile names,
 * and the RunOptions (including seeds).
 */
std::uint64_t sweepPointKey(const SweepPoint &point);

/**
 * Append-only journal of completed sweep points; see file comment.
 */
class SweepJournal
{
  public:
    /**
     * Open (creating if absent) the journal at @p path and load every
     * complete, well-formed entry already recorded there.
     * @throws std::runtime_error when the file cannot be created.
     */
    explicit SweepJournal(std::string path);

    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    const std::string &path() const { return path_; }

    /** Entries recovered when the journal was opened. */
    std::size_t loadedEntries() const { return loaded_; }

    /** Lookups served from the journal since it was opened. */
    std::size_t hits() const;

    /**
     * Replay the recorded evaluateSweep result for @p key into @p out.
     * @return true on a hit (out fully populated, bit-identical to the
     *         run that recorded it).
     */
    bool lookup(std::uint64_t key, Result<MixEvaluation> *out);

    /** Replay the recorded runSweep result for @p key. */
    bool lookup(std::uint64_t key, Result<RunMetrics> *out);

    /**
     * True when an evaluateSweep entry for @p key is recorded (used to
     * skip alone-IPC prewarm work for already-completed points; does
     * not count as a hit).
     */
    bool containsEval(std::uint64_t key) const;

    /** Record a completed evaluateSweep point (append + flush). */
    void record(std::uint64_t key, const Result<MixEvaluation> &result);

    /** Record a completed runSweep point (append + flush). */
    void record(std::uint64_t key, const Result<RunMetrics> &result);

  private:
    using EntryKey = std::pair<char, std::uint64_t>; ///< (kind, hash)

    bool lookupLine(char kind, std::uint64_t key, std::string *line);
    void recordLine(char kind, std::uint64_t key, const std::string &body);

    mutable std::mutex mutex_;
    std::string path_;
    std::map<EntryKey, std::string> entries_; ///< payload (line body)
    std::size_t loaded_ = 0;
    std::size_t hits_ = 0;
    int append_fd_ = -1;      ///< O_APPEND; one write(2) per record
    bool fsync_each_ = false; ///< PADC_JOURNAL_FSYNC policy
};

/**
 * The process-wide journal selected by the PADC_RESUME environment
 * variable, opened lazily on first use; nullptr when PADC_RESUME is
 * unset or the journal file cannot be opened (a warning is printed and
 * the sweep proceeds without checkpointing).
 */
SweepJournal *envJournal();

/**
 * Install the journal path envJournal() should use instead of reading
 * PADC_RESUME (the `padc` driver's --resume flag goes through here).
 * Must be called before the first envJournal() use.
 * @return false (and changes nothing) when envJournal() already
 *         resolved its journal.
 */
bool setEnvJournalPath(const std::string &path);

} // namespace padc::sim

#endif // PADC_SIM_JOURNAL_HH
