#include "sim/metrics.hh"

#include <algorithm>
#include <cassert>

#include "common/stats.hh"

namespace padc::sim
{

std::uint64_t
RunMetrics::totalTraffic() const
{
    return trafficDemand() + trafficPrefUseful() + trafficPrefUseless() +
           trafficWriteback();
}

std::uint64_t
RunMetrics::trafficDemand() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.traffic_demand;
    return total;
}

std::uint64_t
RunMetrics::trafficPrefUseful() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.traffic_pref_useful;
    return total;
}

std::uint64_t
RunMetrics::trafficPrefUseless() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.traffic_pref_useless;
    return total;
}

std::uint64_t
RunMetrics::trafficWriteback() const
{
    std::uint64_t total = 0;
    for (const auto &c : cores)
        total += c.traffic_writeback;
    return total;
}

RunMetrics
collectMetrics(const System &system)
{
    RunMetrics run;
    run.class_serviced = system.classServiced();
    const std::uint32_t cores = system.config().num_cores;
    run.cores.resize(cores);

    for (CoreId i = 0; i < cores; ++i) {
        const CoreResult &res = system.result(i);
        // Metrics cover the [warm-up, completion] window; with no
        // warm-up configured, the warm snapshot is all zeros.
        const core::CoreStats &cs = res.core_stats;
        const core::CoreStats &ws = res.warm_core_stats;
        const CoreMemStats &ms = res.mem_stats;
        const CoreMemStats &wm = res.warm_mem_stats;
        CoreMetrics &m = run.cores[i];

        const auto instructions = cs.instructions - ws.instructions;
        const auto cycles = res.done_cycle - res.warm_cycle;
        const auto loads = cs.loads - ws.loads;
        const auto stalls = cs.load_stall_cycles - ws.load_stall_cycles;
        const auto misses = ms.l2_demand_misses - wm.l2_demand_misses;
        const auto demand_fills = ms.demand_fills - wm.demand_fills;
        const auto pref_fills = ms.prefetch_fills - wm.prefetch_fills;
        const auto useful_fills =
            ms.useful_prefetch_fills - wm.useful_prefetch_fills;
        const auto sent = res.pref_sent - res.warm_pref_sent;
        const auto used = res.pref_used - res.warm_pref_used;

        m.instructions = instructions;
        m.cycles = cycles;
        m.ipc = ratio(static_cast<double>(instructions),
                      static_cast<double>(cycles));
        m.mpki = ratio(static_cast<double>(misses) * 1000.0,
                       static_cast<double>(instructions));
        m.spl = ratio(static_cast<double>(stalls),
                      static_cast<double>(loads));
        // Clamp: a prefetch sent before the warm-up boundary can be used
        // after it, so the windowed ratio can slightly exceed 1.
        m.acc = std::min(1.0, ratio(static_cast<double>(used),
                                    static_cast<double>(sent)));
        m.cov = ratio(static_cast<double>(useful_fills),
                      static_cast<double>(demand_fills + useful_fills));
        m.rbh = ratio(
            static_cast<double>(ms.fills_row_hit - wm.fills_row_hit),
            static_cast<double>(ms.fills_total - wm.fills_total));
        m.rbhu = ratio(static_cast<double>(ms.useful_req_row_hits -
                                           wm.useful_req_row_hits),
                       static_cast<double>(ms.useful_req_fills -
                                           wm.useful_req_fills));

        m.traffic_demand = demand_fills;
        m.traffic_pref_useful = useful_fills;
        // A prefetch filled before warm-up can be used after it, so the
        // windowed useful count can exceed the windowed fill count.
        m.traffic_pref_useless =
            pref_fills > useful_fills ? pref_fills - useful_fills : 0;
        m.traffic_writeback = ms.writebacks - wm.writebacks;
    }
    return run;
}

MultiCoreMetrics
multiCoreMetrics(const RunMetrics &together,
                 const std::vector<double> &ipc_alone)
{
    assert(together.cores.size() == ipc_alone.size());
    MultiCoreMetrics m;
    double inv_sum = 0.0;
    double min_is = 0.0;
    double max_is = 0.0;
    for (std::size_t i = 0; i < ipc_alone.size(); ++i) {
        const double is = ratio(together.cores[i].ipc, ipc_alone[i]);
        m.speedups.push_back(is);
        m.ws += is;
        inv_sum += is > 0.0 ? 1.0 / is : 0.0;
        if (i == 0) {
            min_is = is;
            max_is = is;
        } else {
            min_is = std::min(min_is, is);
            max_is = std::max(max_is, is);
        }
    }
    m.hs = inv_sum > 0.0
               ? static_cast<double>(ipc_alone.size()) / inv_sum
               : 0.0;
    m.uf = min_is > 0.0 ? max_is / min_is : 0.0;
    return m;
}

} // namespace padc::sim
