#include "sim/procpool.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <type_traits>
#include <utility>

#include "exp/json.hh"
#include "obs/metrics.hh"
#include "obs/monitor.hh"
#include "sim/interrupt.hh"
#include "sim/journal.hh"

namespace padc::sim
{

namespace
{

/** Monotonic milliseconds for deadlines and backoff gates. */
std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Strictly parsed unsigned environment override, clamped to
 * [min, max]; malformed values warn and keep the default (the
 * PADC_THREADS convention: never guess).
 */
std::uint64_t
envU64(const char *name, std::uint64_t fallback, std::uint64_t min_value,
       std::uint64_t max_value)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (*env == '\0' || *env == '-' || *env == '+' || end == env ||
        *end != '\0' || errno != 0) {
        std::fprintf(stderr,
                     "padc: warning: invalid %s=\"%s\" (want an "
                     "unsigned integer); using %llu\n",
                     name, env,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    if (parsed < min_value)
        return min_value;
    if (parsed > max_value)
        return max_value;
    return parsed;
}

/** Simulated cycles of one run: the slowest core defines the point. */
std::uint64_t
runCyclesOf(const RunMetrics &metrics)
{
    std::uint64_t cycles = 0;
    for (const CoreMetrics &core : metrics.cores)
        cycles = std::max<std::uint64_t>(cycles, core.cycles);
    return cycles;
}

/** Close both supervisor-side pipe ends of @p worker. */
template <typename W>
void
closeWorkerFds(W *worker)
{
    if (worker->task_fd >= 0) {
        ::close(worker->task_fd);
        worker->task_fd = -1;
    }
    if (worker->result_fd >= 0) {
        ::close(worker->result_fd);
        worker->result_fd = -1;
    }
}

/**
 * Worker-side execution of one point, mirroring the in-thread
 * runPoint() fault-tolerance contract exactly (same Truncated/Failed
 * mapping and detail strings) minus the journaling, which is the
 * supervisor's job.
 */
template <typename T, typename Fn>
Result<T>
executePoint(Fn &&fn)
{
    Result<T> result;
    try {
        RunStatus status;
        result.value = fn(&status);
        if (!status.converged()) {
            result.outcome.status = PointStatus::Truncated;
            result.outcome.detail = status.detail();
        }
    } catch (const std::exception &e) {
        result.value = T{};
        result.outcome.status = PointStatus::Failed;
        result.outcome.detail = e.what();
    } catch (...) {
        result.value = T{};
        result.outcome.status = PointStatus::Failed;
        result.outcome.detail = "unknown exception";
    }
    return result;
}

/**
 * The worker's alone-run caches, one per distinct (base config,
 * options) pair, warm across every task this worker process executes.
 */
AloneIpcCache &
aloneFor(std::map<std::string, std::unique_ptr<AloneIpcCache>> &caches,
         const wire::WireTask &task)
{
    exp::JsonWriter writer;
    writer.beginObject();
    SweepPoint key_point;
    key_point.config = task.alone_base;
    key_point.options = task.alone_options;
    wire::encodePoint(writer, "alone", key_point);
    writer.endObject();
    auto &slot = caches[writer.str()];
    if (slot == nullptr) {
        slot = std::make_unique<AloneIpcCache>(task.alone_base,
                                               task.alone_options);
    }
    return *slot;
}

} // namespace

ProcPoolConfig
ProcPoolConfig::fromEnv(unsigned workers)
{
    ProcPoolConfig config;
    config.workers = workers;
    config.max_attempts = static_cast<std::uint32_t>(
        envU64("PADC_WORKER_ATTEMPTS", config.max_attempts, 1, 100));
    config.heartbeat_timeout_ms =
        envU64("PADC_WORKER_TIMEOUT_MS", config.heartbeat_timeout_ms, 1,
               24ull * 3600 * 1000);
    config.backoff_initial_ms =
        envU64("PADC_RETRY_BACKOFF_MS", config.backoff_initial_ms, 0,
               60000);
    if (config.backoff_max_ms < config.backoff_initial_ms)
        config.backoff_max_ms = config.backoff_initial_ms;
    return config;
}

ProcessPool::ProcessPool(std::vector<std::string> worker_argv,
                         ProcPoolConfig config)
    : argv_(std::move(worker_argv)), config_(config)
{
    // A worker dying between our poll() and write() turns the dispatch
    // into SIGPIPE; we want the EPIPE return instead (it feeds the
    // retry path).
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    sigpipe_saved_ = ::sigaction(SIGPIPE, &ignore, &old_sigpipe_) == 0;
}

ProcessPool::~ProcessPool()
{
    shutdownWorkers();
    if (sigpipe_saved_)
        ::sigaction(SIGPIPE, &old_sigpipe_, nullptr);
}

bool
ProcessPool::spawnWorker(Worker *worker)
{
    int task_pipe[2];
    int result_pipe[2];
    // O_CLOEXEC everywhere: a worker must not inherit its siblings'
    // pipe ends, or a sibling's death would never read as EOF. The
    // child re-duplicates its own two ends below, which clears the
    // flag on the copies that survive exec.
    if (::pipe2(task_pipe, O_CLOEXEC) != 0)
        return false;
    if (::pipe2(result_pipe, O_CLOEXEC) != 0) {
        ::close(task_pipe[0]);
        ::close(task_pipe[1]);
        return false;
    }

    std::vector<char *> argv;
    argv.reserve(argv_.size() + 1);
    for (const std::string &arg : argv_)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(task_pipe[0]);
        ::close(task_pipe[1]);
        ::close(result_pipe[0]);
        ::close(result_pipe[1]);
        return false;
    }
    if (pid == 0) {
        // Child: the parent may be running sharedRunner threads holding
        // arbitrary locks, so only async-signal-safe calls are legal
        // here until execv. Stage both ends above the target fds first
        // so one dup2 cannot clobber the other's source.
        const int task_in =
            ::fcntl(task_pipe[0], F_DUPFD, kWorkerResultFd + 1);
        const int result_out =
            ::fcntl(result_pipe[1], F_DUPFD, kWorkerResultFd + 1);
        if (task_in < 0 || result_out < 0 ||
            ::dup2(task_in, kWorkerTaskFd) < 0 ||
            ::dup2(result_out, kWorkerResultFd) < 0)
            ::_exit(127);
        ::close(task_in);
        ::close(result_out);
        ::execv(argv[0], argv.data());
        ::_exit(127); // exec failed; reads as "exited with status 127"
    }

    ::close(task_pipe[0]);
    ::close(result_pipe[1]);
    worker->pid = pid;
    worker->task_fd = task_pipe[1];
    worker->result_fd = result_pipe[0];
    worker->frames = wire::FrameBuffer();
    worker->ready = false;
    worker->timed_out = false;
    worker->task = -1;
    worker->deadline_ms = nowMs() + config_.heartbeat_timeout_ms;
    slotProfile(*worker).pid = pid;
    if (obs::FleetMonitor *monitor = obs::activeMonitor())
        monitor->workerSpawned(slotOf(*worker), pid);
    return true;
}

std::size_t
ProcessPool::slotOf(const Worker &worker) const
{
    return static_cast<std::size_t>(&worker - workers_.data());
}

ProcessPool::WorkerSlotProfile &
ProcessPool::slotProfile(const Worker &worker)
{
    const std::size_t slot = slotOf(worker);
    if (profile_.workers.size() <= slot)
        profile_.workers.resize(slot + 1);
    return profile_.workers[slot];
}

ProcessPool::PoolProfile
ProcessPool::drainProfile()
{
    PoolProfile drained = std::move(profile_);
    profile_ = PoolProfile{};
    // Keep the live pids visible in the fresh window so a sweep that
    // replays everything still reports its idle workers.
    profile_.workers.resize(workers_.size());
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
        profile_.workers[slot].pid =
            workers_[slot].alive() ? workers_[slot].pid : -1;
    }
    return drained;
}

std::string
ProcessPool::reapWorker(Worker *worker)
{
    int status = 0;
    pid_t rc;
    do {
        rc = ::waitpid(worker->pid, &status, 0);
    } while (rc < 0 && errno == EINTR);

    const pid_t pid = worker->pid;
    std::string fate;
    if (worker->timed_out) {
        fate = "timed out after " +
               std::to_string(config_.heartbeat_timeout_ms) +
               "ms (killed)";
    } else if (rc == worker->pid && WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char *name = ::strsignal(sig);
        fate = "killed by signal " + std::to_string(sig) + " (" +
               (name != nullptr ? name : "unknown") + ")";
    } else if (rc == worker->pid && WIFEXITED(status)) {
        fate = "exited with status " +
               std::to_string(WEXITSTATUS(status));
    } else {
        fate = "disappeared";
    }
    closeWorkerFds(worker);
    worker->pid = -1;
    worker->ready = false;
    worker->timed_out = false;
    if (obs::FleetMonitor *monitor = obs::activeMonitor())
        monitor->workerExited(slotOf(*worker), pid, fate);
    return fate;
}

void
ProcessPool::shutdownWorkers()
{
    // Closing the task pipe is the shutdown signal; workers exit their
    // readFrame loop on the EOF.
    for (Worker &worker : workers_) {
        if (worker.alive() && worker.task_fd >= 0) {
            ::close(worker.task_fd);
            worker.task_fd = -1;
        }
    }
    const std::uint64_t deadline = nowMs() + 2000;
    bool remaining = true;
    while (remaining && nowMs() < deadline) {
        remaining = false;
        for (Worker &worker : workers_) {
            if (!worker.alive())
                continue;
            int status = 0;
            if (::waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
                closeWorkerFds(&worker);
                worker.pid = -1;
            } else {
                remaining = true;
            }
        }
        if (remaining)
            ::usleep(10 * 1000);
    }
    // Anything still alive is wedged; don't wait on it politely.
    for (Worker &worker : workers_) {
        if (worker.alive()) {
            ::kill(worker.pid, SIGKILL);
            reapWorker(&worker);
        }
    }
}

bool
ProcessPool::available()
{
    if (spawned_)
        return usable_;
    spawned_ = true;
    if (config_.workers == 0 || argv_.empty())
        return false;

    workers_.resize(config_.workers);
    for (Worker &worker : workers_) {
        if (!spawnWorker(&worker))
            worker.retired = true;
    }

    // Wait (bounded) until every worker is ready or dead; one ready
    // worker is enough to run sweeps.
    const std::uint64_t deadline = nowMs() + 10000;
    for (;;) {
        std::vector<struct pollfd> fds;
        std::vector<Worker *> order;
        for (Worker &worker : workers_) {
            if (worker.alive() && !worker.ready) {
                fds.push_back({worker.result_fd, POLLIN, 0});
                order.push_back(&worker);
            }
        }
        if (fds.empty())
            break;
        const std::uint64_t now = nowMs();
        if (now >= deadline) {
            for (Worker *worker : order) {
                ::kill(worker->pid, SIGKILL);
                reapWorker(worker);
                worker->retired = true;
            }
            break;
        }
        const int timeout =
            static_cast<int>(std::min<std::uint64_t>(deadline - now, 100));
        const int rc = ::poll(fds.data(), fds.size(), timeout);
        if (rc < 0 && errno != EINTR)
            break;
        for (std::size_t k = 0; k < fds.size(); ++k) {
            Worker &worker = *order[k];
            if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            char buf[4096];
            const ssize_t m = ::read(worker.result_fd, buf, sizeof(buf));
            if (m > 0) {
                worker.frames.feed(buf, static_cast<std::size_t>(m));
                std::string payload;
                while (worker.frames.next(&payload)) {
                    wire::WireResult result;
                    std::string error;
                    if (wire::decodeResult(payload, &result, &error) &&
                        result.hello) {
                        worker.ready = true;
                        worker.deadline_ms = 0;
                    }
                }
            } else if (m == 0 || errno != EINTR) {
                reapWorker(&worker);
                worker.retired = true; // never came up; don't respawn
            }
        }
    }

    usable_ = false;
    for (const Worker &worker : workers_)
        usable_ = usable_ || worker.ready;
    if (!usable_)
        shutdownWorkers();
    return usable_;
}

bool
ProcessPool::refresh()
{
    if (!spawned_)
        return available();
    if (!usable_)
        return false;
    for (Worker &worker : workers_) {
        if (worker.alive() || worker.retired)
            continue;
        if (spawnWorker(&worker)) {
            ++stats_.respawns;
            ++profile_.respawns;
        } else {
            worker.retired = true;
        }
    }
    // A freshly spawned worker completes its hello handshake inside the
    // next sweep's event loop (bounded by its handshake deadline), so
    // there is nothing to block on here.
    return true;
}

template <typename T>
std::vector<Result<T>>
ProcessPool::execute(const std::vector<SweepPoint> &points,
                     wire::WireTask::Kind kind,
                     const SystemConfig &alone_base,
                     const RunOptions &alone_options, SweepJournal *journal)
{
    const std::size_t n = points.size();
    std::vector<Result<T>> results(n);
    if (n == 0)
        return results;

    enum class PState : std::uint8_t { Pending, InFlight, Done };
    struct PointState
    {
        PState state = PState::Pending;
        std::uint32_t attempts = 0;  ///< dispatches so far
        std::uint64_t ready_ms = 0;  ///< backoff gate
        std::string last_error;      ///< fate of the last failed attempt
    };
    std::vector<PointState> state(n);
    std::vector<std::uint64_t> keys(n, 0);
    std::size_t done = 0;

    // Exactly-once resume: replay journaled points up front. Nothing
    // below journals anything except a fully received worker result.
    for (std::size_t i = 0; i < n; ++i) {
        if (journal == nullptr)
            continue;
        keys[i] = sweepPointKey(points[i]);
        if (journal->lookup(keys[i], &results[i])) {
            results[i].outcome.attempts = 0; // never ran in this process
            state[i].state = PState::Done;
            ++done;
            ++stats_.replayed;
            ++profile_.replayed;
            if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
                monitor->pointFinished(
                    i, toString(results[i].outcome.status), 0,
                    results[i].outcome.detail);
            }
        }
    }

    auto finishFailed = [&](std::size_t i, const std::string &detail) {
        results[i].value = T{};
        results[i].outcome.status = PointStatus::Failed;
        results[i].outcome.detail = detail;
        results[i].outcome.attempts = state[i].attempts;
        results[i].outcome.last_error = state[i].last_error;
        state[i].state = PState::Done;
        ++done;
    };

    // A worker died (crash, exit, heartbeat kill, malformed frame). Its
    // in-flight point backs off and retries, or quarantines once its
    // attempt budget is spent. Quarantined points are NOT journaled, so
    // a resume retries them.
    auto onDeath = [&](Worker &worker, const std::string &fate) {
        if (worker.task < 0)
            return;
        const auto i = static_cast<std::size_t>(worker.task);
        worker.task = -1;
        state[i].last_error = fate;
        if (state[i].attempts >= config_.max_attempts) {
            ++stats_.quarantined;
            ++profile_.quarantined;
            finishFailed(i, "quarantined after " +
                                std::to_string(state[i].attempts) +
                                " attempts; last worker " + fate);
            if (obs::FleetMonitor *monitor = obs::activeMonitor())
                monitor->pointQuarantined(i, -1, fate);
            return;
        }
        std::uint64_t delay = config_.backoff_initial_ms;
        for (std::uint32_t k = 1;
             k < state[i].attempts && delay < config_.backoff_max_ms; ++k)
            delay *= 2;
        delay = std::min(delay, config_.backoff_max_ms);
        state[i].state = PState::Pending;
        state[i].ready_ms = nowMs() + delay;
        ++stats_.retries;
        ++profile_.retries;
        if (obs::FleetMonitor *monitor = obs::activeMonitor())
            monitor->pointRetried(i, state[i].attempts, -1, fate);
    };

    // Protocol violations are handled like deaths: the worker cannot be
    // trusted any more, so kill it and let the retry machinery take over.
    auto killForProtocol = [&](Worker &worker, const std::string &why) {
        ::kill(worker.pid, SIGKILL);
        const std::string fate = reapWorker(&worker);
        onDeath(worker, why + " (" + fate + ")");
    };

    auto handleFrame = [&](Worker &worker, const std::string &payload) {
        wire::WireResult result;
        std::string error;
        if (!wire::decodeResult(payload, &result, &error)) {
            killForProtocol(worker, "sent a malformed result: " + error);
            return;
        }
        if (result.hello) { // respawned worker's handshake
            worker.ready = true;
            worker.deadline_ms = 0;
            return;
        }
        if (worker.task < 0 ||
            result.index != static_cast<std::uint64_t>(worker.task)) {
            killForProtocol(worker, "sent a result for the wrong point");
            return;
        }
        const auto i = static_cast<std::size_t>(worker.task);
        worker.task = -1;
        worker.deadline_ms = 0;

        // Profile window: round-trip latency, per-slot credit, and the
        // worker's optional self-report (per-task deltas; see wire.hh).
        const std::uint64_t latency_ms =
            worker.task_started_ms > 0 ? nowMs() - worker.task_started_ms
                                       : 0;
        profile_.task_ms.sample(latency_ms);
        ++profile_.tasks;
        WorkerSlotProfile &slot = slotProfile(worker);
        ++slot.tasks;
        slot.pid = worker.pid;
        if (result.worker.present) {
            slot.sim_cycles += result.worker.sim_cycles;
            slot.exec_seconds += result.worker.exec_seconds;
            profile_.sim_cycles += result.worker.sim_cycles;
            profile_.exec_seconds += result.worker.exec_seconds;
        }
        // Registry hot-path instrument (overhead proven within noise
        // by bench_micro_simspeed --obs-overhead-check).
        obs::MetricsRegistry::instance()
            .histogram("padc_task_ms", 250, 10,
                       "Pool task round-trip latency, ms")
            .sample(latency_ms);

        Result<T> merged;
        if constexpr (std::is_same_v<T, RunMetrics>)
            merged = std::move(result.run);
        else
            merged = std::move(result.eval);
        merged.outcome.attempts = state[i].attempts;
        merged.outcome.last_error = state[i].last_error;
        if (journal != nullptr)
            journal->record(keys[i], merged);
        if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
            monitor->pointFinished(
                i, toString(merged.outcome.status),
                state[i].attempts, merged.outcome.detail,
                static_cast<std::int64_t>(slotOf(worker)), worker.pid);
        }
        results[i] = std::move(merged);
        state[i].state = PState::Done;
        ++done;
        ++stats_.executed;
        notePointCompleted();
    };

    while (done < n) {
        // Graceful stop: kill busy workers immediately (one of them may
        // be wedged -- never wait), fail the unfinished points as
        // "interrupted" without journaling them, and leave the idle
        // workers for shutdownWorkers().
        if (interruptRequested()) {
            stats_.interrupted = true;
            if (obs::FleetMonitor *monitor = obs::activeMonitor())
                monitor->interruptDrain();
            for (Worker &worker : workers_) {
                if (worker.alive() && worker.task >= 0) {
                    ::kill(worker.pid, SIGKILL);
                    reapWorker(&worker);
                    const auto i = static_cast<std::size_t>(worker.task);
                    worker.task = -1;
                    finishFailed(i, kInterruptedDetail);
                }
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (state[i].state == PState::Pending)
                    finishFailed(i, kInterruptedDetail);
            }
            break;
        }

        // Respawn fallen workers while work remains. A worker that dies
        // before its handshake is retired instead (that is the
        // exec-failure signature, and respawning it would loop).
        for (Worker &worker : workers_) {
            if (worker.alive() || worker.retired)
                continue;
            if (spawnWorker(&worker)) {
                ++stats_.respawns;
                ++profile_.respawns;
            } else {
                worker.retired = true;
            }
        }

        bool any_alive = false;
        for (const Worker &worker : workers_)
            any_alive = any_alive || worker.alive();
        if (!any_alive) {
            for (std::size_t i = 0; i < n; ++i) {
                if (state[i].state != PState::Done) {
                    finishFailed(i,
                                 "no live workers left to run the point" +
                                     (state[i].last_error.empty()
                                          ? std::string()
                                          : "; last worker " +
                                                state[i].last_error));
                }
            }
            break;
        }

        // Dispatch ready points (index order) to idle ready workers.
        std::uint64_t now = nowMs();
        for (Worker &worker : workers_) {
            if (!worker.alive() || !worker.ready || worker.task >= 0)
                continue;
            std::int64_t pick = -1;
            for (std::size_t i = 0; i < n; ++i) {
                if (state[i].state == PState::Pending &&
                    state[i].ready_ms <= now) {
                    pick = static_cast<std::int64_t>(i);
                    break;
                }
            }
            if (pick < 0)
                break;
            const auto i = static_cast<std::size_t>(pick);
            wire::WireTask task;
            task.kind = kind;
            task.index = i;
            task.attempt = state[i].attempts;
            task.point = points[i];
            if (kind == wire::WireTask::Kind::Eval) {
                task.alone_base = alone_base;
                task.alone_options = alone_options;
            }
            if (!wire::writeFrame(worker.task_fd,
                                  wire::encodeTask(task))) {
                // EPIPE: it died idle; reap here, respawn next round.
                ::kill(worker.pid, SIGKILL);
                reapWorker(&worker);
                continue;
            }
            worker.task = pick;
            worker.deadline_ms = now + config_.heartbeat_timeout_ms;
            worker.task_started_ms = now;
            state[i].state = PState::InFlight;
            ++state[i].attempts;
            ++slotProfile(worker).dispatches;
            if (obs::FleetMonitor *monitor = obs::activeMonitor())
                monitor->pointDispatched(i, slotOf(worker), worker.pid);
        }

        // Wait for results, deaths, handshake/heartbeat deadlines, or
        // backoff expiry -- whichever comes first.
        std::vector<struct pollfd> fds;
        std::vector<Worker *> order;
        for (Worker &worker : workers_) {
            if (worker.alive()) {
                fds.push_back({worker.result_fd, POLLIN, 0});
                order.push_back(&worker);
            }
        }
        now = nowMs();
        std::uint64_t wake = now + 1000;
        for (const Worker &worker : workers_) {
            if (worker.alive() && worker.deadline_ms != 0 &&
                (worker.task >= 0 || !worker.ready))
                wake = std::min(wake, worker.deadline_ms);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (state[i].state == PState::Pending &&
                state[i].ready_ms > now)
                wake = std::min(wake, state[i].ready_ms);
        }
        const int timeout =
            wake > now ? static_cast<int>(std::min<std::uint64_t>(
                             wake - now, 1000))
                       : 0;
        const int rc = ::poll(fds.data(), fds.size(), timeout);
        if (rc < 0 && errno != EINTR)
            break;

        for (std::size_t k = 0; k < fds.size(); ++k) {
            Worker &worker = *order[k];
            if (!worker.alive()) // killed by an earlier event this round
                continue;
            if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            char buf[65536];
            const ssize_t m = ::read(worker.result_fd, buf, sizeof(buf));
            if (m > 0) {
                worker.frames.feed(buf, static_cast<std::size_t>(m));
                std::string payload;
                while (worker.alive() && worker.frames.next(&payload))
                    handleFrame(worker, payload);
                if (worker.alive() && worker.frames.corrupt())
                    killForProtocol(worker, "sent a corrupt frame");
            } else if (m == 0 || errno != EINTR) {
                const std::string fate = reapWorker(&worker);
                if (!worker.ready && worker.task < 0)
                    worker.retired = true; // died during handshake
                onDeath(worker, fate);
            }
        }

        // Heartbeat: a worker whose task (or handshake) blew its
        // deadline gets SIGKILLed; the EOF surfaces on the next round
        // and feeds the death path above with a timeout fate.
        const std::uint64_t after = nowMs();
        for (Worker &worker : workers_) {
            if (worker.alive() && worker.deadline_ms != 0 &&
                (worker.task >= 0 || !worker.ready) &&
                worker.deadline_ms <= after && !worker.timed_out) {
                worker.timed_out = true;
                ++profile_.timeout_kills;
                ++slotProfile(worker).kills;
                if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
                    monitor->workerTimedOut(slotOf(worker), worker.pid,
                                            worker.task);
                }
                ::kill(worker.pid, SIGKILL);
            }
        }
    }

    return results;
}

std::vector<Result<RunMetrics>>
ProcessPool::runSweep(const std::vector<SweepPoint> &points,
                      SweepJournal *journal)
{
    if (!available()) // degraded mode: behave like the in-thread sweep
        return sim::runSweep(points, sharedRunner(), journal);
    return execute<RunMetrics>(points, wire::WireTask::Kind::Run,
                               SystemConfig(), RunOptions(), journal);
}

std::vector<Result<MixEvaluation>>
ProcessPool::evaluateSweep(const std::vector<SweepPoint> &points,
                           AloneIpcCache &alone, SweepJournal *journal)
{
    if (!available())
        return sim::evaluateSweep(points, alone, sharedRunner(), journal);
    return execute<MixEvaluation>(points, wire::WireTask::Kind::Eval,
                                  alone.base(), alone.options(), journal);
}

int
ProcessPool::workerMain(int task_fd, int result_fd)
{
    // A terminal Ctrl-C delivers SIGINT to the whole foreground process
    // group; shutdown is the supervisor's decision (task-pipe EOF or
    // SIGKILL), so workers ignore the terminal's copy.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    const wire::FaultSpec fault = wire::envFaultSpec();
    if (!wire::writeFrame(result_fd, wire::encodeHello()))
        return 1;

    std::map<std::string, std::unique_ptr<AloneIpcCache>> alone_caches;
    std::uint64_t tasks_done = 0;
    std::string payload;
    while (wire::readFrame(task_fd, &payload)) {
        wire::WireTask task;
        std::string error;
        if (!wire::decodeTask(payload, &task, &error)) {
            std::fprintf(stderr, "padc worker: malformed task frame: %s\n",
                         error.c_str());
            return 1;
        }

        if (wire::faultFires(fault, task.index, task.attempt)) {
            switch (fault.mode) {
              case wire::FaultSpec::Mode::Crash:
              case wire::FaultSpec::Mode::Poison:
                std::raise(SIGKILL);
                break;
              case wire::FaultSpec::Mode::Exit:
                ::_exit(fault.exit_code);
              case wire::FaultSpec::Mode::Hang: {
                // Wedge until the supervisor's heartbeat kills us; watch
                // the task pipe so an orphan (supervisor died, pipe
                // closed) exits instead of leaking forever.
                struct pollfd probe = {task_fd, POLLIN, 0};
                for (;;) {
                    if (::poll(&probe, 1, -1) <= 0)
                        continue;
                    if ((probe.revents & (POLLHUP | POLLERR)) != 0)
                        ::_exit(0);
                    if ((probe.revents & POLLIN) != 0) {
                        char sink[4096];
                        if (::read(task_fd, sink, sizeof(sink)) == 0)
                            ::_exit(0);
                    }
                }
              }
              case wire::FaultSpec::Mode::None:
                break;
            }
        }

        wire::WireResult result;
        result.kind = task.kind;
        result.index = task.index;
        const std::uint64_t started_ms = nowMs();
        if (task.kind == wire::WireTask::Kind::Run) {
            result.run = executePoint<RunMetrics>([&](RunStatus *status) {
                return runMix(task.point.config, task.point.mix,
                              task.point.options, status);
            });
        } else {
            AloneIpcCache &alone = aloneFor(alone_caches, task);
            result.eval =
                executePoint<MixEvaluation>([&](RunStatus *status) {
                    return evaluateMix(task.point.config, task.point.mix,
                                       task.point.options, alone, status);
                });
        }
        // Self-report (append-only wire extension): per-THIS-task
        // execution time and simulated cycles, so the supervisor's
        // profile aggregation is a plain sum.
        result.worker.present = true;
        result.worker.pid = static_cast<std::uint64_t>(::getpid());
        result.worker.tasks = ++tasks_done;
        result.worker.exec_seconds =
            static_cast<double>(nowMs() - started_ms) / 1000.0;
        result.worker.sim_cycles =
            task.kind == wire::WireTask::Kind::Run
                ? runCyclesOf(result.run.value)
                : runCyclesOf(result.eval.value.metrics);
        if (!wire::writeFrame(result_fd, wire::encodeResult(result)))
            return 1; // supervisor is gone
    }
    return 0; // EOF: clean shutdown
}

} // namespace padc::sim
