#include "sim/experiment.hh"

#include <iomanip>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "obs/monitor.hh"
#include "sim/interrupt.hh"
#include "sim/journal.hh"
#include "telemetry/profiler.hh"
#include "workload/generator.hh"

namespace padc::sim
{

std::string
policyLabel(PolicySetup setup)
{
    switch (setup) {
      case PolicySetup::NoPref: return "no-pref";
      case PolicySetup::DemandFirst: return "demand-first";
      case PolicySetup::DemandPrefEqual: return "demand-pref-equal";
      case PolicySetup::PrefetchFirst: return "prefetch-first";
      case PolicySetup::ApsOnly: return "aps-only";
      case PolicySetup::Padc: return "aps-apd (PADC)";
      case PolicySetup::PadcRank: return "PADC-rank";
      case PolicySetup::ApsNoUrgent: return "aps-no-urgent";
      case PolicySetup::PadcNoUrgent: return "aps-apd-no-urgent";
      case PolicySetup::ApdOnly: return "demand-first-apd";
    }
    return "unknown";
}

SystemConfig
applyPolicy(SystemConfig base, PolicySetup setup)
{
    base.prefetch_enabled = true;
    base.sched.apd_enabled = false;
    base.sched.urgency_enabled = true;
    base.sched.ranking_enabled = false;

    switch (setup) {
      case PolicySetup::NoPref:
        base.prefetch_enabled = false;
        base.sched.kind = SchedPolicyKind::FrFcfs;
        break;
      case PolicySetup::DemandFirst:
        base.sched.kind = SchedPolicyKind::DemandFirst;
        break;
      case PolicySetup::DemandPrefEqual:
        base.sched.kind = SchedPolicyKind::FrFcfs;
        break;
      case PolicySetup::PrefetchFirst:
        base.sched.kind = SchedPolicyKind::PrefetchFirst;
        break;
      case PolicySetup::ApsOnly:
        base.sched.kind = SchedPolicyKind::Aps;
        break;
      case PolicySetup::Padc:
        base.sched.kind = SchedPolicyKind::Aps;
        base.sched.apd_enabled = true;
        break;
      case PolicySetup::PadcRank:
        base.sched.kind = SchedPolicyKind::Aps;
        base.sched.apd_enabled = true;
        base.sched.ranking_enabled = true;
        break;
      case PolicySetup::ApsNoUrgent:
        base.sched.kind = SchedPolicyKind::Aps;
        base.sched.urgency_enabled = false;
        break;
      case PolicySetup::PadcNoUrgent:
        base.sched.kind = SchedPolicyKind::Aps;
        base.sched.apd_enabled = true;
        base.sched.urgency_enabled = false;
        break;
      case PolicySetup::ApdOnly:
        base.sched.kind = SchedPolicyKind::DemandFirst;
        base.sched.apd_enabled = true;
        break;
    }
    return base;
}

RunMetrics
runMix(const SystemConfig &config, const workload::Mix &mix,
       const RunOptions &options, RunStatus *status)
{
    if (mix.size() != config.num_cores) {
        throw std::invalid_argument(
            "runMix: mix has " + std::to_string(mix.size()) +
            " profiles for a " + std::to_string(config.num_cores) +
            "-core configuration");
    }
    ConfigErrors mix_errors;
    if (!workload::validateMix(mix, &mix_errors))
        throw std::invalid_argument("runMix: " + mix_errors.str());

    std::vector<std::unique_ptr<core::TraceSource>> traces;
    std::unique_ptr<System> system;
    {
        telemetry::WallProfiler::Scope scope(
            telemetry::ProfilePhase::Build);
        std::vector<core::TraceSource *> sources;
        for (std::uint32_t c = 0; c < config.num_cores; ++c) {
            traces.push_back(
                workload::makeTraceSource(mix, c, options.mix_seed));
            sources.push_back(traces.back().get());
        }
        system = std::make_unique<System>(config, std::move(sources));
    }

    RunStatus run_status;
    {
        telemetry::WallProfiler::Scope scope(
            telemetry::ProfilePhase::Simulate);
        run_status = system->run(options.instructions, options.max_cycles,
                                 options.warmup);
    }
    if (status != nullptr)
        *status = run_status;

    telemetry::WallProfiler::Scope scope(telemetry::ProfilePhase::Collect);
    return collectMetrics(*system);
}

AloneIpcCache::AloneIpcCache(SystemConfig base, RunOptions options)
    : base_(std::move(base)), options_(options)
{
}

double
AloneIpcCache::ipcAlone(const std::string &profile_name, std::uint32_t core,
                        std::uint64_t mix_seed)
{
    // The alone IPC depends on the profile and its per-(mix, core) trace
    // seed; key on all three so identical profiles across cores reuse
    // the entry only when the generated trace is identical.
    const std::string key = profile_name + "#" + std::to_string(core) +
                            "#" + std::to_string(mix_seed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
    }
    // Computed outside the lock so concurrent misses on distinct keys
    // overlap; a racing duplicate computes the identical value, and
    // emplace keeps whichever insert lands first.
    const double ipc = computeAlone(profile_name, core, mix_seed);
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.emplace(key, ipc);
    return ipc;
}

void
AloneIpcCache::prewarm(const std::vector<workload::Mix> &mixes,
                       std::uint64_t base_seed,
                       ParallelExperimentRunner &runner)
{
    struct Slot
    {
        std::string profile;
        std::uint32_t core;
        std::uint64_t seed;
    };
    std::vector<Slot> slots;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        for (std::uint32_t c = 0; c < mixes[i].size(); ++c)
            slots.push_back({mixes[i][c], c, base_seed + i});
    }
    runner.forEach(slots.size(), [&](std::size_t i) {
        ipcAlone(slots[i].profile, slots[i].core, slots[i].seed);
    });
}

double
AloneIpcCache::computeAlone(const std::string &profile_name,
                            std::uint32_t core,
                            std::uint64_t mix_seed) const
{
    // Alone methodology (Section 5.2): demand-first policy, application
    // on one core of the CMP, other cores idle. We emulate idle cores
    // with a compute-only spin trace confined to a single line.
    SystemConfig cfg = applyPolicy(base_, PolicySetup::DemandFirst);

    // Build the mix-placed trace for the target core, then run it
    // alone. makeTraceSource resolves trace-backed profiles to replays
    // and synthetic ones to the generator, so alone-IPC normalization
    // works identically for captured traces.
    workload::Mix dummy_mix(base_.num_cores, profile_name);
    std::unique_ptr<core::TraceSource> app_trace =
        workload::makeTraceSource(dummy_mix, core, mix_seed);

    std::vector<std::unique_ptr<core::VectorTrace>> idle_traces;
    std::vector<core::TraceSource *> sources;
    for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
        if (c == core % cfg.num_cores) {
            sources.push_back(app_trace.get());
        } else {
            core::TraceOp spin;
            spin.compute_gap = 1000;
            spin.addr = (static_cast<Addr>(c) << 40) | 0x100;
            spin.pc = 0x500000 + c * 16;
            spin.is_load = true;
            idle_traces.push_back(std::make_unique<core::VectorTrace>(
                std::vector<core::TraceOp>{spin}));
            sources.push_back(idle_traces.back().get());
        }
    }

    System system(cfg, std::move(sources));
    system.run(options_.instructions, options_.max_cycles,
               options_.warmup);
    const RunMetrics metrics = collectMetrics(system);
    return metrics.cores[core % cfg.num_cores].ipc;
}

MixEvaluation
evaluateMix(const SystemConfig &config, const workload::Mix &mix,
            const RunOptions &options, AloneIpcCache &alone,
            RunStatus *status)
{
    MixEvaluation eval;
    eval.metrics = runMix(config, mix, options, status);
    std::vector<double> ipc_alone;
    for (std::uint32_t c = 0; c < config.num_cores; ++c)
        ipc_alone.push_back(alone.ipcAlone(mix[c], c, options.mix_seed));
    eval.summary = multiCoreMetrics(eval.metrics, ipc_alone);
    return eval;
}

std::string
describePoint(const SweepPoint &point)
{
    std::string out = toString(point.config.sched.kind);
    if (point.config.sched.apd_enabled)
        out += "+apd";
    if (!point.config.prefetch_enabled)
        out += " no-pref";
    out += ", mix [";
    for (std::size_t c = 0; c < point.mix.size(); ++c) {
        if (c > 0)
            out += " ";
        out += point.mix[c];
    }
    out += "], seed " + std::to_string(point.options.mix_seed);
    return out;
}

const char *
toString(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok: return "ok";
      case PointStatus::Truncated: return "truncated";
      case PointStatus::Failed: return "failed";
    }
    return "unknown";
}

namespace
{

/**
 * Execute one sweep point under the fault-tolerance contract: serve it
 * from the journal when recorded, otherwise run @p fn, fold any
 * exception or cycle-cap truncation into the per-point outcome, and
 * checkpoint the finished point. @p fn receives a RunStatus out-param
 * and returns the point's value.
 */
template <typename T, typename Fn>
Result<T>
runPoint(SweepJournal *journal, const SweepPoint &point, Fn &&fn)
{
    Result<T> result;
    std::uint64_t key = 0;
    if (journal != nullptr) {
        key = sweepPointKey(point);
        if (journal->lookup(key, &result)) {
            result.outcome.attempts = 0; // replayed, never ran here
            return result;
        }
    }
    // Graceful stop: points not yet started when the interrupt arrived
    // complete as Failed "interrupted" and are NOT journaled, so a
    // resumed run retries them.
    if (interruptRequested()) {
        result.outcome.status = PointStatus::Failed;
        result.outcome.detail = kInterruptedDetail;
        result.outcome.attempts = 0;
        return result;
    }
    try {
        RunStatus status;
        result.value = fn(&status);
        if (!status.converged()) {
            result.outcome.status = PointStatus::Truncated;
            result.outcome.detail = status.detail();
        }
    } catch (const std::exception &e) {
        result.value = T{};
        result.outcome.status = PointStatus::Failed;
        result.outcome.detail = e.what();
    } catch (...) {
        result.value = T{};
        result.outcome.status = PointStatus::Failed;
        result.outcome.detail = "unknown exception";
    }
    if (journal != nullptr)
        journal->record(key, result);
    notePointCompleted();
    return result;
}

} // namespace

std::vector<Result<MixEvaluation>>
evaluateSweep(const std::vector<SweepPoint> &points, AloneIpcCache &alone,
              ParallelExperimentRunner &runner, SweepJournal *journal)
{
    // Fill the alone cache first so the sweep jobs below are pure cache
    // hits; the alone-runs themselves fan out across the pool too.
    // Prewarm failures are deliberately ignored here: a failing
    // alone-run resurfaces at every point that needs it, where it is
    // recorded as that point's Failed outcome.
    {
        struct Key
        {
            workload::Mix mix;
            std::uint64_t seed;
        };
        std::vector<Key> keys;
        for (const auto &point : points) {
            // Journaled points replay without alone-runs; don't prewarm
            // for them (that would undo most of a resume's savings).
            if (journal != nullptr &&
                journal->containsEval(sweepPointKey(point))) {
                continue;
            }
            bool seen = false;
            for (const auto &key : keys) {
                seen = key.seed == point.options.mix_seed &&
                       key.mix == point.mix;
                if (seen)
                    break;
            }
            if (!seen)
                keys.push_back({point.mix, point.options.mix_seed});
        }
        runner.tryForEach(keys.size(), [&](std::size_t i) {
            if (interruptRequested())
                return; // the points will fail as "interrupted" anyway
            for (std::uint32_t c = 0; c < keys[i].mix.size(); ++c)
                alone.ipcAlone(keys[i].mix[c], c, keys[i].seed);
        });
    }
    return runner.map<Result<MixEvaluation>>(
        points.size(), [&](std::size_t i) {
            Result<MixEvaluation> result = runPoint<MixEvaluation>(
                journal, points[i], [&](RunStatus *status) {
                    return evaluateMix(points[i].config, points[i].mix,
                                       points[i].options, alone, status);
                });
            if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
                monitor->pointFinished(i, toString(result.outcome.status),
                                       result.outcome.attempts,
                                       result.outcome.detail);
            }
            return result;
        });
}

std::vector<Result<RunMetrics>>
runSweep(const std::vector<SweepPoint> &points,
         ParallelExperimentRunner &runner, SweepJournal *journal)
{
    return runner.map<Result<RunMetrics>>(
        points.size(), [&](std::size_t i) {
            Result<RunMetrics> result = runPoint<RunMetrics>(
                journal, points[i], [&](RunStatus *status) {
                    return runMix(points[i].config, points[i].mix,
                                  points[i].options, status);
                });
            if (obs::FleetMonitor *monitor = obs::activeMonitor()) {
                monitor->pointFinished(i, toString(result.outcome.status),
                                       result.outcome.attempts,
                                       result.outcome.detail);
            }
            return result;
        });
}

void
printLabel(const std::string &text, int width)
{
    std::cout << std::left << std::setw(width) << text << std::right;
}

void
printCell(double value, int width, int precision)
{
    std::cout << std::setw(width) << std::fixed
              << std::setprecision(precision) << value;
}

void
printHeader(const std::string &label,
            const std::vector<std::string> &columns, int label_width,
            int col_width)
{
    printLabel(label, label_width);
    for (const auto &column : columns)
        std::cout << std::setw(col_width) << column;
    std::cout << '\n';
}

void
endRow()
{
    std::cout << '\n';
}

} // namespace padc::sim
