#include "sim/interrupt.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace padc::sim
{

namespace
{

/**
 * The stop flag. std::atomic<int> rather than volatile sig_atomic_t:
 * lock-free atomics are async-signal-safe, and the serve daemon reads
 * the flag from its executor thread while the socket thread's signal
 * handler (or a cancel request) writes it, so plain volatile would be
 * a cross-thread data race.
 */
std::atomic<int> g_interrupt{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handlers require a lock-free stop flag");

/**
 * Remaining PADC_TEST_INTERRUPT_AFTER budget; negative = hook disarmed.
 * Only resetInterruptState() arms it, so worker subprocesses (which
 * never call it) ignore the variable even though they inherit the
 * environment.
 */
std::atomic<long> g_points_remaining{-1};

} // namespace

bool
interruptRequested()
{
    return g_interrupt.load(std::memory_order_relaxed) != 0;
}

void
requestInterrupt()
{
    g_interrupt.store(1, std::memory_order_relaxed);
}

void
resetInterruptState()
{
    g_interrupt.store(0, std::memory_order_relaxed);
    g_points_remaining.store(-1, std::memory_order_relaxed);

    const char *env = std::getenv("PADC_TEST_INTERRUPT_AFTER");
    if (env == nullptr)
        return;
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || parsed < 0) {
        std::fprintf(stderr,
                     "padc: warning: invalid PADC_TEST_INTERRUPT_AFTER="
                     "\"%s\" (want a non-negative integer); ignored\n",
                     env);
        return;
    }
    if (parsed == 0) {
        requestInterrupt();
        return;
    }
    g_points_remaining.store(parsed, std::memory_order_relaxed);
}

void
notePointCompleted()
{
    // fetch_sub on a disarmed counter would slowly walk it toward
    // LONG_MIN; bail out first (the re-check after the decrement keeps
    // the armed path race-free).
    if (g_points_remaining.load(std::memory_order_relaxed) < 0)
        return;
    if (g_points_remaining.fetch_sub(1, std::memory_order_relaxed) <= 1)
        requestInterrupt();
}

} // namespace padc::sim
