/**
 * @file
 * Evaluation metrics (paper Section 5.2): IPC, MPKI, SPL, ACC, COV,
 * RBH, RBHU, bus-traffic breakdown, and the multiprogrammed metrics
 * IS/WS/HS/UF computed against alone-run IPCs.
 */

#ifndef PADC_SIM_METRICS_HH
#define PADC_SIM_METRICS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/system.hh"

namespace padc::sim
{

/** Per-core derived metrics for one run. */
struct CoreMetrics
{
    double ipc = 0.0;
    double mpki = 0.0; ///< L2 demand misses per 1000 instructions
    double spl = 0.0;  ///< stall cycles per load (Section 5.2)
    double acc = 0.0;  ///< prefetch accuracy, lifetime
    double cov = 0.0;  ///< prefetch coverage
    double rbh = 0.0;  ///< row-buffer hit rate, all serviced reads
    double rbhu = 0.0; ///< row-buffer hit rate, useful requests only

    // Bus traffic in cache lines, by class.
    std::uint64_t traffic_demand = 0;
    std::uint64_t traffic_pref_useful = 0;
    std::uint64_t traffic_pref_useless = 0;
    std::uint64_t traffic_writeback = 0;

    std::uint64_t instructions = 0;
    Cycle cycles = 0; ///< cycles to reach the instruction target
};

/** Whole-run derived metrics. */
struct RunMetrics
{
    std::vector<CoreMetrics> cores;

    /**
     * Requests serviced by the controllers over the whole run, indexed
     * by RequestClass enumerator value (channel-summed, lifetime -- the
     * warm-up window does not apply to controller-side counters).
     */
    std::array<std::uint64_t, kRequestClassCount> class_serviced{};

    /** Total bus traffic (fills + writebacks), in cache lines. */
    std::uint64_t totalTraffic() const;

    std::uint64_t trafficDemand() const;
    std::uint64_t trafficPrefUseful() const;
    std::uint64_t trafficPrefUseless() const;
    std::uint64_t trafficWriteback() const;
};

/** Extract metrics from a finished System run. */
RunMetrics collectMetrics(const System &system);

/**
 * Multiprogrammed summary metrics given alone-run IPCs
 * (paper Section 5.2 / 6.3.4):
 *   IS_i = IPC_together_i / IPC_alone_i
 *   WS = sum IS, HS = N / sum(1/IS), UF = max IS / min IS.
 */
struct MultiCoreMetrics
{
    std::vector<double> speedups; ///< IS per core
    double ws = 0.0;
    double hs = 0.0;
    double uf = 1.0;
};

MultiCoreMetrics
multiCoreMetrics(const RunMetrics &together,
                 const std::vector<double> &ipc_alone);

} // namespace padc::sim

#endif // PADC_SIM_METRICS_HH
