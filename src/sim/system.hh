/**
 * @file
 * Full-system assembly: cores, L1/L2 caches, MSHRs, prefetchers with
 * optional DDPF/FDP, the prefetch-accuracy tracker, and one memory
 * controller per DRAM channel.
 *
 * The System implements both sides of the glue:
 *  - core::MemoryPort (cores issue loads/stores into the hierarchy), and
 *  - memctrl::ResponseHandler (controllers report fills and drops).
 *
 * All of the paper's bookkeeping lives here: P-bit usefulness
 * resolution (PUC), prefetch promotion on demand match, bus-traffic
 * classification (demand / useful prefetch / useless prefetch /
 * writeback), RBHU accounting, the Fig. 4(a) service-time histograms,
 * and FDP's interval feedback.
 */

#ifndef PADC_SIM_SYSTEM_HH
#define PADC_SIM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "dram/dram_system.hh"
#include "memctrl/accuracy_tracker.hh"
#include "memctrl/controller.hh"
#include "prefetch/ddpf.hh"
#include "prefetch/fdp.hh"
#include "prefetch/prefetcher.hh"
#include "telemetry/telemetry.hh"

namespace padc::sim
{

/** Complete system configuration. */
struct SystemConfig
{
    std::uint32_t num_cores = 4;

    core::CoreConfig core;
    cache::CacheConfig l1;
    cache::CacheConfig l2;

    /** Single L2 shared by all cores (paper Section 6.10). */
    bool shared_l2 = false;

    /** MSHR entries per L2 cache instance. */
    std::uint32_t mshr_per_l2 = 32;

    bool prefetch_enabled = true;
    prefetch::PrefetcherConfig prefetcher;

    bool ddpf_enabled = false;
    prefetch::DdpfConfig ddpf;

    bool fdp_enabled = false;
    prefetch::FdpConfig fdp;

    memctrl::SchedulerConfig sched;
    dram::DramConfig dram;

    /**
     * Optional telemetry collector (not owned; must outlive the System).
     * When set, the System attaches the collector's sinks: the request
     * trace hooks into every controller and channel, and the interval
     * sampler records one row per core at each FDP/accuracy interval
     * boundary. nullptr (the default) disables all telemetry with a
     * single pointer test per hook. Deliberately excluded from
     * validate() and from sweep point keys: it is an observer, not a
     * simulated parameter.
     */
    telemetry::Collector *collector = nullptr;

    /**
     * Event-driven main loop: when no component can act for a span of
     * cycles, System::run() jumps simulated time to the next event
     * instead of stepping every cycle. Results are bit-identical either
     * way (the A/B equivalence suite and the PADC_NO_EVENT_SKIP runtime
     * escape hatch exist to prove/bisect exactly that), so this knob --
     * like collector above -- is an execution detail, not a simulated
     * parameter: it is excluded from validate() and from sweep point
     * keys.
     */
    bool event_skip = true;

    /**
     * Baseline configuration for an n-core CMP following paper Tables
     * 3/4: 32KB L1, 512KB private L2 per core (1MB for single core),
     * MSHR/request buffer 64/64/128/256 entries for 1/2/4/8 cores,
     * single DDR3 channel with 8 banks and 4KB rows, stream prefetcher,
     * PADC scheduling.
     */
    static SystemConfig baseline(std::uint32_t cores);

    /**
     * Check every cross-cutting and per-component constraint and return
     * the accumulated structured diagnostics (empty = valid). System's
     * constructor calls this and throws std::invalid_argument with
     * ConfigErrors::str() when it is non-empty, so misconfiguration
     * surfaces as one readable message naming each offending field
     * instead of an assert or silent corruption.
     */
    ConfigErrors validate() const;
};

/**
 * Outcome of one System::run call. A core is "truncated" when the
 * cycle cap expired before it retired its instruction target; its
 * CoreResult then holds the frozen partial progress (done == false)
 * rather than converged end-of-run numbers.
 */
struct RunStatus
{
    std::uint64_t truncated_mask = 0; ///< bit i: core i hit the cap
    std::uint32_t cores_completed = 0;
    std::uint32_t cores_truncated = 0;
    Cycle cycles = 0;             ///< simulation time after the run
    std::uint64_t max_cycles = 0; ///< the cap this run was given

    bool converged() const { return cores_truncated == 0; }

    /** "" when converged; else e.g. "cores 1,3 hit the 100-cycle cap". */
    std::string detail() const;
};

/** Per-core traffic, usefulness, and RBHU counters. */
struct CoreMemStats
{
    std::uint64_t demand_fills = 0;     ///< lines fetched by demands
    std::uint64_t prefetch_fills = 0;   ///< lines fetched by prefetches
                                        ///< (including promoted ones)
    std::uint64_t useful_prefetch_fills = 0; ///< resolved useful
    std::uint64_t writebacks = 0;

    std::uint64_t l2_demand_accesses = 0;
    std::uint64_t l2_demand_misses = 0;

    std::uint64_t prefetches_issued = 0;   ///< entered the memory system
    std::uint64_t prefetch_candidates = 0; ///< emitted by the prefetcher
    std::uint64_t prefetches_filtered = 0; ///< dropped by DDPF
    std::uint64_t prefetches_no_room = 0;  ///< MSHR/buffer full

    std::uint64_t promotions = 0; ///< demand matched in-flight prefetch

    // RBHU (paper Section 6.1.1): row-hit status of useful requests.
    std::uint64_t useful_req_fills = 0;    ///< demands + useful prefetches
    std::uint64_t useful_req_row_hits = 0; ///< ... serviced as row-hits

    // RBH (paper Table 5): row-hit status of *all* serviced reads.
    std::uint64_t fills_total = 0;
    std::uint64_t fills_row_hit = 0;

    std::uint64_t pollution_misses = 0; ///< demand misses attributed to
                                        ///< prefetch-induced eviction
};

/** Frozen per-core results, captured when the core reaches its target. */
struct CoreResult
{
    bool done = false;
    Cycle done_cycle = 0;
    core::CoreStats core_stats;   ///< snapshot at completion
    CoreMemStats mem_stats;       ///< snapshot at completion
    std::uint64_t pref_sent = 0;  ///< lifetime PSC at completion
    std::uint64_t pref_used = 0;  ///< lifetime PUC at completion

    /** Snapshot when the core crossed the warm-up boundary. */
    bool warmed = false;
    Cycle warm_cycle = 0;
    core::CoreStats warm_core_stats;
    CoreMemStats warm_mem_stats;
    std::uint64_t warm_pref_sent = 0;
    std::uint64_t warm_pref_used = 0;
};

/**
 * The simulated CMP; see file comment.
 */
class System : public core::MemoryPort, public memctrl::ResponseHandler
{
  public:
    /**
     * @param config system configuration; SystemConfig::validate() is
     *        invoked and std::invalid_argument thrown on any violation
     * @param traces one trace source per core; not owned
     * @throws std::invalid_argument naming every invalid config field,
     *         or a trace count != num_cores
     */
    System(const SystemConfig &config,
           std::vector<core::TraceSource *> traces);

    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run until every core has retired @p instructions_per_core
     * instructions, or @p max_cycles elapses. Per-core results are
     * frozen the cycle each core reaches the target (the standard
     * multiprogrammed methodology); all cores keep executing until the
     * last one finishes so contention stays realistic.
     *
     * @param warmup_instructions per-core instruction count at which the
     *        warm-up snapshot is taken; metrics are computed over the
     *        [warmup, target] window (0 = measure from reset).
     *
     * @return per-run status distinguishing cores that reached the
     *         target from cores frozen at the cycle cap, so callers can
     *         report truncated (non-converged) runs instead of treating
     *         the frozen partial stats as converged results.
     */
    RunStatus run(std::uint64_t instructions_per_core,
                  std::uint64_t max_cycles,
                  std::uint64_t warmup_instructions = 0);

    // --- core::MemoryPort ---
    core::AccessReply access(CoreId core, Addr addr, Addr pc, bool is_load,
                             std::uint64_t token_tag, bool runahead,
                             Cycle now) override;

    // --- memctrl::ResponseHandler ---
    void dramReadComplete(const memctrl::Request &req, Cycle now) override;
    void dramPrefetchDropped(const memctrl::Request &req,
                             Cycle now) override;

    // --- results ---
    Cycle cycles() const { return now_; }
    const SystemConfig &config() const { return config_; }
    const CoreResult &result(CoreId core) const { return results_[core]; }
    const CoreMemStats &memStats(CoreId core) const { return mem_[core]; }
    const core::Core &coreModel(CoreId core) const { return *cores_[core]; }
    const memctrl::AccuracyTracker &tracker() const { return *tracker_; }
    const memctrl::MemoryController &controller(std::uint32_t i) const
    {
        return *controllers_[i];
    }
    std::uint32_t numControllers() const
    {
        return static_cast<std::uint32_t>(controllers_.size());
    }
    const dram::DramSystem &dramSystem() const { return *dram_; }
    const cache::SetAssocCache &l2(std::uint32_t idx) const
    {
        return *l2s_[idx];
    }

    /** Fig. 4(a): service times of prefetches that proved useful. */
    const Histogram &usefulServiceHist() const { return useful_hist_; }

    /** Fig. 4(a): service times of prefetches that proved useless. */
    const Histogram &uselessServiceHist() const { return useless_hist_; }

    /**
     * Per-interval prefetch-accuracy samples of core 0 (Fig. 4(b)):
     * one (cycle, accuracy) pair per completed measurement interval.
     */
    const std::vector<std::pair<Cycle, double>> &accuracyTimeline() const
    {
        return accuracy_timeline_;
    }

    /**
     * Export every component's statistics as one flat, stably-ordered
     * name/value set ("core0.ipc", "ctrl0.prefetches_dropped",
     * "dram.activates", ...). Intended for tooling and regression
     * diffing; the typed accessors above remain the primary API.
     */
    StatSet exportStats() const;

    /**
     * Serviced requests per RequestClass, summed over all controllers
     * (indexed by enumerator value; reserved classes stay zero). Feeds
     * the per-class block of RunMetrics and the wire/journal codecs.
     */
    std::array<std::uint64_t, kRequestClassCount> classServiced() const;

  private:
    struct FdpState
    {
        std::unique_ptr<prefetch::FdpController> controller;
        std::unique_ptr<prefetch::PollutionFilter> pollution;
        prefetch::FdpController::IntervalCounts counts;
    };

    cache::SetAssocCache &l2For(CoreId core)
    {
        return *l2s_[config_.shared_l2 ? 0 : core];
    }
    cache::MshrFile &mshrFor(CoreId core)
    {
        return *mshrs_[config_.shared_l2 ? 0 : core];
    }
    memctrl::MemoryController &controllerFor(const dram::DramCoord &coord)
    {
        return *controllers_[coord.channel];
    }

    /** Fill the core's L1 with @p line_addr, handling dirty evictions. */
    void fillL1(CoreId core, Addr line_addr, bool dirty, Cycle now);

    /** A prefetched L2 line was referenced by a demand: resolve useful. */
    void resolveUseful(cache::Line &line, Cycle now);

    /** A still-unused prefetched line left the L2: resolve useless. */
    void resolveUseless(const cache::EvictResult &victim, Addr pc);

    /** Try to issue one prefetch candidate into the memory system. */
    void issuePrefetch(CoreId core, Addr addr, Addr pc, Cycle now);

    /** FDP interval rollover and accuracy-timeline sampling. */
    void intervalTick(Cycle now);

    /** Push one interval sample per core into the telemetry collector. */
    void sampleTelemetry(Cycle now);

    /** Record an MSHR lifecycle event (no-op when untraced). */
    void traceMshr(telemetry::EventKind kind, CoreId core, Addr line_addr,
                   RequestClass cls, Cycle now);

    SystemConfig config_;

    std::unique_ptr<dram::DramSystem> dram_;
    std::unique_ptr<memctrl::AccuracyTracker> tracker_;
    std::vector<std::unique_ptr<memctrl::MemoryController>> controllers_;

    std::vector<std::unique_ptr<cache::SetAssocCache>> l1s_;
    std::vector<std::unique_ptr<cache::SetAssocCache>> l2s_;
    std::vector<std::unique_ptr<cache::MshrFile>> mshrs_;

    std::vector<std::unique_ptr<prefetch::Prefetcher>> prefetchers_;
    std::vector<std::unique_ptr<prefetch::DdpfFilter>> ddpf_;
    std::vector<FdpState> fdp_;

    std::vector<std::unique_ptr<core::Core>> cores_;
    std::vector<core::TraceSource *> traces_;

    std::vector<CoreMemStats> mem_;
    std::vector<CoreResult> results_;

    /**
     * Per-core cached next-event lower bound for the event-skip loop.
     * While core_next_[i] > now_, core i's tick this cycle is provably
     * a no-op (the same frozen-state invariant the next-event jump
     * rests on), so run() substitutes the exact 1-cycle idle-stat
     * replay for the tick. Reset to 0 ("must tick") whenever a DRAM
     * completion or drop touches the core from outside its own tick.
     */
    std::vector<Cycle> core_next_;

    Histogram useful_hist_;
    Histogram useless_hist_;
    std::vector<std::pair<Cycle, double>> accuracy_timeline_;
    Cycle next_interval_ = 0;

    std::vector<Addr> candidate_buf_; ///< reused prefetch candidate list

    /** config_.event_skip gated by the PADC_NO_EVENT_SKIP escape hatch. */
    bool event_skip_ = true;

    telemetry::Collector *telem_ = nullptr; ///< nullptr = no telemetry
    /// Reused scratch for sampleTelemetry (avoids per-interval allocs).
    std::vector<telemetry::IntervalSampler::CoreSample> core_samples_;
    std::vector<telemetry::IntervalSampler::ChannelSample> chan_samples_;

    Cycle now_ = 0;
};

} // namespace padc::sim

#endif // PADC_SIM_SYSTEM_HH
