/**
 * @file
 * One DRAM channel: a set of banks behind shared command and data buses.
 *
 * The channel enforces every constraint that spans banks:
 *  - one command per DRAM command-clock cycle (command bus),
 *  - data-bus occupancy of each burst,
 *  - tCCD between column commands,
 *  - write-to-read (tWTR) and read-to-write turnaround,
 *  - tRRD between activates and the four-activate tFAW window,
 *  - optional periodic refresh.
 *
 * A memory controller drives exactly one channel and must only issue a
 * command when the corresponding can*() predicate is true at the current
 * (DRAM-clock-aligned) processor cycle.
 */

#ifndef PADC_DRAM_CHANNEL_HH
#define PADC_DRAM_CHANNEL_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/timing.hh"
#include "telemetry/telemetry.hh"

namespace padc::dram
{

/** Aggregate channel statistics. */
struct ChannelStats
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
};

/**
 * DRAM channel model. See file comment for the constraint set.
 */
class Channel
{
  public:
    /**
     * @param timing shared timing parameters (must outlive the channel)
     * @param num_banks number of banks on this channel
     */
    Channel(const TimingParams &timing, std::uint32_t num_banks);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    const Bank &bank(std::uint32_t idx) const { return banks_[idx]; }

    /** Open row of bank @p idx, or kNoOpenRow. */
    std::uint64_t openRow(std::uint32_t idx) const
    {
        return banks_[idx].openRow();
    }

    /** True when a request to (bank,row) would be a row-buffer hit. */
    bool isRowHit(std::uint32_t bank, std::uint64_t row) const
    {
        return banks_[bank].openRow() == row;
    }

    /** True when the command bus can accept a command at cycle now. */
    bool commandBusFree(Cycle now) const { return now >= cmd_bus_free_; }

    /** True when periodic refresh is modelled at all. */
    bool refreshEnabled() const { return timing_.refresh_enabled; }

    /**
     * Next refresh deadline (meaningful only when refreshEnabled()).
     * Together with commandBusFreeAt() this bounds the next cycle a
     * refresh can actually fire, which the event-driven main loop folds
     * into its next-event computation.
     */
    Cycle nextRefreshDue() const { return next_refresh_due_; }

    /** First cycle the command bus can accept another command. */
    Cycle commandBusFreeAt() const { return cmd_bus_free_; }

    /**
     * Channel-global component of the first cycle a write column command
     * can become legal (command bus, tCCD, read->write turnaround, data
     * bus). Combined with the bank-local readyColumn() this is exact
     * while no commands issue, which is what the event-driven main loop
     * needs: inside a jump gap the channel state is frozen.
     */
    Cycle writeColumnGlobalReadyAt() const
    {
        const Cycle lead = timing_.toCpu(timing_.tCWL);
        const Cycle data = data_bus_free_ > lead ? data_bus_free_ - lead : 0;
        return std::max(std::max(cmd_bus_free_, next_column_ok_),
                        std::max(write_col_ok_, data));
    }

    /**
     * Channel-global component for a read column command (command bus,
     * tCCD, write->read turnaround, data bus). Same exactness contract
     * as writeColumnGlobalReadyAt().
     */
    Cycle readColumnGlobalReadyAt() const
    {
        const Cycle lead = timing_.toCpu(timing_.tCL);
        const Cycle data = data_bus_free_ > lead ? data_bus_free_ - lead : 0;
        return std::max(std::max(cmd_bus_free_, next_column_ok_),
                        std::max(read_col_ok_, data));
    }

    /** Channel-global component for ACTIVATE (command bus, tRRD, tFAW). */
    Cycle activateGlobalReadyAt() const
    {
        Cycle ready = cmd_bus_free_ > next_act_ok_ ? cmd_bus_free_
                                                   : next_act_ok_;
        if (acts_issued_ >= act_history_.size()) {
            const Cycle faw = act_history_[act_history_pos_] +
                              timing_.toCpu(timing_.tFAW);
            if (faw > ready)
                ready = faw;
        }
        return ready;
    }

    /** Activate legality including tRRD/tFAW and refresh blackout. */
    bool canActivate(std::uint32_t bank, Cycle now) const;

    /** Precharge legality. */
    bool canPrecharge(std::uint32_t bank, Cycle now) const;

    /** Column command legality including tCCD, data bus, and turnaround. */
    bool canColumn(std::uint32_t bank, bool is_write, Cycle now) const;

    /**
     * Bank-local lower bound on the cycle at which a command of the given
     * class could become legal for @p bank. Channel-global constraints
     * (command bus, tCCD, tRRD/tFAW, turnaround, data bus, refresh
     * blackout) are deliberately excluded: the returned cycle is a valid
     * *lower* bound on can*() turning true, usable as a scheduler wake-up
     * hint, never as an issue guarantee.
     */
    Cycle bankReadyActivate(std::uint32_t bank) const
    {
        return banks_[bank].readyActivate();
    }
    Cycle bankReadyPrecharge(std::uint32_t bank) const
    {
        return banks_[bank].readyPrecharge();
    }
    Cycle bankReadyColumn(std::uint32_t bank) const
    {
        return banks_[bank].readyColumn();
    }

    /** Issue ACTIVATE. @pre canActivate(bank, now). */
    void activate(std::uint32_t bank, std::uint64_t row, Cycle now);

    /** Issue PRECHARGE. @pre canPrecharge(bank, now). */
    void precharge(std::uint32_t bank, Cycle now);

    /**
     * Issue a column command. @pre canColumn(bank, is_write, now).
     * @return cycle at which the data transfer completes.
     */
    Cycle column(std::uint32_t bank, bool is_write, bool auto_precharge,
                 Cycle now);

    /** True when a refresh is due (always false if refresh is disabled). */
    bool refreshDue(Cycle now) const;

    /**
     * Perform a refresh at cycle @p now: all banks are precharged and
     * blocked for tRFC. Models an implicit precharge-all.
     * @pre refreshDue(now) && commandBusFree(now)
     */
    void refresh(Cycle now);

    const ChannelStats &stats() const { return stats_; }

    const TimingParams &timing() const { return timing_; }

    /**
     * Attach a request-lifecycle trace sink so channel-level events with
     * no associated request (refresh) appear in the trace too. nullptr
     * disables (the default).
     */
    void setTrace(telemetry::TraceBuffer *trace, std::uint8_t channel_id)
    {
        trace_ = trace;
        trace_channel_ = channel_id;
    }

  private:
    const TimingParams &timing_;
    std::vector<Bank> banks_;

    Cycle cmd_bus_free_ = 0;     ///< earliest next command
    Cycle data_bus_free_ = 0;    ///< earliest next data-burst start
    Cycle next_column_ok_ = 0;   ///< tCCD gate
    Cycle read_col_ok_ = 0;      ///< write->read turnaround gate
    Cycle write_col_ok_ = 0;     ///< read->write turnaround gate
    Cycle next_act_ok_ = 0;      ///< tRRD gate
    Cycle next_refresh_due_ = 0; ///< when refresh is enabled
    std::array<Cycle, 4> act_history_{}; ///< ring of recent ACT times (tFAW)
    std::uint32_t act_history_pos_ = 0;
    std::uint64_t acts_issued_ = 0; ///< lifetime ACT count (ring validity)

    telemetry::TraceBuffer *trace_ = nullptr;
    std::uint8_t trace_channel_ = 0;

    ChannelStats stats_;
};

} // namespace padc::dram

#endif // PADC_DRAM_CHANNEL_HH
