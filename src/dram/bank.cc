#include "dram/bank.hh"

#include <algorithm>
#include <cassert>

namespace padc::dram
{

Bank::Bank(const TimingParams &timing) : timing_(timing)
{
}

void
Bank::activate(Cycle now, std::uint64_t row)
{
    assert(canActivate(now));
    assert(row != kNoOpenRow);
    open_row_ = row;
    ready_column_ = now + timing_.toCpu(timing_.tRCD);
    ready_precharge_ = now + timing_.toCpu(timing_.tRAS);
    ready_activate_ = now + timing_.toCpu(timing_.tRC);
    ++stats_.activates;
}

void
Bank::precharge(Cycle now)
{
    assert(canPrecharge(now));
    open_row_ = kNoOpenRow;
    ready_activate_ = std::max(ready_activate_, now + timing_.toCpu(timing_.tRP));
    ++stats_.precharges;
}

Cycle
Bank::read(Cycle now, bool auto_precharge)
{
    assert(canColumn(now));
    const Cycle data_end =
        now + timing_.toCpu(timing_.tCL) + timing_.toCpu(timing_.tBURST);
    ready_precharge_ =
        std::max(ready_precharge_, now + timing_.toCpu(timing_.tRTP));
    ++stats_.reads;
    if (auto_precharge) {
        // The device internally precharges as soon as tRTP/tRAS allow.
        const Cycle pre_at = ready_precharge_;
        open_row_ = kNoOpenRow;
        ready_activate_ =
            std::max(ready_activate_, pre_at + timing_.toCpu(timing_.tRP));
        ++stats_.precharges;
    }
    return data_end;
}

Cycle
Bank::write(Cycle now, bool auto_precharge)
{
    assert(canColumn(now));
    const Cycle data_end =
        now + timing_.toCpu(timing_.tCWL) + timing_.toCpu(timing_.tBURST);
    ready_precharge_ =
        std::max(ready_precharge_, data_end + timing_.toCpu(timing_.tWR));
    ++stats_.writes;
    if (auto_precharge) {
        const Cycle pre_at = ready_precharge_;
        open_row_ = kNoOpenRow;
        ready_activate_ =
            std::max(ready_activate_, pre_at + timing_.toCpu(timing_.tRP));
        ++stats_.precharges;
    }
    return data_end;
}

void
Bank::refresh(Cycle ready)
{
    open_row_ = kNoOpenRow;
    ready_activate_ = std::max(ready_activate_, ready);
    ready_column_ = std::max(ready_column_, ready);
    ready_precharge_ = std::max(ready_precharge_, ready);
}

} // namespace padc::dram
