/**
 * @file
 * DDR3 timing and geometry parameters for the DRAM device model.
 *
 * The baseline values model a DDR3-1333-like part behind a 667 MHz
 * command clock and a 16-byte-wide data bus (paper Table 4): a 64B cache
 * line is one BL=4 burst, i.e. two command-clock cycles of data-bus
 * occupancy. The simulator's global clock runs in processor cycles;
 * cpu_per_dram_cycle converts between the domains (4 GHz : 667 MHz = 6).
 *
 * With these parameters a row-hit read completes in
 * tCL + tBURST = 12 DRAM cycles = 72 processor cycles, and a row-conflict
 * read in tRP + tRCD + tCL + tBURST = 32 DRAM cycles = 192 processor
 * cycles -- preserving the paper's ~3x hit/conflict latency ratio
 * (Section 2.1: 12.5 ns vs 37.5 ns).
 */

#ifndef PADC_DRAM_TIMING_HH
#define PADC_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace padc::dram
{

/**
 * Raw DDR3 timing parameters, expressed in DRAM command-clock cycles.
 *
 * Only the constraints that matter at cache-line granularity are
 * modelled; sub-line column timings (tCCD interplay with BC4 etc.) are
 * out of scope since every access is one full-line burst.
 */
struct TimingParams
{
    /** Processor cycles per DRAM command-clock cycle. */
    std::uint32_t cpu_per_dram_cycle = 6;

    std::uint32_t tRCD = 10;  ///< activate -> column command
    std::uint32_t tRP = 10;   ///< precharge -> activate
    std::uint32_t tCL = 10;   ///< read column command -> first data
    std::uint32_t tCWL = 8;   ///< write column command -> first data
    std::uint32_t tRAS = 24;  ///< activate -> precharge (same bank)
    std::uint32_t tRC = 34;   ///< activate -> activate (same bank)
    std::uint32_t tBURST = 2; ///< data-bus occupancy of one 64B line (BL=4)
    std::uint32_t tCCD = 2;   ///< column command -> column command
    std::uint32_t tRRD = 4;   ///< activate -> activate (different banks)
    std::uint32_t tFAW = 20;  ///< window for at most four activates
    std::uint32_t tWTR = 5;   ///< end of write data -> read column command
    std::uint32_t tWR = 10;   ///< end of write data -> precharge
    std::uint32_t tRTP = 5;   ///< read column command -> precharge
    std::uint32_t tREFI = 5200; ///< average refresh interval
    std::uint32_t tRFC = 74;    ///< refresh cycle time

    bool refresh_enabled = false; ///< periodic refresh (off for parity
                                  ///< with the paper's experiments)

    /** Convert a duration in DRAM cycles to processor cycles. */
    Cycle toCpu(std::uint32_t dram_cycles) const
    {
        return static_cast<Cycle>(dram_cycles) * cpu_per_dram_cycle;
    }

    /**
     * Validate internal consistency (e.g. tRC >= tRAS + tRP).
     * @retval true when the parameter set is self-consistent.
     */
    bool valid() const;
};

/** Bank-interleaving granularity of the address map. */
enum class Interleave : std::uint8_t
{
    /**
     * Consecutive cache lines rotate across channels, then banks
     * (row:col:bank:channel:offset). The usual controller layout: a
     * sequential stream keeps one row open in *every* bank, and
     * concurrent streams continuously share banks -- which is what makes
     * demand/prefetch row-buffer interference (paper Fig. 2) pervasive.
     */
    Line,

    /**
     * Consecutive cache lines fill a whole row before switching banks
     * (row:bank:channel:col:offset). Streams get a private bank for a
     * full row; provided as an ablation.
     */
    Row,
};

/** DRAM array geometry. */
struct Geometry
{
    std::uint32_t channels = 1;          ///< independent channels/controllers
    std::uint32_t banks_per_channel = 8; ///< banks per channel
    std::uint32_t row_bytes = 4096;      ///< row-buffer (page) size

    Interleave interleave = Interleave::Line;

    /**
     * Permutation-based page interleaving (Zhang et al., ISCA-27):
     * XOR the bank index with the low bits of the row index to spread
     * conflicting rows across banks (paper Section 6.13).
     */
    bool permutation_interleaving = false;

    /** Cache lines per row. */
    std::uint32_t linesPerRow() const { return row_bytes / kLineBytes; }

    /** Power-of-two check for all dimensions. */
    bool valid() const;
};

} // namespace padc::dram

#endif // PADC_DRAM_TIMING_HH
