/**
 * @file
 * Single DRAM bank state machine.
 *
 * A bank tracks its open row (if any) and the earliest processor cycles
 * at which each command class may legally be issued to it. Cross-bank
 * and bus constraints (tRRD, tFAW, tCCD, data-bus occupancy, write/read
 * turnaround) are enforced one level up, in dram::Channel.
 */

#ifndef PADC_DRAM_BANK_HH
#define PADC_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace padc::dram
{

/** Sentinel row value meaning "no row open / bank precharged". */
inline constexpr std::uint64_t kNoOpenRow =
    std::numeric_limits<std::uint64_t>::max();

/**
 * One DRAM bank: open-row register plus per-command readiness timestamps.
 *
 * All timestamps are in processor cycles. The caller is responsible for
 * issuing commands only when the corresponding can*() predicate holds.
 */
class Bank
{
  public:
    explicit Bank(const TimingParams &timing);

    /** Row currently latched in the row buffer, or kNoOpenRow. */
    std::uint64_t openRow() const { return open_row_; }

    /** True when some row is open in the row buffer. */
    bool isOpen() const { return open_row_ != kNoOpenRow; }

    /** True when an ACTIVATE may be issued at cycle now. */
    bool canActivate(Cycle now) const
    {
        return !isOpen() && now >= ready_activate_;
    }

    /** True when a PRECHARGE may be issued at cycle now. */
    bool canPrecharge(Cycle now) const
    {
        return isOpen() && now >= ready_precharge_;
    }

    /** True when a column (read/write) command may be issued at now. */
    bool canColumn(Cycle now) const { return isOpen() && now >= ready_column_; }

    /**
     * Earliest cycles at which each command class becomes legal as far as
     * *this bank's* state is concerned (ignoring the open-row predicate
     * and all channel-global constraints). Exposed so a scheduler can
     * cache a per-bank lower bound on the next interesting cycle instead
     * of re-polling can*() every cycle.
     */
    Cycle readyActivate() const { return ready_activate_; }
    Cycle readyPrecharge() const { return ready_precharge_; }
    Cycle readyColumn() const { return ready_column_; }

    /**
     * Issue ACTIVATE for @p row at cycle @p now.
     * @pre canActivate(now)
     */
    void activate(Cycle now, std::uint64_t row);

    /**
     * Issue PRECHARGE at cycle @p now.
     * @pre canPrecharge(now)
     */
    void precharge(Cycle now);

    /**
     * Issue a READ column command at cycle @p now.
     * @pre canColumn(now)
     * @param auto_precharge close the row once tRTP/tRAS allow (used by the
     *        closed-row policy).
     * @return processor cycle at which the full line has been transferred.
     */
    Cycle read(Cycle now, bool auto_precharge);

    /**
     * Issue a WRITE column command at cycle @p now.
     * @pre canColumn(now)
     * @param auto_precharge close the row once write recovery completes.
     * @return processor cycle at which the write data transfer completes.
     */
    Cycle write(Cycle now, bool auto_precharge);

    /**
     * Force the bank into the precharged state as part of a refresh; the
     * bank may not be activated again before @p ready.
     */
    void refresh(Cycle ready);

    /** Per-bank command counters (monotonic over the simulation). */
    struct Stats
    {
        std::uint64_t activates = 0;
        std::uint64_t precharges = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
    };

    const Stats &stats() const { return stats_; }

  private:
    const TimingParams &timing_;
    std::uint64_t open_row_ = kNoOpenRow;
    Cycle ready_activate_ = 0;  ///< earliest next ACTIVATE
    Cycle ready_precharge_ = 0; ///< earliest next PRECHARGE
    Cycle ready_column_ = 0;    ///< earliest next column command
    Stats stats_;
};

} // namespace padc::dram

#endif // PADC_DRAM_BANK_HH
