/**
 * @file
 * Physical address to DRAM coordinate mapping.
 *
 * The default map is row:bank:channel:column (low-order column bits) so
 * that consecutive cache lines fall into the same row of the same bank --
 * the layout that gives streaming workloads their row-buffer locality and
 * that the paper's row-hit arguments rely on. Channel bits (when more
 * than one controller is present) sit above the column so each controller
 * still sees full-row streams. The optional permutation mode XORs the
 * bank index with low row bits (Zhang et al.) for Section 6.13.
 */

#ifndef PADC_DRAM_ADDRESS_MAP_HH
#define PADC_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace padc::dram
{

/** Decomposed DRAM coordinates of one cache line. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t col = 0; ///< line index within the row

    bool operator==(const DramCoord &other) const = default;
};

/**
 * Maps cache-line addresses to DRAM coordinates for a given geometry.
 *
 * The mapping is a pure function of the address; the object just caches
 * the derived shift/mask values.
 */
class AddressMap
{
  public:
    /** @param geometry must satisfy Geometry::valid(). */
    explicit AddressMap(const Geometry &geometry);

    /** Map a byte address (any byte within a line) to DRAM coordinates. */
    DramCoord map(Addr addr) const;

    /**
     * Inverse mapping, for tests and trace tooling: reconstruct the
     * line-aligned byte address of a coordinate.
     */
    Addr unmap(const DramCoord &coord) const;

    const Geometry &geometry() const { return geometry_; }

  private:
    Geometry geometry_;
    std::uint32_t col_bits_;
    std::uint32_t chan_bits_;
    std::uint32_t bank_bits_;
};

} // namespace padc::dram

#endif // PADC_DRAM_ADDRESS_MAP_HH
