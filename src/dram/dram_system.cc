#include "dram/dram_system.hh"

namespace padc::dram
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
DramConfig::validate(ConfigErrors &errors, const std::string &prefix) const
{
    // Mirrors TimingParams::valid() / Geometry::valid(), with one named
    // diagnostic per violated constraint.
    if (timing.cpu_per_dram_cycle == 0)
        errors.add(prefix + ".timing.cpu_per_dram_cycle", "must be >= 1");
    if (timing.tBURST == 0)
        errors.add(prefix + ".timing.tBURST", "must be >= 1");
    if (timing.tRC < timing.tRAS + timing.tRP) {
        errors.add(prefix + ".timing.tRC",
                   "must be >= tRAS + tRP (" + std::to_string(timing.tRC) +
                       " < " + std::to_string(timing.tRAS) + " + " +
                       std::to_string(timing.tRP) + ")");
    }
    if (timing.tRAS < timing.tRCD) {
        errors.add(prefix + ".timing.tRAS",
                   "must be >= tRCD (" + std::to_string(timing.tRAS) +
                       " < " + std::to_string(timing.tRCD) + ")");
    }
    if (timing.tFAW < timing.tRRD) {
        errors.add(prefix + ".timing.tFAW",
                   "must be >= tRRD (" + std::to_string(timing.tFAW) +
                       " < " + std::to_string(timing.tRRD) + ")");
    }
    if (!isPow2(geometry.channels))
        errors.add(prefix + ".geometry.channels",
                   "must be a non-zero power of two; got " +
                       std::to_string(geometry.channels));
    if (!isPow2(geometry.banks_per_channel))
        errors.add(prefix + ".geometry.banks_per_channel",
                   "must be a non-zero power of two; got " +
                       std::to_string(geometry.banks_per_channel));
    if (!isPow2(geometry.row_bytes) || geometry.row_bytes < kLineBytes) {
        errors.add(prefix + ".geometry.row_bytes",
                   "must be a power of two >= the line size (" +
                       std::to_string(kLineBytes) + "); got " +
                       std::to_string(geometry.row_bytes));
    }
}

DramSystem::DramSystem(const DramConfig &config)
    : config_(config), map_(config.geometry)
{
    channels_.reserve(config.geometry.channels);
    for (std::uint32_t i = 0; i < config.geometry.channels; ++i) {
        channels_.push_back(std::make_unique<Channel>(
            config_.timing, config_.geometry.banks_per_channel));
    }
}

ChannelStats
DramSystem::totalStats() const
{
    ChannelStats total;
    for (const auto &ch : channels_) {
        const ChannelStats &s = ch->stats();
        total.activates += s.activates;
        total.precharges += s.precharges;
        total.reads += s.reads;
        total.writes += s.writes;
        total.refreshes += s.refreshes;
    }
    return total;
}

} // namespace padc::dram
