#include "dram/dram_system.hh"

namespace padc::dram
{

DramSystem::DramSystem(const DramConfig &config)
    : config_(config), map_(config.geometry)
{
    channels_.reserve(config.geometry.channels);
    for (std::uint32_t i = 0; i < config.geometry.channels; ++i) {
        channels_.push_back(std::make_unique<Channel>(
            config_.timing, config_.geometry.banks_per_channel));
    }
}

ChannelStats
DramSystem::totalStats() const
{
    ChannelStats total;
    for (const auto &ch : channels_) {
        const ChannelStats &s = ch->stats();
        total.activates += s.activates;
        total.precharges += s.precharges;
        total.reads += s.reads;
        total.writes += s.writes;
        total.refreshes += s.refreshes;
    }
    return total;
}

} // namespace padc::dram
