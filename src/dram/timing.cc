#include "dram/timing.hh"

namespace padc::dram
{

namespace
{

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

bool
TimingParams::valid() const
{
    if (cpu_per_dram_cycle == 0 || tBURST == 0)
        return false;
    if (tRC < tRAS + tRP)
        return false;
    if (tRAS < tRCD)
        return false;
    if (tFAW < tRRD)
        return false;
    return true;
}

bool
Geometry::valid() const
{
    return isPow2(channels) && isPow2(banks_per_channel) &&
           isPow2(row_bytes) && row_bytes >= kLineBytes;
}

} // namespace padc::dram
