#include "dram/address_map.hh"

#include <bit>
#include <cassert>

namespace padc::dram
{

namespace
{

std::uint32_t
log2u(std::uint32_t v)
{
    return static_cast<std::uint32_t>(std::bit_width(v) - 1);
}

} // namespace

AddressMap::AddressMap(const Geometry &geometry)
    : geometry_(geometry),
      col_bits_(log2u(geometry.linesPerRow())),
      chan_bits_(log2u(geometry.channels)),
      bank_bits_(log2u(geometry.banks_per_channel))
{
    assert(geometry.valid());
}

DramCoord
AddressMap::map(Addr addr) const
{
    Addr line = lineIndex(addr);

    DramCoord coord;
    if (geometry_.interleave == Interleave::Line) {
        coord.channel =
            static_cast<std::uint32_t>(line & ((1ULL << chan_bits_) - 1));
        line >>= chan_bits_;
        coord.bank =
            static_cast<std::uint32_t>(line & ((1ULL << bank_bits_) - 1));
        line >>= bank_bits_;
        coord.col =
            static_cast<std::uint32_t>(line & ((1ULL << col_bits_) - 1));
        line >>= col_bits_;
        coord.row = line;
    } else {
        coord.col =
            static_cast<std::uint32_t>(line & ((1ULL << col_bits_) - 1));
        line >>= col_bits_;
        coord.channel =
            static_cast<std::uint32_t>(line & ((1ULL << chan_bits_) - 1));
        line >>= chan_bits_;
        coord.bank =
            static_cast<std::uint32_t>(line & ((1ULL << bank_bits_) - 1));
        line >>= bank_bits_;
        coord.row = line;
    }

    if (geometry_.permutation_interleaving && bank_bits_ > 0) {
        const auto perm = static_cast<std::uint32_t>(
            coord.row & ((1ULL << bank_bits_) - 1));
        coord.bank ^= perm;
    }
    return coord;
}

Addr
AddressMap::unmap(const DramCoord &coord) const
{
    std::uint32_t bank = coord.bank;
    if (geometry_.permutation_interleaving && bank_bits_ > 0) {
        const auto perm = static_cast<std::uint32_t>(
            coord.row & ((1ULL << bank_bits_) - 1));
        bank ^= perm; // XOR is its own inverse
    }

    Addr line = coord.row;
    if (geometry_.interleave == Interleave::Line) {
        line = (line << col_bits_) | coord.col;
        line = (line << bank_bits_) | bank;
        line = (line << chan_bits_) | coord.channel;
    } else {
        line = (line << bank_bits_) | bank;
        line = (line << chan_bits_) | coord.channel;
        line = (line << col_bits_) | coord.col;
    }
    return lineToAddr(line);
}

} // namespace padc::dram
