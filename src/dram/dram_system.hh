/**
 * @file
 * DRAM device facade: address map plus one Channel per configured
 * channel. Each memory controller in the system drives exactly one
 * channel (the paper's dual-controller experiments instantiate two).
 */

#ifndef PADC_DRAM_DRAM_SYSTEM_HH
#define PADC_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace padc::dram
{

/** Complete DRAM configuration. */
struct DramConfig
{
    TimingParams timing;
    Geometry geometry;

    /**
     * Append one diagnostic per violated timing/geometry constraint
     * under @p prefix. Produces no errors exactly when both
     * TimingParams::valid() and Geometry::valid() hold.
     */
    void validate(ConfigErrors &errors, const std::string &prefix) const;
};

/**
 * The DRAM device array visible to the memory controllers.
 *
 * Owns the timing parameters, the address map, and the per-channel bank
 * arrays. Thread-free, tick-free: channels are advanced implicitly by
 * the cycle timestamps controllers pass into their methods.
 */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config);

    const DramConfig &config() const { return config_; }

    const AddressMap &addressMap() const { return map_; }

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    Channel &channel(std::uint32_t idx) { return *channels_[idx]; }
    const Channel &channel(std::uint32_t idx) const { return *channels_[idx]; }

    /** Map a byte address to its DRAM coordinates. */
    DramCoord map(Addr addr) const { return map_.map(addr); }

    /** Aggregate statistics over all channels. */
    ChannelStats totalStats() const;

  private:
    DramConfig config_;
    AddressMap map_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace padc::dram

#endif // PADC_DRAM_DRAM_SYSTEM_HH
