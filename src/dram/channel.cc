#include "dram/channel.hh"

#include <algorithm>
#include <cassert>

namespace padc::dram
{

Channel::Channel(const TimingParams &timing, std::uint32_t num_banks)
    : timing_(timing)
{
    assert(timing.valid());
    banks_.reserve(num_banks);
    for (std::uint32_t i = 0; i < num_banks; ++i)
        banks_.emplace_back(timing_);
    if (timing_.refresh_enabled)
        next_refresh_due_ = timing_.toCpu(timing_.tREFI);
}

bool
Channel::canActivate(std::uint32_t bank, Cycle now) const
{
    if (!commandBusFree(now) || !banks_[bank].canActivate(now))
        return false;
    if (now < next_act_ok_)
        return false;
    // tFAW: the fourth-most-recent activate must be at least tFAW old.
    // act_history_ is a ring buffer, so the slot we are about to overwrite
    // holds exactly that activate.
    if (acts_issued_ >= act_history_.size()) {
        const Cycle oldest = act_history_[act_history_pos_];
        if (now < oldest + timing_.toCpu(timing_.tFAW))
            return false;
    }
    return true;
}

bool
Channel::canPrecharge(std::uint32_t bank, Cycle now) const
{
    return commandBusFree(now) && banks_[bank].canPrecharge(now);
}

bool
Channel::canColumn(std::uint32_t bank, bool is_write, Cycle now) const
{
    if (!commandBusFree(now) || !banks_[bank].canColumn(now))
        return false;
    if (now < next_column_ok_)
        return false;
    if (is_write && now < write_col_ok_)
        return false;
    if (!is_write && now < read_col_ok_)
        return false;
    const std::uint32_t lead = is_write ? timing_.tCWL : timing_.tCL;
    if (now + timing_.toCpu(lead) < data_bus_free_)
        return false;
    return true;
}

void
Channel::activate(std::uint32_t bank, std::uint64_t row, Cycle now)
{
    assert(canActivate(bank, now));
    banks_[bank].activate(now, row);
    cmd_bus_free_ = now + timing_.toCpu(1);
    next_act_ok_ = now + timing_.toCpu(timing_.tRRD);
    act_history_[act_history_pos_] = now;
    act_history_pos_ = (act_history_pos_ + 1) % act_history_.size();
    ++acts_issued_;
    ++stats_.activates;
}

void
Channel::precharge(std::uint32_t bank, Cycle now)
{
    assert(canPrecharge(bank, now));
    banks_[bank].precharge(now);
    cmd_bus_free_ = now + timing_.toCpu(1);
    ++stats_.precharges;
}

Cycle
Channel::column(std::uint32_t bank, bool is_write, bool auto_precharge,
                Cycle now)
{
    assert(canColumn(bank, is_write, now));
    cmd_bus_free_ = now + timing_.toCpu(1);
    next_column_ok_ = now + timing_.toCpu(timing_.tCCD);

    Cycle data_end;
    if (is_write) {
        data_end = banks_[bank].write(now, auto_precharge);
        read_col_ok_ =
            std::max(read_col_ok_, data_end + timing_.toCpu(timing_.tWTR));
        ++stats_.writes;
    } else {
        data_end = banks_[bank].read(now, auto_precharge);
        // A write burst may not start before the read burst has drained;
        // gating the column command by the read's data end is a safe
        // (slightly conservative) approximation of tRTW.
        write_col_ok_ = std::max(write_col_ok_, data_end);
        ++stats_.reads;
    }
    data_bus_free_ = data_end;
    return data_end;
}

bool
Channel::refreshDue(Cycle now) const
{
    return timing_.refresh_enabled && now >= next_refresh_due_;
}

void
Channel::refresh(Cycle now)
{
    assert(refreshDue(now) && commandBusFree(now));
    const Cycle ready = now + timing_.toCpu(timing_.tRFC);
    for (auto &bank : banks_)
        bank.refresh(ready);
    cmd_bus_free_ = ready;
    next_refresh_due_ += timing_.toCpu(timing_.tREFI);
    ++stats_.refreshes;
    if (trace_ != nullptr) {
        telemetry::TraceEvent event;
        event.cycle = now;
        event.kind = telemetry::EventKind::Refresh;
        event.channel = trace_channel_;
        event.bank = telemetry::TraceEvent::kNoBank;
        trace_->record(event);
    }
}

} // namespace padc::dram
