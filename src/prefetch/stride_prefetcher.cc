#include "prefetch/stride_prefetcher.hh"

namespace padc::prefetch
{

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config)
    : config_(config), degree_(config.degree),
      table_(config.stride_entries)
{
}

void
StridePrefetcher::setAggressiveness(std::uint32_t degree,
                                    std::uint32_t distance)
{
    (void)distance; // the stride prefetcher has no distance notion
    degree_ = degree;
}

std::uint32_t
StridePrefetcher::indexOf(Addr pc) const
{
    // Fibonacci hash of the PC into the table.
    const std::uint64_t h = pc * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::uint32_t>(h >> 32) %
           static_cast<std::uint32_t>(table_.size());
}

void
StridePrefetcher::observe(Addr addr, Addr pc, bool miss, bool train_only,
                          std::vector<Addr> &out)
{
    (void)miss;
    const auto line = static_cast<std::int64_t>(lineIndex(addr));
    TableEntry &entry = table_[indexOf(pc)];

    if (entry.tag != pc) {
        if (train_only)
            return; // only-train: do not steal entries during runahead
        entry.tag = pc;
        entry.last_line = line;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const std::int64_t delta = line - entry.last_line;
    entry.last_line = line;
    if (delta == 0)
        return;

    if (delta == entry.stride) {
        if (entry.confidence < 3)
            ++entry.confidence;
    } else {
        if (entry.confidence > 0) {
            --entry.confidence;
        } else {
            entry.stride = delta;
        }
        return;
    }

    if (entry.confidence >= 2) {
        for (std::uint32_t k = 1; k <= degree_; ++k) {
            const std::int64_t target =
                line + static_cast<std::int64_t>(k) * entry.stride;
            if (target < 0)
                break;
            out.push_back(lineToAddr(static_cast<Addr>(target)));
        }
    }
}

} // namespace padc::prefetch
