#include "prefetch/fdp.hh"

namespace padc::prefetch
{

PollutionFilter::PollutionFilter(std::uint32_t bits) : bits_(bits, false)
{
}

std::uint32_t
PollutionFilter::indexOf(Addr line_addr) const
{
    const std::uint64_t h = lineIndex(line_addr) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::uint32_t>(h >> 40) %
           static_cast<std::uint32_t>(bits_.size());
}

void
PollutionFilter::insert(Addr line_addr)
{
    bits_[indexOf(line_addr)] = true;
}

bool
PollutionFilter::checkAndClear(Addr line_addr)
{
    const std::uint32_t idx = indexOf(line_addr);
    const bool hit = bits_[idx];
    bits_[idx] = false;
    return hit;
}

FdpController::FdpController(const FdpConfig &config)
    : config_(config), level_(config.initial_level)
{
    if (level_ < 1)
        level_ = 1;
    if (level_ > kLevels.size())
        level_ = kLevels.size();
}

void
FdpController::evaluate(const IntervalCounts &counts)
{
    const double accuracy =
        counts.prefetches_sent == 0
            ? 1.0
            : static_cast<double>(counts.prefetches_used) /
                  static_cast<double>(counts.prefetches_sent);
    const double lateness =
        counts.prefetches_used == 0
            ? 0.0
            : static_cast<double>(counts.late_prefetches) /
                  static_cast<double>(counts.prefetches_used);
    const double pollution =
        counts.demand_accesses == 0
            ? 0.0
            : static_cast<double>(counts.pollution_misses) /
                  static_cast<double>(counts.demand_accesses);

    int delta = 0;
    if (accuracy >= config_.accuracy_high) {
        // Accurate: ramp up, especially if prefetches arrive late.
        delta = lateness >= config_.lateness_threshold ? 1 : 0;
        if (level_ < 3)
            delta = 1; // accurate prefetchers should not idle at the bottom
    } else if (accuracy < config_.accuracy_low) {
        delta = -1;
    } else {
        // Middling accuracy: pollution decides.
        if (pollution >= config_.pollution_threshold)
            delta = -1;
        else if (lateness >= config_.lateness_threshold)
            delta = 1;
    }
    if (pollution >= config_.pollution_threshold &&
        accuracy < config_.accuracy_high) {
        delta = -1;
    }

    if (delta > 0 && level_ < kLevels.size())
        ++level_;
    else if (delta < 0 && level_ > 1)
        --level_;
}

} // namespace padc::prefetch
