#include "prefetch/ddpf.hh"

namespace padc::prefetch
{

DdpfFilter::DdpfFilter(const DdpfConfig &config)
    : config_(config), counters_(config.table_entries, config.initial)
{
}

std::uint32_t
DdpfFilter::indexOf(Addr line_addr, Addr pc) const
{
    // gshare-style: fold the PC and the line address together so the
    // same static context maps to the same counter. Deliberately
    // untagged -- aliasing is part of the mechanism being modelled.
    const std::uint64_t h =
        (pc * 0x9E3779B97F4A7C15ULL) ^ (lineIndex(line_addr) *
                                        0xC2B2AE3D27D4EB4FULL);
    return static_cast<std::uint32_t>(h >> 40) %
           static_cast<std::uint32_t>(counters_.size());
}

bool
DdpfFilter::allow(Addr line_addr, Addr pc) const
{
    return counters_[indexOf(line_addr, pc)] >= config_.threshold;
}

void
DdpfFilter::update(Addr line_addr, Addr pc, bool useful)
{
    std::uint8_t &counter = counters_[indexOf(line_addr, pc)];
    if (useful) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace padc::prefetch
