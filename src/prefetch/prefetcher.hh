/**
 * @file
 * Hardware prefetcher interface and factory (paper Sections 2.2, 2.3,
 * 6.11).
 *
 * Prefetchers observe L2 accesses (demand hits and misses) and emit
 * candidate prefetch line addresses. Issue-side filtering (already
 * cached, already in flight, MSHR or request buffer full, DDPF) is
 * performed by the system, not by the prefetcher.
 */

#ifndef PADC_PREFETCH_PREFETCHER_HH
#define PADC_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace padc::prefetch
{

/** Configuration for all prefetcher kinds (unused knobs ignored). */
struct PrefetcherConfig
{
    PrefetcherKind kind = PrefetcherKind::Stream;

    // --- stream prefetcher (IBM POWER4/5-like; paper Section 2.3) ---
    std::uint32_t stream_entries = 32; ///< concurrent streams
    std::uint32_t degree = 4;          ///< N: prefetches per trigger

    /**
     * D: monitoring-region length / lookahead, in lines.
     *
     * The paper uses 64; our default is 16. This is a deliberate time
     * rescaling (see DESIGN.md): the paper's cores consume a line every
     * ~150 cycles, so 64 lines of lookahead gave them a lead-to-DRAM-
     * latency ratio of a few; our faster OoO-lite cores consume a line
     * every ~10-30 cycles, and 16 lines reproduces a comparable ratio
     * (prefetches marginally timely under load). The distance-sweep
     * ablation bench exercises other values including the paper's 64.
     */
    std::uint32_t distance = 16;

    /**
     * Training window: an access within this many lines of a newly
     * allocated stream's start determines the stream direction.
     */
    std::uint32_t train_window = 16;

    // --- PC-based stride prefetcher ---
    std::uint32_t stride_entries = 256;

    // --- C/DC (CZone / Delta Correlation) ---
    std::uint32_t czone_shift = 16;     ///< log2 of the CZone size (64KB)
    std::uint32_t czone_entries = 64;   ///< tracked zones
    std::uint32_t delta_history = 16;   ///< deltas remembered per zone

    // --- Markov ---
    std::uint32_t markov_entries = 131072; ///< correlation-table entries
                                           ///< (the paper: "a large table")
    std::uint32_t markov_successors = 2; ///< successors per entry
};

/**
 * Abstract prefetcher. One instance per core; all addresses are from
 * that core's stream.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one L2 access and append candidate prefetch *byte*
     * addresses (line-aligned) to @p out.
     *
     * @param addr       accessed address
     * @param pc         PC of the access
     * @param miss       true if the access missed in the L2
     * @param train_only true during runahead execution: update internal
     *                   state but do not allocate new pattern entries
     *                   (the paper's "only-train" policy, Section 6.14)
     * @param out        receives prefetch candidates, nearest first
     */
    virtual void observe(Addr addr, Addr pc, bool miss, bool train_only,
                         std::vector<Addr> &out) = 0;

    /** Prefetcher name for reports. */
    virtual const char *name() const = 0;

    /**
     * Adjust aggressiveness (used by Feedback Directed Prefetching).
     * Default: no-op for prefetchers without a degree/distance notion.
     */
    virtual void setAggressiveness(std::uint32_t degree,
                                   std::uint32_t distance)
    {
        (void)degree;
        (void)distance;
    }

    /** Current degree (0 if not applicable). */
    virtual std::uint32_t currentDegree() const { return 0; }
};

/** Instantiate the prefetcher selected by @p config. */
std::unique_ptr<Prefetcher> makePrefetcher(const PrefetcherConfig &config);

} // namespace padc::prefetch

#endif // PADC_PREFETCH_PREFETCHER_HH
