/**
 * @file
 * PC-based stride prefetcher (Baer & Chen style; paper reference [1]).
 *
 * A reference prediction table indexed by load PC records the last line
 * address and the last observed stride per instruction. Two consecutive
 * identical strides raise the confidence enough to issue prefetches
 * `degree` strides ahead of the current access.
 */

#ifndef PADC_PREFETCH_STRIDE_PREFETCHER_HH
#define PADC_PREFETCH_STRIDE_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace padc::prefetch
{

/**
 * PC-indexed stride prefetcher; see file comment.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config);

    void observe(Addr addr, Addr pc, bool miss, bool train_only,
                 std::vector<Addr> &out) override;

    const char *name() const override { return "stride"; }

    void setAggressiveness(std::uint32_t degree,
                           std::uint32_t distance) override;

    std::uint32_t currentDegree() const override { return degree_; }

  private:
    struct TableEntry
    {
        Addr tag = kInvalidAddr;    ///< PC owning the entry
        std::int64_t last_line = 0; ///< last accessed line index
        std::int64_t stride = 0;    ///< last observed stride, in lines
        std::uint8_t confidence = 0; ///< saturating 0..3
    };

    std::uint32_t indexOf(Addr pc) const;

    PrefetcherConfig config_;
    std::uint32_t degree_;
    std::vector<TableEntry> table_;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_STRIDE_PREFETCHER_HH
