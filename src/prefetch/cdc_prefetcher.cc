#include "prefetch/cdc_prefetcher.hh"

namespace padc::prefetch
{

CdcPrefetcher::CdcPrefetcher(const PrefetcherConfig &config)
    : config_(config), degree_(config.degree), zones_(config.czone_entries)
{
    for (auto &zone : zones_)
        zone.deltas.resize(config.delta_history, 0);
}

void
CdcPrefetcher::setAggressiveness(std::uint32_t degree,
                                 std::uint32_t distance)
{
    (void)distance;
    degree_ = degree;
}

CdcPrefetcher::Zone *
CdcPrefetcher::zoneFor(std::uint64_t czone, bool allocate)
{
    Zone *victim = &zones_[0];
    for (auto &zone : zones_) {
        if (zone.tag == czone)
            return &zone;
        if (zone.lru < victim->lru)
            victim = &zone;
    }
    if (!allocate)
        return nullptr;
    victim->tag = czone;
    victim->last_line = -1;
    victim->head = 0;
    victim->count = 0;
    victim->lru = lru_clock_++;
    return victim;
}

void
CdcPrefetcher::observe(Addr addr, Addr pc, bool miss, bool train_only,
                       std::vector<Addr> &out)
{
    (void)pc;
    if (!miss)
        return; // C/DC correlates the miss stream only

    const auto line = static_cast<std::int64_t>(lineIndex(addr));
    const std::uint64_t czone = addr >> config_.czone_shift;

    Zone *zone = zoneFor(czone, !train_only);
    if (zone == nullptr)
        return;
    zone->lru = lru_clock_++;

    if (zone->last_line < 0) {
        zone->last_line = line;
        return;
    }

    const std::int64_t delta = line - zone->last_line;
    zone->last_line = line;
    if (delta == 0)
        return;

    // Record the new delta in the circular history.
    const auto cap = static_cast<std::uint32_t>(zone->deltas.size());
    zone->deltas[zone->head] = delta;
    zone->head = (zone->head + 1) % cap;
    if (zone->count < cap)
        ++zone->count;

    if (zone->count < 3)
        return;

    // Delta correlation: find the most recent earlier occurrence of the
    // last two deltas (d_prev, d_last) and replay what followed it.
    auto at = [&](std::uint32_t back) {
        // back = 1 is the newest delta.
        return zone->deltas[(zone->head + cap - back) % cap];
    };
    const std::int64_t d_last = at(1);
    const std::int64_t d_prev = at(2);

    std::uint32_t match_back = 0;
    for (std::uint32_t back = 3; back + 1 <= zone->count; ++back) {
        if (at(back) == d_last && at(back + 1) == d_prev) {
            match_back = back;
            break;
        }
    }
    if (match_back == 0)
        return;

    // Replay the deltas that followed the matched pair; if the replay
    // window is shorter than the degree, repeat the pattern cyclically
    // (the pattern evidently loops, e.g. a constant stride).
    std::int64_t target = line;
    std::uint32_t back = match_back - 1;
    for (std::uint32_t issued = 0; issued < degree_; ++issued) {
        target += at(back);
        if (target < 0)
            break;
        out.push_back(lineToAddr(static_cast<Addr>(target)));
        back = back > 1 ? back - 1 : match_back - 1;
    }
}

} // namespace padc::prefetch
