#include "prefetch/prefetcher.hh"

#include "prefetch/cdc_prefetcher.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"

namespace padc::prefetch
{

namespace
{

/** Prefetcher that never prefetches (PrefetcherKind::None). */
class NullPrefetcher : public Prefetcher
{
  public:
    void
    observe(Addr, Addr, bool, bool, std::vector<Addr> &) override
    {
    }

    const char *name() const override { return "none"; }
};

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const PrefetcherConfig &config)
{
    switch (config.kind) {
      case PrefetcherKind::None:
        return std::make_unique<NullPrefetcher>();
      case PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>(config);
      case PrefetcherKind::Stride:
        return std::make_unique<StridePrefetcher>(config);
      case PrefetcherKind::Cdc:
        return std::make_unique<CdcPrefetcher>(config);
      case PrefetcherKind::Markov:
        return std::make_unique<MarkovPrefetcher>(config);
    }
    return std::make_unique<NullPrefetcher>();
}

} // namespace padc::prefetch
