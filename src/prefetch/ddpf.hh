/**
 * @file
 * Dynamic Data Prefetch Filtering (Zhuang & Lee; paper references
 * [40, 41], compared against in Section 6.12).
 *
 * A table of two-bit saturating counters records whether prefetches
 * from a given (PC, address) context were useful in the past; a
 * prefetch is issued only if its counter is at or above the filtering
 * threshold. The table is shared and untagged (gshare-style indexing),
 * so aliasing between contexts can suppress useful prefetches -- the
 * behaviour the paper's comparison highlights.
 */

#ifndef PADC_PREFETCH_DDPF_HH
#define PADC_PREFETCH_DDPF_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace padc::prefetch
{

/** DDPF configuration (paper Section 6.12 settings). */
struct DdpfConfig
{
    std::uint32_t table_entries = 4096; ///< prefetch history table size
    std::uint8_t threshold = 2;         ///< issue when counter >= threshold
    std::uint8_t initial = 3;           ///< counters start permissive
};

/**
 * DDPF usefulness predictor; see file comment.
 */
class DdpfFilter
{
  public:
    explicit DdpfFilter(const DdpfConfig &config);

    /** Should a prefetch for (line_addr, pc) be issued? */
    bool allow(Addr line_addr, Addr pc) const;

    /**
     * Record the outcome of a completed prefetch: @p useful is true when
     * the prefetched line was referenced by a demand before eviction.
     */
    void update(Addr line_addr, Addr pc, bool useful);

    /** Statistics: prefetches suppressed by the filter. */
    std::uint64_t filtered() const { return filtered_; }

    /** Count a suppressed prefetch (called by the issue path). */
    void noteFiltered() { ++filtered_; }

  private:
    std::uint32_t indexOf(Addr line_addr, Addr pc) const;

    DdpfConfig config_;
    std::vector<std::uint8_t> counters_;
    std::uint64_t filtered_ = 0;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_DDPF_HH
