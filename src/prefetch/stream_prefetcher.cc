#include "prefetch/stream_prefetcher.hh"

#include <cstdlib>

namespace padc::prefetch
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &config)
    : config_(config), degree_(config.degree), distance_(config.distance),
      entries_(config.stream_entries)
{
}

void
StreamPrefetcher::setAggressiveness(std::uint32_t degree,
                                    std::uint32_t distance)
{
    degree_ = degree;
    distance_ = distance;
}

StreamPrefetcher::StreamEntry *
StreamPrefetcher::match(std::int64_t line)
{
    for (auto &entry : entries_) {
        switch (entry.state) {
          case StreamState::Allocated:
            if (std::llabs(line - entry.start) <=
                static_cast<std::int64_t>(config_.train_window)) {
                return &entry;
            }
            break;
          case StreamState::Monitoring: {
            // Extend the match window beyond the region on both sides:
            // behind, so late demands catching up with in-flight
            // prefetches keep matching this stream instead of allocating
            // a duplicate; ahead, so a consumer that slightly outran the
            // front re-anchors the stream instead of re-training.
            const auto slack =
                static_cast<std::int64_t>(config_.train_window);
            const std::int64_t lo =
                std::min(entry.start, entry.end) - slack;
            const std::int64_t hi =
                std::max(entry.start, entry.end) + slack;
            if (line >= lo && line <= hi)
                return &entry;
            break;
          }
          case StreamState::Invalid:
            break;
        }
    }
    return nullptr;
}

StreamPrefetcher::StreamEntry *
StreamPrefetcher::allocate(std::int64_t line)
{
    StreamEntry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.state == StreamState::Invalid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }
    victim->state = StreamState::Allocated;
    victim->start = line;
    victim->end = line;
    victim->dir = 0;
    victim->lru = lru_clock_++;
    return victim;
}

void
StreamPrefetcher::trigger(StreamEntry &entry, std::vector<Addr> &out)
{
    // Paper Section 2.3: an access within the monitoring region
    // [start, end] sends N prefetches for the lines just beyond the
    // region's far end and then shifts the region by N. Because accesses
    // behind the (shifted) region do not trigger, the region advances at
    // most as fast as the consumer crosses its near edge -- the lookahead
    // stays ~`distance` lines and never runs away.
    for (std::uint32_t k = 1; k <= degree_; ++k) {
        const std::int64_t target =
            entry.end + static_cast<std::int64_t>(k) * entry.dir;
        if (target < 0)
            break;
        out.push_back(lineToAddr(static_cast<Addr>(target)));
    }
    const std::int64_t shift =
        static_cast<std::int64_t>(degree_) * entry.dir;
    entry.start += shift;
    entry.end += shift;
}

void
StreamPrefetcher::observe(Addr addr, Addr pc, bool miss, bool train_only,
                          std::vector<Addr> &out)
{
    (void)pc;
    const auto line = static_cast<std::int64_t>(lineIndex(addr));

    StreamEntry *entry = match(line);
    if (entry == nullptr) {
        if (miss && !train_only)
            allocate(line);
        return;
    }
    entry->lru = lru_clock_++;

    if (entry->state == StreamState::Allocated) {
        if (line == entry->start)
            return; // same line; direction still unknown
        entry->dir = line > entry->start ? 1 : -1;
        entry->end = entry->start +
                     static_cast<std::int64_t>(distance_) * entry->dir;
        entry->state = StreamState::Monitoring;
        trigger(*entry, out);
        return;
    }

    // Monitoring: classify the access position relative to the region.
    const bool ascending = entry->dir > 0;
    const bool in_region = ascending
                               ? line >= entry->start && line <= entry->end
                               : line <= entry->start && line >= entry->end;
    if (in_region) {
        trigger(*entry, out);
        return;
    }
    const bool leading =
        ascending ? line > entry->end : line < entry->end;
    if (leading) {
        // The consumer outran the prefetch front (e.g. after prefetches
        // were dropped for lack of buffer space): re-anchor the region
        // at the consumer and resume.
        entry->start = line;
        entry->end = line +
                     static_cast<std::int64_t>(distance_) * entry->dir;
        trigger(*entry, out);
        return;
    }
    // Trailing access (late demand catching up): keeps the entry warm
    // (LRU already refreshed) but does not trigger, so the region cannot
    // outpace the consumer.
}

} // namespace padc::prefetch
