/**
 * @file
 * Aggressive stream prefetcher modelled on the IBM POWER4/5 design the
 * paper uses for its main results (Section 2.3).
 *
 * Each stream entry watches a monitoring region of D consecutive cache
 * lines. A new cache miss that matches no existing stream allocates an
 * entry (start pointer S). A subsequent access within the training
 * window of S fixes the stream direction and arms the monitoring region
 * [S, S + dir*D]. Any L2 access inside an armed region triggers N
 * prefetches beyond the region's far end and shifts the region by N
 * lines in the stream direction.
 */

#ifndef PADC_PREFETCH_STREAM_PREFETCHER_HH
#define PADC_PREFETCH_STREAM_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace padc::prefetch
{

/**
 * Stream prefetcher; see file comment.
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherConfig &config);

    void observe(Addr addr, Addr pc, bool miss, bool train_only,
                 std::vector<Addr> &out) override;

    const char *name() const override { return "stream"; }

    void setAggressiveness(std::uint32_t degree,
                           std::uint32_t distance) override;

    std::uint32_t currentDegree() const override { return degree_; }

    /** Current prefetch distance D (exposed for FDP and tests). */
    std::uint32_t currentDistance() const { return distance_; }

  private:
    enum class StreamState : std::uint8_t
    {
        Invalid,
        Allocated,  ///< start pointer recorded, direction unknown
        Monitoring, ///< direction known, region armed
    };

    struct StreamEntry
    {
        StreamState state = StreamState::Invalid;
        std::int64_t start = 0; ///< trailing edge (last consumer access)
        std::int64_t end = 0;   ///< prefetch front (last line prefetched)
        std::int8_t dir = 0;    ///< +1 ascending, -1 descending
        std::uint64_t lru = 0;
    };

    /** Entry whose training window or region covers @p line, or null. */
    StreamEntry *match(std::int64_t line);

    StreamEntry *allocate(std::int64_t line);

    void trigger(StreamEntry &entry, std::vector<Addr> &out);

    PrefetcherConfig config_;
    std::uint32_t degree_;
    std::uint32_t distance_;
    std::vector<StreamEntry> entries_;
    std::uint64_t lru_clock_ = 1;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_STREAM_PREFETCHER_HH
