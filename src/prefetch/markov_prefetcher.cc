#include "prefetch/markov_prefetcher.hh"

#include <algorithm>

namespace padc::prefetch
{

MarkovPrefetcher::MarkovPrefetcher(const PrefetcherConfig &config)
    : config_(config), table_(config.markov_entries)
{
}

std::uint32_t
MarkovPrefetcher::indexOf(Addr line_addr) const
{
    const std::uint64_t h = line_addr * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::uint32_t>(h >> 32) %
           static_cast<std::uint32_t>(table_.size());
}

void
MarkovPrefetcher::observe(Addr addr, Addr pc, bool miss, bool train_only,
                          std::vector<Addr> &out)
{
    (void)pc;
    if (!miss)
        return; // trained on and triggered by the miss stream

    const Addr line_addr = lineAlign(addr);

    // Train: record this miss as a successor of the previous miss.
    if (last_miss_line_ != kInvalidAddr && !train_only) {
        TableEntry &prev = table_[indexOf(last_miss_line_)];
        if (prev.tag != last_miss_line_) {
            prev.tag = last_miss_line_;
            prev.successors.clear();
        }
        auto it = std::find(prev.successors.begin(), prev.successors.end(),
                            line_addr);
        if (it != prev.successors.end())
            prev.successors.erase(it);
        prev.successors.insert(prev.successors.begin(), line_addr);
        if (prev.successors.size() > config_.markov_successors)
            prev.successors.pop_back();
    }
    last_miss_line_ = line_addr;

    // Predict: prefetch the recorded successors of this miss.
    const TableEntry &entry = table_[indexOf(line_addr)];
    if (entry.tag == line_addr) {
        for (Addr succ : entry.successors)
            out.push_back(succ);
    }
}

} // namespace padc::prefetch
