/**
 * @file
 * Feedback Directed Prefetching (Srinath et al., HPCA-13; paper
 * reference [32], compared against in Section 6.12).
 *
 * FDP periodically measures prefetch accuracy, lateness, and cache
 * pollution and moves the prefetcher through five aggressiveness levels
 * (degree/distance pairs). High accuracy pushes aggressiveness up;
 * low accuracy or high pollution throttles it down; lateness nudges it
 * up when prefetches are accurate but not timely.
 *
 * The pollution signal comes from a compact filter that remembers lines
 * recently evicted by prefetch fills; a demand miss that hits the
 * filter counts as pollution.
 */

#ifndef PADC_PREFETCH_FDP_HH
#define PADC_PREFETCH_FDP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace padc::prefetch
{

class Prefetcher;

/** FDP thresholds (defaults follow the paper's Section 6.12 tuning). */
struct FdpConfig
{
    Cycle interval = 100000;     ///< evaluation interval, cycles
    double accuracy_high = 0.90; ///< accuracy above: ramp up
    double accuracy_low = 0.40;  ///< accuracy below: throttle down
    double lateness_threshold = 0.01;  ///< late/useful above: ramp up
    double pollution_threshold = 0.005; ///< polluting misses / demand
                                        ///< accesses above: throttle down
    std::uint32_t pollution_filter_bits = 4096;
    std::uint32_t initial_level = 3; ///< 1..5
};

/**
 * Remembers lines recently evicted by prefetch fills (bit-vector
 * filter). Used to attribute later demand misses to prefetch-induced
 * pollution.
 */
class PollutionFilter
{
  public:
    explicit PollutionFilter(std::uint32_t bits);

    /** A prefetch fill evicted @p line_addr. */
    void insert(Addr line_addr);

    /**
     * A demand miss occurred for @p line_addr; if the filter remembers
     * it, the miss is attributed to pollution and the bit is cleared.
     */
    bool checkAndClear(Addr line_addr);

  private:
    std::uint32_t indexOf(Addr line_addr) const;
    std::vector<bool> bits_;
};

/**
 * The FDP aggressiveness governor. The owner feeds it per-interval raw
 * event counts; it exposes the resulting (degree, distance) to apply to
 * the underlying prefetcher.
 */
class FdpController
{
  public:
    explicit FdpController(const FdpConfig &config);

    /** Raw event counts since the previous interval boundary. */
    struct IntervalCounts
    {
        std::uint64_t prefetches_sent = 0;
        std::uint64_t prefetches_used = 0;
        std::uint64_t late_prefetches = 0; ///< demand matched in-flight pf
        std::uint64_t pollution_misses = 0;
        std::uint64_t demand_accesses = 0;
    };

    /** Evaluate one interval and update the aggressiveness level. */
    void evaluate(const IntervalCounts &counts);

    std::uint32_t level() const { return level_; }

    std::uint32_t degree() const { return kLevels[level_ - 1].degree; }
    std::uint32_t distance() const { return kLevels[level_ - 1].distance; }

    const FdpConfig &config() const { return config_; }

  private:
    struct LevelParams
    {
        std::uint32_t degree;
        std::uint32_t distance;
    };

    /** Five aggressiveness levels (degree, distance), as in HPCA-13. */
    static constexpr std::array<LevelParams, 5> kLevels = {
        LevelParams{1, 4}, LevelParams{1, 8}, LevelParams{2, 16},
        LevelParams{4, 32}, LevelParams{4, 64}};

    FdpConfig config_;
    std::uint32_t level_;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_FDP_HH
