/**
 * @file
 * CZone / Delta Correlation (C/DC) prefetcher (Nesbit et al., PACT-13;
 * paper reference [24], evaluated in Section 6.11).
 *
 * The address space is divided statically into fixed-size CZones. Per
 * zone, the prefetcher keeps a short history of the deltas between
 * consecutive miss addresses. On each access it searches the history
 * for the most recent earlier occurrence of the last delta pair
 * (delta correlation) and, on a match, replays the deltas that followed
 * that occurrence as prefetch predictions.
 */

#ifndef PADC_PREFETCH_CDC_PREFETCHER_HH
#define PADC_PREFETCH_CDC_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace padc::prefetch
{

/**
 * C/DC prefetcher; see file comment.
 */
class CdcPrefetcher : public Prefetcher
{
  public:
    explicit CdcPrefetcher(const PrefetcherConfig &config);

    void observe(Addr addr, Addr pc, bool miss, bool train_only,
                 std::vector<Addr> &out) override;

    const char *name() const override { return "cdc"; }

    void setAggressiveness(std::uint32_t degree,
                           std::uint32_t distance) override;

    std::uint32_t currentDegree() const override { return degree_; }

  private:
    struct Zone
    {
        std::uint64_t tag = ~0ULL;  ///< czone number
        std::int64_t last_line = -1;
        std::vector<std::int64_t> deltas; ///< circular, oldest first
        std::uint32_t head = 0;           ///< next write position
        std::uint32_t count = 0;          ///< valid deltas
        std::uint64_t lru = 0;
    };

    Zone *zoneFor(std::uint64_t czone, bool allocate);

    PrefetcherConfig config_;
    std::uint32_t degree_;
    std::vector<Zone> zones_;
    std::uint64_t lru_clock_ = 1;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_CDC_PREFETCHER_HH
