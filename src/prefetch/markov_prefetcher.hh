/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA-24; paper reference [7],
 * evaluated in Section 6.11).
 *
 * A correlation table records, per miss address, the miss addresses that
 * followed it. On a repeated miss, the recorded successors are issued as
 * prefetches. Exploits temporal (not spatial) correlation, so it tends
 * to produce fewer row-hit prefetches than the streaming prefetchers --
 * the behaviour Section 6.11 discusses.
 */

#ifndef PADC_PREFETCH_MARKOV_PREFETCHER_HH
#define PADC_PREFETCH_MARKOV_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"

namespace padc::prefetch
{

/**
 * Markov (miss-correlation) prefetcher; see file comment.
 */
class MarkovPrefetcher : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const PrefetcherConfig &config);

    void observe(Addr addr, Addr pc, bool miss, bool train_only,
                 std::vector<Addr> &out) override;

    const char *name() const override { return "markov"; }

    std::uint32_t currentDegree() const override
    {
        return config_.markov_successors;
    }

  private:
    struct TableEntry
    {
        Addr tag = kInvalidAddr;         ///< miss line address
        std::vector<Addr> successors;    ///< following miss lines, MRU first
    };

    std::uint32_t indexOf(Addr line_addr) const;

    PrefetcherConfig config_;
    std::vector<TableEntry> table_;
    Addr last_miss_line_ = kInvalidAddr;
};

} // namespace padc::prefetch

#endif // PADC_PREFETCH_MARKOV_PREFETCHER_HH
