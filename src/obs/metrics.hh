/**
 * @file
 * Process-wide metrics registry for fleet observability (DESIGN.md
 * section 14).
 *
 * The simulated machine is covered by src/telemetry (ring-buffered
 * traces and interval samples of the paper's BPMRS/APS/APD internals);
 * this registry covers the *experiment fleet*: sweep points done,
 * worker retries/respawns/quarantines, task round-trip latency.
 *
 * Design contract, mirrored from telemetry: registration is slow-path
 * (mutex + name lookup, done once per call site), but every update on
 * a registered instrument is a single relaxed atomic operation --
 * cheap enough to live on hot loops, proven within measurement noise
 * by `bench_micro_simspeed --obs-overhead-check` exactly like the
 * telemetry_overhead gate. Snapshots (Prometheus text / JSON) are
 * advisory reads: they do not pause writers, so a snapshot taken while
 * counters move is internally consistent per instrument, not across
 * instruments -- fine for progress reporting.
 */

#ifndef PADC_OBS_METRICS_HH
#define PADC_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hh"

namespace padc::obs
{

/** Monotonically increasing counter; relaxed-atomic increments. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous signed level (e.g. active workers); relaxed atomics. */
class Gauge
{
  public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }

    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Lock-free fixed-bucket histogram: the atomic twin of the shared
 * padc::Histogram. sample() is a handful of relaxed atomic adds (bucket
 * count, total sum, CAS-maintained max); snapshot() rebuilds a plain
 * Histogram via Histogram::fromCounts so percentile/toStatSet semantics
 * are literally the shared implementation.
 */
class AtomicHistogram
{
  public:
    AtomicHistogram(std::uint64_t bucket_width, std::uint32_t buckets);

    void sample(std::uint64_t value);

    std::uint64_t bucketWidth() const { return width_; }
    std::uint32_t buckets() const
    {
        return static_cast<std::uint32_t>(counts_.size() - 1);
    }

    /** Consistent-enough copy for reporting (advisory, not a barrier). */
    Histogram snapshot() const;

    void reset();

  private:
    std::uint64_t width_;
    std::vector<std::atomic<std::uint64_t>> counts_; // last = overflow
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Process-wide registry. instance() is a Meyers singleton; counter()/
 * gauge()/histogram() return a stable reference for the lifetime of
 * the process (entries are never removed), so call sites look the name
 * up once and keep the reference for hot-path updates.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create by name. @p help is kept from the first call. */
    Counter &counter(const std::string &name, const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");
    AtomicHistogram &histogram(const std::string &name,
                               std::uint64_t bucket_width,
                               std::uint32_t buckets,
                               const std::string &help = "");

    /**
     * Prometheus text exposition format: # HELP / # TYPE headers,
     * histograms as cumulative <name>_bucket{le="..."} series plus
     * _sum/_count, in registration order.
     */
    std::string prometheusText() const;

    /** JSON snapshot (schema padc-metrics-v1), registration order. */
    std::string jsonText() const;

    /** Zero every instrument (tests; instruments stay registered). */
    void resetAll();

  private:
    MetricsRegistry() = default;

    template <typename Entry, typename... Args>
    typename Entry::element_type &findOrCreate(std::vector<Entry> &entries,
                                               const std::string &name,
                                               const std::string &help,
                                               Args &&...args);

    struct CounterEntry
    {
        std::string name;
        std::string help;
        std::unique_ptr<Counter> instrument;
        using element_type = Counter;
    };
    struct GaugeEntry
    {
        std::string name;
        std::string help;
        std::unique_ptr<Gauge> instrument;
        using element_type = Gauge;
    };
    struct HistogramEntry
    {
        std::string name;
        std::string help;
        std::unique_ptr<AtomicHistogram> instrument;
        using element_type = AtomicHistogram;
    };

    mutable std::mutex mutex_; ///< guards the entry vectors, not updates
    std::vector<CounterEntry> counters_;
    std::vector<GaugeEntry> gauges_;
    std::vector<HistogramEntry> histograms_;
};

} // namespace padc::obs

#endif // PADC_OBS_METRICS_HH
