#include "obs/metrics.hh"

#include "exp/json.hh"

namespace padc::obs
{

AtomicHistogram::AtomicHistogram(std::uint64_t bucket_width,
                                 std::uint32_t buckets)
    : width_(bucket_width), counts_(buckets + 1)
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

void
AtomicHistogram::sample(std::uint64_t value)
{
    std::uint64_t idx = value / width_;
    if (idx >= buckets())
        idx = buckets(); // overflow bucket
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
        // seen reloaded by the failed CAS; retry while still larger.
    }
}

Histogram
AtomicHistogram::snapshot() const
{
    std::vector<std::uint64_t> counts(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts[i] = counts_[i].load(std::memory_order_relaxed);
    return Histogram::fromCounts(
        width_, counts,
        static_cast<double>(sum_.load(std::memory_order_relaxed)),
        max_.load(std::memory_order_relaxed));
}

void
AtomicHistogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

template <typename Entry, typename... Args>
typename Entry::element_type &
MetricsRegistry::findOrCreate(std::vector<Entry> &entries,
                              const std::string &name,
                              const std::string &help, Args &&...args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : entries) {
        if (entry.name == name)
            return *entry.instrument;
    }
    entries.push_back(Entry{
        name, help,
        std::make_unique<typename Entry::element_type>(
            std::forward<Args>(args)...)});
    return *entries.back().instrument;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    return findOrCreate(counters_, name, help);
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    return findOrCreate(gauges_, name, help);
}

AtomicHistogram &
MetricsRegistry::histogram(const std::string &name,
                           std::uint64_t bucket_width, std::uint32_t buckets,
                           const std::string &help)
{
    return findOrCreate(histograms_, name, help, bucket_width, buckets);
}

namespace
{

void
appendHeader(std::string *out, const std::string &name,
             const std::string &help, const char *type)
{
    if (!help.empty())
        *out += "# HELP " + name + " " + help + "\n";
    *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

} // namespace

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &entry : counters_) {
        appendHeader(&out, entry.name, entry.help, "counter");
        out += entry.name + " " +
               std::to_string(entry.instrument->value()) + "\n";
    }
    for (const auto &entry : gauges_) {
        appendHeader(&out, entry.name, entry.help, "gauge");
        out += entry.name + " " +
               std::to_string(entry.instrument->value()) + "\n";
    }
    for (const auto &entry : histograms_) {
        appendHeader(&out, entry.name, entry.help, "histogram");
        const Histogram h = entry.instrument->snapshot();
        std::uint64_t cumulative = 0;
        for (std::uint32_t i = 0; i < h.buckets(); ++i) {
            cumulative += h.count(i);
            out += entry.name + "_bucket{le=\"" +
                   std::to_string((i + 1) * h.bucketWidth()) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        cumulative += h.count(h.buckets());
        out += entry.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += entry.name + "_sum " +
               exp::jsonNumber(h.mean() * static_cast<double>(h.total())) +
               "\n";
        out += entry.name + "_count " + std::to_string(h.total()) + "\n";
    }
    return out;
}

std::string
MetricsRegistry::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("schema", "padc-metrics-v1");
    writer.beginObject("counters");
    for (const auto &entry : counters_)
        writer.member(entry.name, entry.instrument->value());
    writer.endObject();
    writer.beginObject("gauges");
    for (const auto &entry : gauges_) {
        writer.member(entry.name,
                      static_cast<double>(entry.instrument->value()));
    }
    writer.endObject();
    writer.beginObject("histograms");
    for (const auto &entry : histograms_) {
        const Histogram h = entry.instrument->snapshot();
        writer.beginObject(entry.name);
        writer.member("count", h.total());
        writer.member("mean", h.mean());
        writer.member("p50", h.percentile(50.0));
        writer.member("p90", h.percentile(90.0));
        writer.member("p99", h.percentile(99.0));
        writer.member("max", h.max());
        writer.beginObject("buckets");
        for (std::uint32_t i = 0; i < h.buckets(); ++i) {
            writer.member(std::to_string((i + 1) * h.bucketWidth()),
                          h.count(i));
        }
        writer.endObject();
        writer.member("overflow", h.count(h.buckets()));
        writer.endObject();
    }
    writer.endObject();
    writer.endObject();
    return writer.str();
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.instrument->reset();
    for (auto &entry : gauges_)
        entry.instrument->reset();
    for (auto &entry : histograms_)
        entry.instrument->reset();
}

} // namespace padc::obs
