/**
 * @file
 * FleetMonitor: the single observer the sweep executors notify
 * (DESIGN.md section 14). It fans each notification out to the three
 * observability surfaces — the process-wide MetricsRegistry, the
 * events.jsonl structured log, and the periodically atomic-renamed
 * status.json + stderr --progress line.
 *
 * Wiring follows the notePointCompleted() precedent (sim/interrupt.hh):
 * a process-global nullable pointer, installed by the driver when
 * --progress is given and left null otherwise, so the sim layer needs
 * no dependency injection and default runs pay one predicted-null
 * branch per event. All methods take plain types (indices, pids,
 * strings) — the sim layer does not leak into obs.
 *
 * Thread-safety: every public method locks an internal mutex (the
 * in-thread sweep calls from worker threads; the pool supervisor is
 * single-threaded but shares the same code path).
 */

#ifndef PADC_OBS_MONITOR_HH
#define PADC_OBS_MONITOR_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/events.hh"
#include "obs/status.hh"

namespace padc::obs
{

struct MonitorConfig
{
    std::string events_path; ///< empty = no event log
    std::string status_path; ///< empty = no status.json
    bool progress = false;   ///< stderr progress line
    std::uint64_t status_interval_ms = 200;
    std::uint64_t progress_interval_ms = 250;
};

class FleetMonitor
{
  public:
    explicit FleetMonitor(MonitorConfig config);

    FleetMonitor(const FleetMonitor &) = delete;
    FleetMonitor &operator=(const FleetMonitor &) = delete;

    ~FleetMonitor();

    /**
     * A sweep of @p total points begins for @p experiment; @p journaled
     * is the number of entries loaded from a resume journal (> 0 emits
     * "sweep_resume" instead of "sweep_start").
     */
    void sweepStarted(const std::string &experiment, std::uint64_t total,
                      std::uint64_t journaled);

    /** The sweep returned (cleanly or after an interrupt drain). */
    void sweepFinished(bool interrupted);

    /** Point @p index handed to a worker (pool path only). */
    void pointDispatched(std::uint64_t index, std::size_t slot,
                         std::int64_t pid);

    /**
     * Point @p index reached a final outcome. @p attempts == 0 means it
     * was satisfied from the resume journal (replayed) — or, when
     * @p detail is "interrupted", never ran; both are excluded from the
     * rate estimator so resumes do not inflate the ETA. @p slot >= 0
     * credits the pool worker slot that produced the result.
     */
    void pointFinished(std::uint64_t index, const std::string &status,
                       std::uint32_t attempts, const std::string &detail,
                       std::int64_t slot = -1, std::int64_t pid = -1);

    /** Point @p index will be retried after a worker death. */
    void pointRetried(std::uint64_t index, std::uint32_t attempt,
                      std::int64_t pid, const std::string &fate);

    /** Point @p index exhausted its attempts and is quarantined. */
    void pointQuarantined(std::uint64_t index, std::int64_t pid,
                          const std::string &fate);

    /** Worker lifecycle (pool path). */
    void workerSpawned(std::size_t slot, std::int64_t pid);
    void workerExited(std::size_t slot, std::int64_t pid,
                      const std::string &fate);
    void workerTimedOut(std::size_t slot, std::int64_t pid,
                        std::int64_t index);

    /** SIGINT/SIGTERM received; the pool is draining in-flight work. */
    void interruptDrain();

    /** Current status snapshot (what status.json would contain). */
    SweepStatus snapshot() const;

    const MonitorConfig &config() const { return config_; }

  private:
    void emitEvent(const std::string &type, std::int64_t point,
                   std::int64_t worker, std::uint64_t attempt,
                   const std::string &detail);
    SweepStatus buildStatus(std::uint64_t now_ms) const;
    /** Refresh status.json + progress line; callers hold mutex_. */
    void publish(bool force);
    WorkerStatus &slotRef(std::size_t slot);

    MonitorConfig config_;
    std::unique_ptr<EventLog> events_;

    mutable std::mutex mutex_;
    SweepStatus live_; ///< counters; workers grows as slots appear
    RateEstimator rate_;
    std::uint64_t sweep_start_ms_ = 0;
    std::uint64_t last_status_ms_ = 0;
    std::uint64_t last_progress_ms_ = 0;
    bool stderr_tty_ = false;
    bool progress_line_open_ = false; ///< tty: \r-rewritten line active
};

/** The installed monitor, or nullptr when observability is off. */
FleetMonitor *activeMonitor();

/** Install (or clear with nullptr) the process-global monitor. */
void setActiveMonitor(FleetMonitor *monitor);

} // namespace padc::obs

#endif // PADC_OBS_MONITOR_HH
