/**
 * @file
 * Live sweep status for external observers (DESIGN.md section 14):
 * a rolling-window rate/ETA estimator, the `padc-sweep-status-v1`
 * snapshot document periodically atomic-renamed to `status.json`
 * (so a poller — `padc status <dir>` — never reads a torn file), and
 * the stderr progress-line renderer.
 *
 * All timestamps are std::chrono::steady_clock milliseconds: wall
 * clocks step under NTP and would corrupt rates/ETAs mid-sweep. The
 * estimator takes `now_ms` as a parameter rather than reading a clock
 * so tests drive it deterministically.
 */

#ifndef PADC_OBS_STATUS_HH
#define PADC_OBS_STATUS_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace padc::obs
{

/** Schema tag carried by every status.json snapshot. */
inline constexpr char kStatusSchema[] = "padc-sweep-status-v1";

/** Steady-clock now in milliseconds (the only clock obs code uses). */
std::uint64_t steadyNowMs();

/**
 * Rolling-window completion-rate estimator.
 *
 * Only *executed* points are noted: on resume, journal-replayed points
 * complete thousands of times faster than real ones and must not
 * inflate the rate (they are excluded by the caller not noting them,
 * and the ETA math only counts remaining unfinished work).
 *
 * The window is the most recent `window` completions; the rate is
 * window-size over the time span back to the oldest windowed sample,
 * so it adapts to recent speed and decays toward zero while progress
 * stalls (the span keeps growing with `now`).
 */
class RateEstimator
{
  public:
    explicit RateEstimator(std::size_t window = 32);

    /** Record one executed-point completion at steady time @p now_ms. */
    void notePoint(std::uint64_t now_ms);

    /** Completions recorded so far (all, not just the window). */
    std::uint64_t noted() const { return noted_; }

    /**
     * Estimated completions per second at @p now_ms; 0.0 until two
     * samples exist (no span to divide by).
     */
    double ratePerSec(std::uint64_t now_ms) const;

    /**
     * Seconds to finish @p remaining points at the current rate;
     * negative when the rate is still unknown.
     */
    double etaSeconds(std::uint64_t now_ms, std::uint64_t remaining) const;

  private:
    std::size_t window_;
    std::uint64_t noted_ = 0;
    std::deque<std::uint64_t> times_; ///< newest at back
};

/** Per-worker-slot snapshot inside SweepStatus. */
struct WorkerStatus
{
    std::int64_t pid = -1; ///< -1 when the slot is not running
    std::uint64_t tasks = 0;
    std::uint64_t kills = 0;
    bool busy = false;
};

/** The padc-sweep-status-v1 document. */
struct SweepStatus
{
    std::string state = "running"; ///< running | finished | interrupted
    std::string experiment;
    std::uint64_t total = 0;
    std::uint64_t done = 0;     ///< executed + replayed + failed
    std::uint64_t executed = 0; ///< really simulated this run
    std::uint64_t replayed = 0; ///< satisfied from the resume journal
    std::uint64_t failed = 0;   ///< quarantined / permanently failed
    std::uint64_t retries = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t active_workers = 0;
    double elapsed_seconds = 0.0;
    double rate_per_sec = 0.0;
    double eta_seconds = -1.0; ///< negative = unknown
    std::vector<WorkerStatus> workers;
};

/** Serialize @p status as the padc-sweep-status-v1 JSON document. */
std::string formatStatus(const SweepStatus &status);

/**
 * Atomically replace @p path with the serialized @p status via
 * common/atomic_file (write temp sibling, rename): a poller or a
 * post-mortem reader always sees a complete schema-valid snapshot,
 * even when the writer is SIGKILLed mid-write.
 */
bool writeStatusFile(const std::string &path, const SweepStatus &status,
                     std::string *error = nullptr);

/** Parse a status.json document; false + @p error on any mismatch. */
bool loadStatusFile(const std::string &path, SweepStatus *out,
                    std::string *error = nullptr);

/** One-line progress summary for the stderr --progress stream. */
std::string renderProgressLine(const SweepStatus &status);

/** Multi-line human rendering for `padc status <dir>`. */
std::string renderStatusReport(const SweepStatus &status);

} // namespace padc::obs

#endif // PADC_OBS_STATUS_HH
