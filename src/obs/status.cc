#include "obs/status.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "exp/json.hh"

namespace padc::obs
{

std::uint64_t
steadyNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

RateEstimator::RateEstimator(std::size_t window)
    : window_(window == 0 ? 1 : window)
{
}

void
RateEstimator::notePoint(std::uint64_t now_ms)
{
    ++noted_;
    times_.push_back(now_ms);
    while (times_.size() > window_)
        times_.pop_front();
}

double
RateEstimator::ratePerSec(std::uint64_t now_ms) const
{
    if (times_.size() < 2)
        return 0.0;
    const std::uint64_t span_ms =
        now_ms > times_.front() ? now_ms - times_.front() : 1;
    return static_cast<double>(times_.size()) * 1000.0 /
           static_cast<double>(span_ms == 0 ? 1 : span_ms);
}

double
RateEstimator::etaSeconds(std::uint64_t now_ms,
                          std::uint64_t remaining) const
{
    const double rate = ratePerSec(now_ms);
    if (rate <= 0.0)
        return -1.0;
    return static_cast<double>(remaining) / rate;
}

std::string
formatStatus(const SweepStatus &status)
{
    exp::JsonWriter writer;
    writer.beginObject();
    writer.member("schema", kStatusSchema);
    writer.member("state", status.state);
    writer.member("experiment", status.experiment);
    writer.member("total", status.total);
    writer.member("done", status.done);
    writer.member("executed", status.executed);
    writer.member("replayed", status.replayed);
    writer.member("failed", status.failed);
    writer.member("retries", status.retries);
    writer.member("quarantined", status.quarantined);
    writer.member("active_workers", status.active_workers);
    writer.member("elapsed_seconds", status.elapsed_seconds);
    writer.member("rate_per_sec", status.rate_per_sec);
    writer.member("eta_seconds", status.eta_seconds);
    writer.beginArray("workers");
    for (const WorkerStatus &worker : status.workers) {
        writer.beginObject();
        writer.member("pid", static_cast<double>(worker.pid));
        writer.member("tasks", worker.tasks);
        writer.member("kills", worker.kills);
        writer.member("busy", worker.busy);
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    return writer.str();
}

bool
writeStatusFile(const std::string &path, const SweepStatus &status,
                std::string *error)
{
    const std::string doc = formatStatus(status) + "\n";
    AtomicFile file(path);
    if (!file.ok() || !file.write(doc.data(), doc.size()) ||
        !file.commit()) {
        if (error != nullptr)
            *error = file.error();
        return false;
    }
    return true;
}

bool
loadStatusFile(const std::string &path, SweepStatus *out,
               std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    exp::JsonValue parsed;
    std::string parse_error;
    if (!exp::parseJson(text.str(), &parsed, &parse_error)) {
        if (error != nullptr)
            *error = "'" + path + "': " + parse_error;
        return false;
    }
    const exp::JsonValue *schema = parsed.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != kStatusSchema) {
        if (error != nullptr)
            *error = "'" + path + "' is not a " +
                     std::string(kStatusSchema) + " document";
        return false;
    }

    SweepStatus status;
    auto str = [&parsed](const char *key, std::string *dst) {
        if (const exp::JsonValue *v = parsed.find(key); v && v->isString())
            *dst = v->string;
    };
    auto u64 = [&parsed](const char *key, std::uint64_t *dst) {
        if (const exp::JsonValue *v = parsed.find(key); v && v->isNumber())
            *dst = static_cast<std::uint64_t>(v->number);
    };
    auto f64 = [&parsed](const char *key, double *dst) {
        if (const exp::JsonValue *v = parsed.find(key); v && v->isNumber())
            *dst = v->number;
    };
    str("state", &status.state);
    str("experiment", &status.experiment);
    u64("total", &status.total);
    u64("done", &status.done);
    u64("executed", &status.executed);
    u64("replayed", &status.replayed);
    u64("failed", &status.failed);
    u64("retries", &status.retries);
    u64("quarantined", &status.quarantined);
    u64("active_workers", &status.active_workers);
    f64("elapsed_seconds", &status.elapsed_seconds);
    f64("rate_per_sec", &status.rate_per_sec);
    f64("eta_seconds", &status.eta_seconds);
    if (const exp::JsonValue *workers = parsed.find("workers");
        workers != nullptr && workers->isArray()) {
        for (const exp::JsonValue &entry : workers->array) {
            WorkerStatus worker;
            if (const exp::JsonValue *v = entry.find("pid");
                v && v->isNumber())
                worker.pid = static_cast<std::int64_t>(v->number);
            if (const exp::JsonValue *v = entry.find("tasks");
                v && v->isNumber())
                worker.tasks = static_cast<std::uint64_t>(v->number);
            if (const exp::JsonValue *v = entry.find("kills");
                v && v->isNumber())
                worker.kills = static_cast<std::uint64_t>(v->number);
            if (const exp::JsonValue *v = entry.find("busy"))
                worker.busy = v->boolean;
            status.workers.push_back(worker);
        }
    }
    *out = status;
    return true;
}

namespace
{

std::string
formatEta(double eta_seconds)
{
    if (eta_seconds < 0.0)
        return "--";
    char buf[32];
    if (eta_seconds >= 3600.0) {
        std::snprintf(buf, sizeof(buf), "%.1fh", eta_seconds / 3600.0);
    } else if (eta_seconds >= 60.0) {
        std::snprintf(buf, sizeof(buf), "%.1fm", eta_seconds / 60.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1fs", eta_seconds);
    }
    return buf;
}

} // namespace

std::string
renderProgressLine(const SweepStatus &status)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "[padc] %s %llu/%llu done (%llu replayed) | %.2f pts/s ETA %s | "
        "workers %llu | retries %llu quarantined %llu",
        status.experiment.empty() ? "sweep" : status.experiment.c_str(),
        static_cast<unsigned long long>(status.done),
        static_cast<unsigned long long>(status.total),
        static_cast<unsigned long long>(status.replayed),
        status.rate_per_sec, formatEta(status.eta_seconds).c_str(),
        static_cast<unsigned long long>(status.active_workers),
        static_cast<unsigned long long>(status.retries),
        static_cast<unsigned long long>(status.quarantined));
    return buf;
}

std::string
renderStatusReport(const SweepStatus &status)
{
    std::ostringstream os;
    os << "sweep '"
       << (status.experiment.empty() ? "?" : status.experiment) << "': "
       << status.state << " -- " << status.done << "/" << status.total
       << " points";
    if (status.replayed > 0)
        os << " (" << status.replayed << " replayed)";
    os << "\n";
    os << "  executed " << status.executed << ", retries "
       << status.retries << ", quarantined " << status.quarantined
       << ", failed " << status.failed << "\n";
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  rate %.2f pts/s, ETA %s, elapsed %.1fs, "
                  "%llu active worker(s)\n",
                  status.rate_per_sec,
                  formatEta(status.eta_seconds).c_str(),
                  status.elapsed_seconds,
                  static_cast<unsigned long long>(status.active_workers));
    os << line;
    for (std::size_t i = 0; i < status.workers.size(); ++i) {
        const WorkerStatus &worker = status.workers[i];
        os << "  worker " << i << ": pid " << worker.pid << ", tasks "
           << worker.tasks << ", kills " << worker.kills << ", "
           << (worker.busy ? "busy" : "idle") << "\n";
    }
    return os.str();
}

} // namespace padc::obs
