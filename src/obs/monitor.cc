#include "obs/monitor.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "obs/metrics.hh"

namespace padc::obs
{

namespace
{

std::atomic<FleetMonitor *> active_monitor{nullptr};

} // namespace

FleetMonitor *
activeMonitor()
{
    return active_monitor.load(std::memory_order_acquire);
}

void
setActiveMonitor(FleetMonitor *monitor)
{
    active_monitor.store(monitor, std::memory_order_release);
}

FleetMonitor::FleetMonitor(MonitorConfig config)
    : config_(std::move(config))
{
    if (!config_.events_path.empty()) {
        events_ = std::make_unique<EventLog>(config_.events_path);
        if (!events_->ok()) {
            std::fprintf(stderr, "padc: %s\n", events_->error().c_str());
            events_.reset();
        }
    }
    stderr_tty_ = ::isatty(STDERR_FILENO) == 1;
    sweep_start_ms_ = steadyNowMs();
}

FleetMonitor::~FleetMonitor()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (progress_line_open_) {
        std::fputc('\n', stderr);
        progress_line_open_ = false;
    }
}

void
FleetMonitor::emitEvent(const std::string &type, std::int64_t point,
                        std::int64_t worker, std::uint64_t attempt,
                        const std::string &detail)
{
    if (events_ == nullptr)
        return;
    Event event;
    event.type = type;
    event.t_ms = steadyNowMs();
    event.point = point;
    event.worker = worker;
    event.attempt = attempt;
    event.detail = detail;
    events_->record(event);
}

WorkerStatus &
FleetMonitor::slotRef(std::size_t slot)
{
    if (live_.workers.size() <= slot)
        live_.workers.resize(slot + 1);
    return live_.workers[slot];
}

SweepStatus
FleetMonitor::buildStatus(std::uint64_t now_ms) const
{
    SweepStatus status = live_;
    status.elapsed_seconds =
        static_cast<double>(now_ms - sweep_start_ms_) / 1000.0;
    status.rate_per_sec = rate_.ratePerSec(now_ms);
    const std::uint64_t remaining =
        live_.total > live_.done ? live_.total - live_.done : 0;
    status.eta_seconds = rate_.etaSeconds(now_ms, remaining);
    status.active_workers = 0;
    for (const WorkerStatus &worker : live_.workers) {
        if (worker.pid >= 0)
            ++status.active_workers;
    }
    return status;
}

void
FleetMonitor::publish(bool force)
{
    const std::uint64_t now_ms = steadyNowMs();
    const bool want_status =
        !config_.status_path.empty() &&
        (force || now_ms - last_status_ms_ >= config_.status_interval_ms);
    const bool want_progress =
        config_.progress &&
        (force ||
         now_ms - last_progress_ms_ >= config_.progress_interval_ms);
    if (!want_status && !want_progress)
        return;
    const SweepStatus status = buildStatus(now_ms);
    if (want_status) {
        writeStatusFile(config_.status_path, status);
        last_status_ms_ = now_ms;
    }
    if (want_progress) {
        const std::string line = renderProgressLine(status);
        if (stderr_tty_) {
            std::fprintf(stderr, "\r%s\033[K", line.c_str());
            progress_line_open_ = true;
        } else {
            std::fprintf(stderr, "%s\n", line.c_str());
        }
        std::fflush(stderr);
        last_progress_ms_ = now_ms;
    }
}

void
FleetMonitor::sweepStarted(const std::string &experiment,
                           std::uint64_t total, std::uint64_t journaled)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Per-sweep counters restart; worker slots persist (the pool
    // outlives individual experiments).
    live_.experiment = experiment;
    live_.state = "running";
    live_.total = total;
    live_.done = 0;
    live_.executed = 0;
    live_.replayed = 0;
    live_.failed = 0;
    live_.retries = 0;
    live_.quarantined = 0;
    rate_ = RateEstimator();
    sweep_start_ms_ = steadyNowMs();
    MetricsRegistry::instance()
        .counter("padc_sweeps_started_total", "Sweeps begun")
        .inc();
    emitEvent(journaled > 0 ? "sweep_resume" : "sweep_start", -1, -1,
              journaled, experiment);
    publish(true);
}

void
FleetMonitor::sweepFinished(bool interrupted)
{
    std::lock_guard<std::mutex> lock(mutex_);
    live_.state = interrupted ? "interrupted" : "finished";
    emitEvent(interrupted ? "sweep_interrupted" : "sweep_finish", -1, -1,
              0, live_.experiment);
    publish(true);
    if (progress_line_open_) {
        std::fputc('\n', stderr);
        std::fflush(stderr);
        progress_line_open_ = false;
    }
}

void
FleetMonitor::pointDispatched(std::uint64_t index, std::size_t slot,
                              std::int64_t pid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    slotRef(slot).busy = true;
    MetricsRegistry::instance()
        .counter("padc_points_dispatched_total",
                 "Points handed to pool workers")
        .inc();
    emitEvent("point_dispatch", static_cast<std::int64_t>(index), pid, 0,
              "");
    publish(false);
}

void
FleetMonitor::pointFinished(std::uint64_t index, const std::string &status,
                            std::uint32_t attempts,
                            const std::string &detail, std::int64_t slot,
                            std::int64_t pid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &registry = MetricsRegistry::instance();
    const std::uint64_t now_ms = steadyNowMs();
    const bool interrupted = attempts == 0 && detail == "interrupted";
    const bool replayed = attempts == 0 && !interrupted;
    ++live_.done;
    if (replayed) {
        ++live_.replayed;
        registry
            .counter("padc_points_replayed_total",
                     "Points satisfied from the resume journal")
            .inc();
    } else if (!interrupted) {
        ++live_.executed;
        // Only genuinely executed points feed the rate estimator:
        // journal replays are near-instant and would wreck the ETA.
        rate_.notePoint(now_ms);
        registry
            .counter("padc_points_executed_total",
                     "Points simulated to completion")
            .inc();
    }
    if (status != "ok" && !interrupted)
        ++live_.failed;
    if (slot >= 0) {
        WorkerStatus &worker = slotRef(static_cast<std::size_t>(slot));
        worker.busy = false;
        ++worker.tasks;
    }
    emitEvent(replayed ? "point_replay"
                       : (interrupted ? "point_interrupted"
                                      : "point_complete"),
              static_cast<std::int64_t>(index), pid, attempts,
              status == "ok" ? status : status + ": " + detail);
    publish(false);
}

void
FleetMonitor::pointRetried(std::uint64_t index, std::uint32_t attempt,
                           std::int64_t pid, const std::string &fate)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++live_.retries;
    MetricsRegistry::instance()
        .counter("padc_point_retries_total",
                 "Point attempts restarted after a worker death")
        .inc();
    emitEvent("point_retry", static_cast<std::int64_t>(index), pid,
              attempt, fate);
    // Forced: a retry burst must be visible even inside the throttle
    // window (the crash:3 acceptance scenario).
    publish(true);
}

void
FleetMonitor::pointQuarantined(std::uint64_t index, std::int64_t pid,
                               const std::string &fate)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++live_.quarantined;
    ++live_.done;
    ++live_.failed;
    MetricsRegistry::instance()
        .counter("padc_points_quarantined_total",
                 "Points that exhausted their worker attempts")
        .inc();
    emitEvent("point_quarantine", static_cast<std::int64_t>(index), pid,
              0, fate);
    publish(true);
}

void
FleetMonitor::workerSpawned(std::size_t slot, std::int64_t pid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    WorkerStatus &worker = slotRef(slot);
    worker.pid = pid;
    worker.busy = false;
    MetricsRegistry::instance()
        .counter("padc_worker_spawns_total", "Worker processes spawned")
        .inc();
    emitEvent("worker_spawn", -1, pid, 0,
              "slot " + std::to_string(slot));
    publish(false);
}

void
FleetMonitor::workerExited(std::size_t slot, std::int64_t pid,
                           const std::string &fate)
{
    std::lock_guard<std::mutex> lock(mutex_);
    WorkerStatus &worker = slotRef(slot);
    worker.pid = -1;
    worker.busy = false;
    MetricsRegistry::instance()
        .counter("padc_worker_exits_total", "Worker processes reaped")
        .inc();
    emitEvent("worker_exit", -1, pid, 0, fate);
    publish(false);
}

void
FleetMonitor::workerTimedOut(std::size_t slot, std::int64_t pid,
                             std::int64_t index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++slotRef(slot).kills;
    MetricsRegistry::instance()
        .counter("padc_worker_timeouts_total",
                 "Workers SIGKILLed by the heartbeat watchdog")
        .inc();
    emitEvent("worker_timeout", index, pid, 0, "heartbeat timeout");
    publish(true);
}

void
FleetMonitor::interruptDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsRegistry::instance()
        .counter("padc_interrupts_total", "SIGINT/SIGTERM drains")
        .inc();
    emitEvent("interrupt_drain", -1, -1, 0,
              "draining in-flight points");
    publish(true);
}

SweepStatus
FleetMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buildStatus(steadyNowMs());
}

} // namespace padc::obs
