#include "obs/events.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "exp/json.hh"

namespace padc::obs
{

std::string
formatEvent(const Event &event)
{
    // Hand-rolled single-line object: JsonWriter pretty-prints across
    // lines, and JSONL needs exactly one line per record.
    std::string out = "{\"padc\":";
    out += exp::jsonQuote(kEventSchema);
    out += ",\"ev\":";
    out += exp::jsonQuote(event.type);
    out += ",\"t_ms\":";
    out += std::to_string(event.t_ms);
    out += ",\"point\":";
    out += std::to_string(event.point);
    out += ",\"worker\":";
    out += std::to_string(event.worker);
    out += ",\"attempt\":";
    out += std::to_string(event.attempt);
    out += ",\"detail\":";
    out += exp::jsonQuote(event.detail);
    out += "}";
    return out;
}

EventLog::EventLog(const std::string &path) : path_(path)
{
    // Detect a torn trailing line left by a previous killed process:
    // a non-empty file whose last byte is not '\n'.
    bool torn_tail = false;
    if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
        int c = 0;
        int last = '\n';
        while ((c = std::fgetc(in)) != EOF)
            last = c;
        torn_tail = last != '\n';
        std::fclose(in);
    }

    // O_APPEND + one write(2) per record keeps concurrent writers
    // line-atomic (same contract as the sweep journal).
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        error_ = "EventLog: cannot open '" + path_ +
                 "' for appending: " + std::strerror(errno);
        return;
    }

    // Terminate the torn tail now; otherwise the next record would
    // merge into the partial line and BOTH would be lost on load.
    if (torn_tail) {
        const char nl = '\n';
        while (::write(fd_, &nl, 1) < 0 && errno == EINTR) {
        }
    }
}

EventLog::~EventLog()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
EventLog::record(const Event &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;
    std::string line = formatEvent(event);
    line += '\n';
    // The whole line in one write(2): atomic w.r.t. other O_APPEND
    // writers, and a kill mid-write can only tear THIS line.
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + off,
                                  line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // best-effort; observation must not kill the run
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
EventLog::load(const std::string &path, std::vector<Event> *out,
               std::string *error)
{
    out->clear();
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
        if (error != nullptr)
            *error = "EventLog: cannot read '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    std::string line;
    int c = 0;
    bool complete = false;
    auto consume = [&] {
        // Torn (unterminated) or malformed lines are skipped, exactly
        // like journal replay drops them.
        if (!complete || line.empty())
            return;
        exp::JsonValue parsed;
        if (!exp::parseJson(line, &parsed, nullptr) || !parsed.isObject())
            return;
        const exp::JsonValue *tag = parsed.find("padc");
        if (tag == nullptr || !tag->isString() ||
            tag->string != kEventSchema) {
            return;
        }
        Event event;
        if (const exp::JsonValue *v = parsed.find("ev"))
            event.type = v->string;
        if (const exp::JsonValue *v = parsed.find("t_ms"))
            event.t_ms = static_cast<std::uint64_t>(v->number);
        if (const exp::JsonValue *v = parsed.find("point"))
            event.point = static_cast<std::int64_t>(v->number);
        if (const exp::JsonValue *v = parsed.find("worker"))
            event.worker = static_cast<std::int64_t>(v->number);
        if (const exp::JsonValue *v = parsed.find("attempt"))
            event.attempt = static_cast<std::uint64_t>(v->number);
        if (const exp::JsonValue *v = parsed.find("detail"))
            event.detail = v->string;
        out->push_back(std::move(event));
    };
    while ((c = std::fgetc(in)) != EOF) {
        if (c == '\n') {
            complete = true;
            consume();
            line.clear();
            complete = false;
        } else {
            line.push_back(static_cast<char>(c));
        }
    }
    consume(); // trailing line without '\n': dropped by `complete`
    std::fclose(in);
    return true;
}

} // namespace padc::obs
