/**
 * @file
 * Structured JSONL run-event log for fleet observability (DESIGN.md
 * section 14): one JSON object per line in `events.jsonl`, recording
 * the lifecycle of a sweep (start/resume/finish), of its points
 * (dispatch/complete/retry/quarantine), and of its workers
 * (spawn/exit/heartbeat-timeout), plus the SIGINT drain.
 *
 * Durability reuses the sweep journal's idiom (sim/journal.cc): the
 * file is opened O_APPEND and every record is a single write(2) of one
 * '\n'-terminated line, so a crash can lose at most the trailing
 * partial line. On reopen the constructor repairs a torn tail by
 * terminating it with '\n'; the torn fragment then fails to parse and
 * is skipped by load(), exactly like journal replay.
 */

#ifndef PADC_OBS_EVENTS_HH
#define PADC_OBS_EVENTS_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace padc::obs
{

/** Line schema tag each event record carries. */
inline constexpr char kEventSchema[] = "padc-run-event-v1";

/**
 * One run event. `point` and `worker` are -1 when not applicable
 * (e.g. worker lifecycle events have no point, sweep events have
 * neither). Timestamps are steady-clock milliseconds — monotonic and
 * immune to wall-clock steps, comparable only within one process run.
 */
struct Event
{
    std::string type;       ///< e.g. "sweep_start", "point_retry"
    std::uint64_t t_ms = 0; ///< steady-clock timestamp, milliseconds
    std::int64_t point = -1;  ///< sweep point index, -1 if n/a
    std::int64_t worker = -1; ///< worker pid, -1 if n/a
    std::uint64_t attempt = 0;
    std::string detail; ///< free-form: fate, status, experiment name
};

/**
 * Append-only JSONL event sink. Thread-safe: record() serializes under
 * a mutex and issues one write(2) per event.
 */
class EventLog
{
  public:
    /**
     * Open (creating if needed) @p path for appending, repairing a
     * torn trailing line left by a crash. Check ok() afterwards.
     */
    explicit EventLog(const std::string &path);

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    ~EventLog();

    bool ok() const { return fd_ >= 0; }

    const std::string &error() const { return error_; }

    const std::string &path() const { return path_; }

    /** Append one event; no-op (returns false) after an I/O error. */
    bool record(const Event &event);

    /**
     * Read every parseable event line of @p path in file order,
     * skipping torn or malformed lines (the journal-replay contract).
     * @return false only when the file cannot be read at all.
     */
    static bool load(const std::string &path, std::vector<Event> *out,
                     std::string *error = nullptr);

  private:
    std::string path_;
    int fd_ = -1;
    std::string error_;
    std::mutex mutex_;
};

/** Serialize one event as its JSONL line (no trailing newline). */
std::string formatEvent(const Event &event);

} // namespace padc::obs

#endif // PADC_OBS_EVENTS_HH
