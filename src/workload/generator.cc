#include "workload/generator.hh"

#include <algorithm>

namespace padc::workload
{

namespace
{

/** Stable PC bases per run type ("loop bodies" of the synthetic app). */
constexpr Addr kSeqPcBase = 0x400100;
constexpr Addr kStridePcBase = 0x400200;
constexpr Addr kRandomPcBase = 0x400300;

/** PCs cycled within one loop body (models a moderately unrolled loop). */
constexpr std::uint32_t kPcsPerLoop = 4;

} // namespace

SyntheticTrace::SyntheticTrace(const TraceParams &params)
    : params_(params), rng_(params.seed)
{
    resetRuns();
}

void
SyntheticTrace::reset()
{
    rng_ = Rng(params_.seed);
    phase_idx_ = 0;
    ops_in_phase_ = 0;
    word_ = 0;
    pc_rotor_ = 0;
    rotor_ = 0;
    revisit_pool_.clear();
    resetRuns();
}

void
SyntheticTrace::resetRuns()
{
    runs_.assign(std::max<std::uint32_t>(1, phase().concurrent_runs), Run{});
    for (auto &run : runs_)
        startRun(run);
}

void
SyntheticTrace::startRun(Run &run)
{
    const PhaseParams &p = phase();
    const std::uint64_t ws_lines =
        std::max<std::uint64_t>(1, params_.working_set_bytes / kLineBytes);

    // Convert traffic (line) shares into run-selection probabilities by
    // dividing each share by its mean run length: short random bursts
    // must be chosen far more often than long streams to carry the same
    // share of lines.
    const double seq_len = std::max<std::uint32_t>(1, p.seq_run_lines);
    const double stride_len = std::max<std::uint32_t>(1, p.stride_run_len);
    const double burst_len = std::max<std::uint32_t>(1, p.burst_lines);
    const double rand_share =
        std::max(0.0, 1.0 - p.seq_fraction - p.stride_fraction);
    const double w_seq = p.seq_fraction / seq_len;
    const double w_stride = p.stride_fraction / stride_len;
    const double w_rand = rand_share / burst_len;
    const double w_total = w_seq + w_stride + w_rand;

    const double pick = w_total > 0.0 ? rng_.nextDouble() * w_total : 0.0;
    if (pick < w_seq) {
        run.type = RunType::Sequential;
        // Geometric-ish length around the mean; at least a handful of
        // lines so direction training always succeeds.
        const double cont =
            1.0 - 1.0 / std::max<std::uint32_t>(2, p.seq_run_lines);
        run.left = 4 + rng_.burstLength(cont, p.seq_run_lines * 4);
        run.stride = 1;
        run.pc_base = kSeqPcBase;
    } else if (pick < w_seq + w_stride) {
        run.type = RunType::Strided;
        const double cont =
            1.0 - 1.0 / std::max<std::uint32_t>(2, p.stride_run_len);
        run.left = 4 + rng_.burstLength(cont, p.stride_run_len * 4);
        run.stride = std::max<std::uint32_t>(2, p.stride_lines);
        run.pc_base = kStridePcBase;
    } else {
        run.type = RunType::Random;
        run.left = rng_.burstLength(
            0.5, std::max<std::uint32_t>(2, p.burst_lines * 2));
        if (run.left < p.burst_lines / 2 + 1)
            run.left = p.burst_lines / 2 + 1;
        run.stride = 1;
        run.pc_base = kRandomPcBase;

        // Pointer-chasing recurrence: some bursts revisit earlier
        // locations, giving the miss stream the temporal correlation a
        // Markov prefetcher can learn. Pool insertion is sparse so the
        // recurrence distance is long: revisited lines have usually
        // left the cache and show up as repeated *misses*.
        if (!revisit_pool_.empty() && rng_.chance(p.revisit_fraction)) {
            run.line =
                revisit_pool_[rng_.nextBelow(revisit_pool_.size())];
        } else {
            run.line = rng_.nextBelow(ws_lines);
            if (rng_.chance(0.02)) {
                if (revisit_pool_.size() < 128)
                    revisit_pool_.push_back(run.line);
                else
                    revisit_pool_[rng_.nextBelow(128)] = run.line;
            }
        }
        run.accesses_left = params_.accesses_per_line;
        return;
    }
    run.line = rng_.nextBelow(ws_lines);
    run.accesses_left = params_.accesses_per_line;
}

padc::core::TraceOp
SyntheticTrace::next()
{
    padc::core::TraceOp op;

    // Compute gap: uniform in [gap/2, 3*gap/2] around the configured mean.
    const std::uint32_t g = params_.avg_gap;
    op.compute_gap =
        g == 0 ? 0
               : static_cast<std::uint32_t>(rng_.nextRange(
                     static_cast<std::int64_t>(g) / 2,
                     static_cast<std::int64_t>(g) + g / 2));

    Run &run = runs_[rotor_ % runs_.size()];
    ++rotor_;

    const std::uint64_t ws_lines =
        std::max<std::uint64_t>(1, params_.working_set_bytes / kLineBytes);
    const std::uint64_t local_line = run.line % ws_lines;
    op.addr = params_.base + lineToAddr(local_line) +
              (static_cast<Addr>(word_) * 8 % kLineBytes);
    op.pc = run.pc_base + 4 * (pc_rotor_ % kPcsPerLoop);
    op.is_load = !rng_.chance(params_.store_fraction);
    op.dependent = rng_.chance(params_.dependent_fraction);

    ++word_;
    ++pc_rotor_;

    // Advance within the run.
    if (run.accesses_left > 1) {
        --run.accesses_left;
    } else {
        run.line += run.stride;
        run.accesses_left = params_.accesses_per_line;
        if (run.left > 0)
            --run.left;
        if (run.left == 0)
            startRun(run);
    }

    // Phase switching.
    ++ops_in_phase_;
    if (params_.num_phases > 1 && phase().ops != 0 &&
        ops_in_phase_ >= phase().ops) {
        ops_in_phase_ = 0;
        phase_idx_ = (phase_idx_ + 1) % params_.num_phases;
        resetRuns();
    }
    return op;
}

} // namespace padc::workload
