#include "workload/trace_profile.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "workload/profile.hh"

namespace padc::workload
{

namespace
{

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, TraceSourceFactory> &
registry()
{
    static std::map<std::string, TraceSourceFactory> profiles;
    return profiles;
}

} // namespace

void
registerTraceProfile(const std::string &name, TraceSourceFactory factory)
{
    if (findProfile(name) != nullptr) {
        throw std::logic_error("trace profile '" + name +
                               "' shadows a built-in synthetic profile");
    }
    std::lock_guard<std::mutex> lock(registryMutex());
    if (!registry().emplace(name, std::move(factory)).second)
        throw std::logic_error("duplicate trace profile name: " + name);
}

bool
isTraceProfile(const std::string &name)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    return registry().count(name) != 0;
}

std::vector<std::string>
traceProfileNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto &entry : registry())
        names.push_back(entry.first);
    return names;
}

void
clearTraceProfiles()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().clear();
}

std::vector<std::string>
mixProfilePool()
{
    std::vector<std::string> pool = allProfileNames();
    std::vector<std::string> traced = traceProfileNames();
    pool.insert(pool.end(), traced.begin(), traced.end());
    std::sort(pool.begin(), pool.end());
    return pool;
}

std::unique_ptr<core::TraceSource>
makeRegisteredTraceSource(const std::string &name)
{
    TraceSourceFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(name);
        if (it == registry().end())
            return nullptr;
        factory = it->second;
    }
    // Invoke outside the lock; factories open files.
    return factory();
}

} // namespace padc::workload
