#include "workload/mixes.hh"

#include <cassert>

#include "common/random.hh"

namespace padc::workload
{

std::vector<Mix>
randomMixes(std::uint32_t count, std::uint32_t cores, std::uint64_t seed)
{
    const auto names = allProfileNames();
    Rng rng(seed);
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        Mix mix;
        for (std::uint32_t c = 0; c < cores; ++c)
            mix.push_back(names[rng.nextBelow(names.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

Mix
caseStudyFriendly()
{
    return {"swim_00", "bwaves_06", "leslie3d_06", "soplex_06"};
}

Mix
caseStudyUnfriendly()
{
    return {"art_00", "galgel_00", "ammp_00", "milc_06"};
}

Mix
caseStudyMixed()
{
    return {"omnetpp_06", "libquantum_06", "galgel_00", "GemsFDTD_06"};
}

TraceParams
traceParamsFor(const Mix &mix, std::uint32_t core, std::uint64_t mix_seed)
{
    assert(core < mix.size());
    const BenchmarkProfile *profile = findProfile(mix[core]);
    assert(profile != nullptr && "unknown profile name in mix");

    TraceParams params = profile->params;
    // Distinct seed per (mix, core) so identical profiles co-running on
    // different cores do not produce lock-step address streams.
    params.seed ^= (mix_seed * 0x9E3779B97F4A7C15ULL) ^
                   (static_cast<std::uint64_t>(core) << 56);
    // Disjoint per-core address regions: cores contend for banks and
    // rows in the shared DRAM but never share lines.
    params.base = static_cast<Addr>(core) << 40;
    return params;
}

} // namespace padc::workload
