#include "workload/mixes.hh"

#include <stdexcept>

#include "common/random.hh"
#include "common/suggest.hh"
#include "workload/generator.hh"
#include "workload/trace_profile.hh"

namespace padc::workload
{

std::vector<Mix>
randomMixes(std::uint32_t count, std::uint32_t cores, std::uint64_t seed)
{
    const auto names = allProfileNames();
    Rng rng(seed);
    std::vector<Mix> mixes;
    mixes.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        Mix mix;
        for (std::uint32_t c = 0; c < cores; ++c)
            mix.push_back(names[rng.nextBelow(names.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

Mix
caseStudyFriendly()
{
    return {"swim_00", "bwaves_06", "leslie3d_06", "soplex_06"};
}

Mix
caseStudyUnfriendly()
{
    return {"art_00", "galgel_00", "ammp_00", "milc_06"};
}

Mix
caseStudyMixed()
{
    return {"omnetpp_06", "libquantum_06", "galgel_00", "GemsFDTD_06"};
}

namespace
{

/** "core N is out of range for a K-profile mix" guard. */
void
checkCore(const Mix &mix, std::uint32_t core)
{
    if (core >= mix.size()) {
        throw std::invalid_argument(
            "core " + std::to_string(core) + " is out of range for a " +
            std::to_string(mix.size()) + "-profile mix");
    }
}

/** Diagnostic for a name that resolves to no synthetic profile. */
std::string
unknownProfileMessage(const std::string &name)
{
    if (isTraceProfile(name)) {
        return "profile '" + name +
               "' is trace-backed and has no generator parameters; "
               "use makeTraceSource()";
    }
    return "unknown profile '" + name + "'" +
           didYouMean(name, mixProfilePool());
}

} // namespace

bool
validateMix(const Mix &mix, ConfigErrors *errors)
{
    bool ok = true;
    for (std::size_t core = 0; core < mix.size(); ++core) {
        const std::string &name = mix[core];
        if (findProfile(name) != nullptr || isTraceProfile(name))
            continue;
        ok = false;
        if (errors != nullptr) {
            errors->add("mix[" + std::to_string(core) + "]",
                        "unknown profile '" + name + "'" +
                            didYouMean(name, mixProfilePool()));
        }
    }
    return ok;
}

TraceParams
traceParamsFor(const Mix &mix, std::uint32_t core, std::uint64_t mix_seed)
{
    checkCore(mix, core);
    const BenchmarkProfile *profile = findProfile(mix[core]);
    if (profile == nullptr)
        throw std::invalid_argument(unknownProfileMessage(mix[core]));

    TraceParams params = profile->params;
    // Distinct seed per (mix, core) so identical profiles co-running on
    // different cores do not produce lock-step address streams.
    params.seed ^= (mix_seed * 0x9E3779B97F4A7C15ULL) ^
                   (static_cast<std::uint64_t>(core) << 56);
    // Disjoint per-core address regions: cores contend for banks and
    // rows in the shared DRAM but never share lines.
    params.base = static_cast<Addr>(core) << 40;
    return params;
}

std::unique_ptr<core::TraceSource>
makeTraceSource(const Mix &mix, std::uint32_t core, std::uint64_t mix_seed)
{
    checkCore(mix, core);
    std::unique_ptr<core::TraceSource> traced =
        makeRegisteredTraceSource(mix[core]);
    if (traced != nullptr)
        return traced;
    return std::make_unique<SyntheticTrace>(
        traceParamsFor(mix, core, mix_seed));
}

} // namespace padc::workload
