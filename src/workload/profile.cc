#include "workload/profile.hh"

namespace padc::workload
{

namespace
{

/**
 * Builder helpers. Parameters chosen per profile to approximate the
 * paper's Table 5 regimes (class, relative memory intensity, stream
 * prefetch accuracy); see the file comment in profile.hh.
 *
 * With the default lookahead distance D = 16 lines, a sequential run of
 * L lines yields stream accuracy ~ (L-16)/L, so run length dials ACC:
 * 2048 -> ~99%, 160 -> ~90%, 48 -> ~67%, 24 -> ~33%.
 */

struct Knobs
{
    std::uint32_t gap;        ///< mean compute instrs between mem ops
    double seq;               ///< line share from sequential streams
    std::uint32_t run_lines;  ///< mean sequential run length
    std::uint32_t burst;      ///< random-burst length
    std::uint64_t ws_kb;      ///< working set
    double dep;               ///< dependent-load fraction
    std::uint32_t conc;       ///< concurrent runs
    double store;             ///< store fraction
    std::uint32_t apl;        ///< accesses per line
};

BenchmarkProfile
make(std::string name, int cls, const Knobs &k)
{
    BenchmarkProfile p;
    p.name = std::move(name);
    p.cls = cls;
    p.params.avg_gap = k.gap;
    p.params.working_set_bytes = k.ws_kb << 10;
    p.params.store_fraction = k.store;
    p.params.dependent_fraction = k.dep;
    p.params.accesses_per_line = k.apl;
    p.params.phases[0].seq_fraction = k.seq;
    p.params.phases[0].seq_run_lines = k.run_lines;
    p.params.phases[0].burst_lines = k.burst;
    p.params.phases[0].concurrent_runs = k.conc;
    return p;
}

BenchmarkProfile
makeStrided(std::string name, int cls, const Knobs &k,
            double stride_frac, std::uint32_t stride_lines)
{
    BenchmarkProfile p = make(std::move(name), cls, k);
    p.params.phases[0].stride_fraction = stride_frac;
    p.params.phases[0].stride_lines = stride_lines;
    p.params.phases[0].stride_run_len = 256;
    return p;
}

std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> v;

    // ---- prefetch-friendly (class 1) ----
    //                                 gap  seq   runL  bst ws_kb     dep  cc store apl
    v.push_back(make("libquantum_06", 1,
                     {6, 1.00, 4096, 1, 256 << 10, 0.00, 2, 0.15, 2}));
    v.push_back(make("bwaves_06", 1,
                     {6, 0.98, 2048, 1, 192 << 10, 0.00, 2, 0.20, 2}));
    v.push_back(make("swim_00", 1,
                     {6, 0.97, 1024, 2, 128 << 10, 0.00, 2, 0.35, 2}));
    v.push_back(make("lbm_06", 1,
                     {6, 0.97, 768, 2, 128 << 10, 0.00, 2, 0.40, 2}));
    v.push_back(make("leslie3d_06", 1,
                     {7, 0.96, 512, 2, 96 << 10, 0.00, 2, 0.25, 2}));
    v.push_back(make("GemsFDTD_06", 1,
                     {10, 0.94, 512, 2, 96 << 10, 0.15, 3, 0.30, 2}));
    v.push_back(make("equake_00", 1,
                     {9, 0.95, 512, 2, 96 << 10, 0.10, 2, 0.20, 2}));
    v.push_back(make("soplex_06", 1,
                     {8, 0.90, 288, 2, 96 << 10, 0.20, 3, 0.25, 2}));
    v.push_back(make("sphinx3_06", 1,
                     {14, 0.80, 64, 2, 64 << 10, 0.20, 3, 0.15, 2}));
    v.push_back(make("wrf_06", 1,
                     {40, 0.92, 512, 2, 64 << 10, 0.10, 2, 0.30, 2}));
    v.push_back(make("lucas_00", 1,
                     {18, 0.90, 160, 2, 64 << 10, 0.20, 2, 0.25, 2}));
    v.push_back(make("cactusADM_06", 1,
                     {40, 0.60, 64, 2, 64 << 10, 0.30, 3, 0.30, 2}));
    v.push_back(make("gcc_06", 1,
                     {30, 0.50, 48, 2, 48 << 10, 0.30, 3, 0.30, 2}));
    v.push_back(make("astar_06", 1,
                     {20, 0.35, 40, 2, 32 << 10, 0.40, 3, 0.25, 2}));
    v.push_back(make("zeusmp_06", 1,
                     {40, 0.75, 96, 2, 48 << 10, 0.20, 3, 0.30, 2}));
    v.push_back(make("mcf_06", 1,
                     {5, 0.30, 32, 2, 256 << 10, 0.60, 3, 0.10, 1}));
    v.push_back(makeStrided("mgrid_00", 1,
                            {12, 0.20, 256, 2, 64 << 10, 0.10, 2, 0.30, 2},
                            0.70, 2));
    v.push_back(makeStrided("facerec_00", 1,
                            {25, 0.20, 128, 2, 48 << 10, 0.20, 2, 0.25, 2},
                            0.65, 4));

    // ---- prefetch-unfriendly (class 2) ----
    // The irregular profiles get a pointer-chasing revisit component:
    // recurring burst locations create the temporal miss correlation
    // that the Markov prefetcher (Section 6.11) exploits while staying
    // useless to the streaming prefetchers.
    auto with_revisit = [](BenchmarkProfile p, double frac) {
        for (auto &phase : p.params.phases)
            phase.revisit_fraction = frac;
        return p;
    };
    v.push_back(with_revisit(
        make("art_00", 2, {6, 0.40, 32, 5, 6 << 10, 0.35, 4, 0.30, 1}),
        0.35));
    v.push_back(with_revisit(
        make("galgel_00", 2, {16, 0.45, 28, 6, 24 << 10, 0.30, 4, 0.25, 2}),
        0.30));
    v.push_back(with_revisit(
        make("ammp_00", 2, {120, 0.08, 32, 3, 24 << 10, 0.50, 4, 0.20, 2}),
        0.45));
    v.push_back(with_revisit(
        make("xalancbmk_06", 2,
             {60, 0.10, 24, 3, 16 << 10, 0.50, 4, 0.25, 2}),
        0.45));
    v.push_back(with_revisit(
        make("omnetpp_06", 2, {12, 0.12, 24, 3, 64 << 10, 0.60, 4, 0.25, 2}),
        0.50));
    {
        // milc: strong accuracy phase behaviour (paper Fig. 4(b)) --
        // an accurate streaming phase alternating with a longer phase of
        // almost-all-useless bursts.
        BenchmarkProfile p = make(
            "milc_06", 2, {6, 0.90, 512, 4, 96 << 10, 0.20, 2, 0.25, 2});
        p.params.num_phases = 2;
        p.params.phases[0].ops = 6000;
        p.params.phases[1] = p.params.phases[0];
        p.params.phases[1].seq_fraction = 0.10;
        p.params.phases[1].seq_run_lines = 64;
        p.params.phases[1].burst_lines = 4;
        p.params.phases[1].concurrent_runs = 4;
        p.params.phases[1].ops = 18000;
        v.push_back(p);
    }

    // ---- prefetch-insensitive (class 0): working set fits the L2 ----
    auto insensitive = [](std::string name, std::uint32_t gap,
                          std::uint64_t ws_kb) {
        return make(std::move(name), 0,
                    {gap, 0.50, 64, 4, ws_kb, 0.30, 2, 0.30, 4});
    };
    v.push_back(insensitive("eon_00", 60, 48));
    v.push_back(insensitive("gamess_06", 70, 64));
    v.push_back(insensitive("sjeng_06", 40, 128));
    v.push_back(insensitive("hmmer_06", 25, 96));
    v.push_back(insensitive("gobmk_06", 50, 112));
    v.push_back(insensitive("namd_06", 65, 80));
    v.push_back(insensitive("povray_06", 80, 48));
    v.push_back(insensitive("dealII_06", 35, 160));
    v.push_back(insensitive("calculix_06", 55, 128));
    v.push_back(insensitive("perlbench_06", 45, 192));
    v.push_back(insensitive("vpr_00", 30, 224));

    // A deterministic per-profile seed; the mix builder further salts it
    // per (mix, core).
    std::uint64_t seed = 0x1234;
    for (auto &profile : v)
        profile.params.seed = seed++;
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = buildProfiles();
    return profiles;
}

const BenchmarkProfile *
findProfile(std::string_view name)
{
    for (const auto &profile : allProfiles()) {
        if (profile.name == name)
            return &profile;
    }
    return nullptr;
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &profile : allProfiles())
        names.push_back(profile.name);
    return names;
}

std::vector<std::string>
profileNamesInClass(int cls)
{
    std::vector<std::string> names;
    for (const auto &profile : allProfiles()) {
        if (profile.cls == cls)
            names.push_back(profile.name);
    }
    return names;
}

} // namespace padc::workload
