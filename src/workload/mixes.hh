/**
 * @file
 * Multiprogrammed workload construction (paper Section 5.1: randomly
 * chosen SPEC combinations for the 2-, 4-, and 8-core experiments, plus
 * the three 4-core case studies of Section 6.3).
 */

#ifndef PADC_WORKLOAD_MIXES_HH
#define PADC_WORKLOAD_MIXES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/trace.hh"
#include "workload/profile.hh"

namespace padc::workload
{

/** A multiprogrammed workload: one profile name per core. */
using Mix = std::vector<std::string>;

/**
 * Randomly chosen mixes from the full profile pool, deterministic in
 * @p seed (mirrors the paper's 54/32/21 random workload combinations).
 */
std::vector<Mix> randomMixes(std::uint32_t count, std::uint32_t cores,
                             std::uint64_t seed);

/** Case study I (Section 6.3.1): four prefetch-friendly applications. */
Mix caseStudyFriendly();

/** Case study II (Section 6.3.2): four prefetch-unfriendly applications. */
Mix caseStudyUnfriendly();

/** Case study III (Section 6.3.3): two friendly + two unfriendly. */
Mix caseStudyMixed();

/**
 * Check every name in @p mix against the profile pool (built-in
 * synthetic profiles plus registered trace-backed profiles),
 * accumulating one ConfigError per unknown name -- each with a
 * Levenshtein "did you mean" suggestion -- instead of stopping at the
 * first. Field paths are "mix[core]".
 * @return true when every name resolves.
 */
bool validateMix(const Mix &mix, ConfigErrors *errors);

/**
 * Concrete trace parameters for one core of a mix: the synthetic
 * profile's parameters with a per-(mix, core) seed and a disjoint
 * address-space base.
 * @throws std::invalid_argument when @p core is out of range or the
 *         name is not a synthetic profile (unknown names carry a
 *         "did you mean" suggestion; trace-backed profiles have no
 *         generator parameters and are called out as such).
 */
TraceParams traceParamsFor(const Mix &mix, std::uint32_t core,
                           std::uint64_t mix_seed);

/**
 * Instantiate the trace source for one core of a mix: a fresh
 * StreamingFileTrace-backed replay for trace-backed profiles, otherwise
 * a SyntheticTrace over traceParamsFor(). This is the single entry
 * point the simulator uses, so captured traces drop into mixes
 * anywhere a synthetic profile fits.
 * @throws std::invalid_argument as traceParamsFor() does.
 */
std::unique_ptr<core::TraceSource>
makeTraceSource(const Mix &mix, std::uint32_t core,
                std::uint64_t mix_seed);

} // namespace padc::workload

#endif // PADC_WORKLOAD_MIXES_HH
