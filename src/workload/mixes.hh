/**
 * @file
 * Multiprogrammed workload construction (paper Section 5.1: randomly
 * chosen SPEC combinations for the 2-, 4-, and 8-core experiments, plus
 * the three 4-core case studies of Section 6.3).
 */

#ifndef PADC_WORKLOAD_MIXES_HH
#define PADC_WORKLOAD_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/profile.hh"

namespace padc::workload
{

/** A multiprogrammed workload: one profile name per core. */
using Mix = std::vector<std::string>;

/**
 * Randomly chosen mixes from the full profile pool, deterministic in
 * @p seed (mirrors the paper's 54/32/21 random workload combinations).
 */
std::vector<Mix> randomMixes(std::uint32_t count, std::uint32_t cores,
                             std::uint64_t seed);

/** Case study I (Section 6.3.1): four prefetch-friendly applications. */
Mix caseStudyFriendly();

/** Case study II (Section 6.3.2): four prefetch-unfriendly applications. */
Mix caseStudyUnfriendly();

/** Case study III (Section 6.3.3): two friendly + two unfriendly. */
Mix caseStudyMixed();

/**
 * Concrete trace parameters for one core of a mix: the profile's
 * parameters with a per-(mix, core) seed and a disjoint address-space
 * base.
 * @pre the profile name exists.
 */
TraceParams traceParamsFor(const Mix &mix, std::uint32_t core,
                           std::uint64_t mix_seed);

} // namespace padc::workload

#endif // PADC_WORKLOAD_MIXES_HH
