/**
 * @file
 * Benchmark profiles: synthetic stand-ins for the paper's SPEC CPU
 * 2000/2006 benchmarks (Table 5).
 *
 * Each profile pairs a benchmark name with generator parameters tuned so
 * the profile lands in the paper's class with a similar memory intensity
 * (MPKI) and stream-prefetch accuracy (ACC) regime:
 *   class 0 -- prefetch-insensitive (working set fits the L2, or
 *              negligible memory traffic),
 *   class 1 -- prefetch-friendly (long sequential/strided runs; stream
 *              prefetches are accurate),
 *   class 2 -- prefetch-unfriendly (short bursts at random locations;
 *              the stream prefetcher trains but overshoots, so most
 *              prefetches are useless).
 *
 * The key structural lever: with prefetch distance D, a sequential run
 * of L lines yields stream-prefetch accuracy of roughly (L-D)/L, so run
 * length directly dials ACC.
 */

#ifndef PADC_WORKLOAD_PROFILE_HH
#define PADC_WORKLOAD_PROFILE_HH

#include <string>
#include <string_view>
#include <vector>

#include "workload/generator.hh"

namespace padc::workload
{

/** One benchmark stand-in. */
struct BenchmarkProfile
{
    std::string name;  ///< paper benchmark name (e.g. "libquantum_06")
    int cls = 0;       ///< paper class: 0, 1, or 2
    TraceParams params;
};

/** The full profile pool (the paper's Table 5 set). */
const std::vector<BenchmarkProfile> &allProfiles();

/**
 * Look up a profile by name.
 * @return pointer into the registry, or nullptr if unknown.
 */
const BenchmarkProfile *findProfile(std::string_view name);

/** Names of every registered profile. */
std::vector<std::string> allProfileNames();

/** Names of profiles in a given class. */
std::vector<std::string> profileNamesInClass(int cls);

} // namespace padc::workload

#endif // PADC_WORKLOAD_PROFILE_HH
