/**
 * @file
 * Registry of trace-backed workload profiles.
 *
 * Synthetic profiles (profile.hh) are parameterizations of the
 * generator; trace-backed profiles replay a captured or imported trace
 * file instead. Registering one under a name makes it usable anywhere a
 * profile name is accepted -- in a Mix, in case studies, on the `padc`
 * command line -- without the workload layer depending on the trace
 * subsystem: registration supplies an opaque factory, and src/trace
 * registers StreamingFileTrace factories for every corpus entry it
 * loads (trace -> workload, never the reverse).
 *
 * The registry is process-global and mutex-guarded; experiments run on
 * a thread pool and may resolve mixes concurrently.
 */

#ifndef PADC_WORKLOAD_TRACE_PROFILE_HH
#define PADC_WORKLOAD_TRACE_PROFILE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace padc::workload
{

/** Produces a fresh, independently-positioned source per call. */
using TraceSourceFactory =
    std::function<std::unique_ptr<core::TraceSource>()>;

/**
 * Register a trace-backed profile.
 * @throws std::logic_error if @p name is already taken, by another
 *         trace profile or by a built-in synthetic profile.
 */
void registerTraceProfile(const std::string &name,
                          TraceSourceFactory factory);

/** Whether @p name names a registered trace-backed profile. */
bool isTraceProfile(const std::string &name);

/** Names of all registered trace-backed profiles, sorted. */
std::vector<std::string> traceProfileNames();

/** Drop all registered trace-backed profiles (tests). */
void clearTraceProfiles();

/**
 * Every name a Mix may reference: built-in synthetic profiles plus
 * registered trace-backed profiles. The candidate pool behind
 * "did you mean" suggestions.
 */
std::vector<std::string> mixProfilePool();

/**
 * Instantiate the trace source registered under @p name.
 * @return nullptr when @p name is not a trace-backed profile.
 */
std::unique_ptr<core::TraceSource>
makeRegisteredTraceSource(const std::string &name);

} // namespace padc::workload

#endif // PADC_WORKLOAD_TRACE_PROFILE_HH
