/**
 * @file
 * Synthetic memory-trace generator.
 *
 * Stands in for the paper's SPEC CPU 2000/2006 Pinpoint traces (see
 * DESIGN.md, substitution 1). A trace is a phase-structured stream of
 * "runs": sequential runs (long ones make stream prefetchers accurate
 * and produce DRAM row hits), strided runs, and random bursts (short
 * sequential flurries at random locations, which bait a stream
 * prefetcher into issuing mostly-useless prefetches -- the behaviour of
 * the paper's prefetch-unfriendly class). Two parameter phases can
 * alternate to model accuracy phase behaviour like milc's (Fig. 4(b)).
 *
 * Everything is derived deterministically from the seed.
 */

#ifndef PADC_WORKLOAD_GENERATOR_HH
#define PADC_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "core/trace.hh"

namespace padc::workload
{

/** Parameters of one generator phase. */
struct PhaseParams
{
    /**
     * Fraction of memory traffic (lines touched) coming from long
     * sequential streams. Internally converted to per-run selection
     * probabilities by weighting with mean run lengths, so a 0.9 here
     * really means ~90% of lines are streamed even though random bursts
     * are far more numerous as runs.
     */
    double seq_fraction = 0.9;

    /** Fraction of traffic from strided runs (rest: random bursts). */
    double stride_fraction = 0.0;

    /** Mean length of sequential runs, in cache lines. */
    std::uint32_t seq_run_lines = 1024;

    /** Stride magnitude for strided runs, in cache lines. */
    std::uint32_t stride_lines = 4;

    /** Mean length of strided runs, in elements. */
    std::uint32_t stride_run_len = 256;

    /** Mean length of random-mode bursts, in cache lines. */
    std::uint32_t burst_lines = 4;

    /**
     * Probability that a random burst revisits a previously visited
     * location instead of a fresh one (pointer-chasing over a recurring
     * node set). Creates the temporal miss correlation that Markov-style
     * prefetchers exploit; near-zero for pure streaming codes.
     */
    double revisit_fraction = 0.0;

    /**
     * Concurrently interleaved runs ("arrays" the loop walks at once).
     * Interleaving several streams spreads accesses across DRAM banks
     * and rows, creating the demand/prefetch row-buffer interference
     * the paper's Figure 2 illustrates.
     */
    std::uint32_t concurrent_runs = 4;

    /** Phase length in memory operations (0 = phase never ends). */
    std::uint64_t ops = 0;
};

/** Full generator parameterization. */
struct TraceParams
{
    std::uint64_t seed = 1;

    /** Address-space offset (keeps per-core working sets disjoint). */
    Addr base = 0;

    /** Mean compute instructions between memory operations. */
    std::uint32_t avg_gap = 8;

    /** Fraction of memory operations that are stores. */
    double store_fraction = 0.25;

    /**
     * Fraction of memory operations that are address-dependent on older
     * memory results (cannot issue until outstanding misses drain).
     * Controls memory-level parallelism: streaming codes sit around
     * 0.2-0.4 (induction/index chains); pointer-chasing codes 0.6+.
     */
    double dependent_fraction = 0.3;

    /** Size of the region runs are drawn from. */
    std::uint64_t working_set_bytes = 8ULL << 20;

    /** Accesses issued to each line before advancing. */
    std::uint32_t accesses_per_line = 2;

    PhaseParams phases[2];
    std::uint32_t num_phases = 1;
};

/**
 * The synthetic trace source; see file comment.
 */
class SyntheticTrace : public padc::core::TraceSource
{
  public:
    explicit SyntheticTrace(const TraceParams &params);

    padc::core::TraceOp next() override;
    void reset() override;

  private:
    enum class RunType : std::uint8_t { Sequential, Strided, Random };

    /** One active run cursor (an "array" the synthetic loop walks). */
    struct Run
    {
        RunType type = RunType::Sequential;
        std::uint64_t line = 0;   ///< current line index (local)
        std::uint32_t left = 0;   ///< line steps left in the run
        std::uint32_t accesses_left = 0;
        std::uint32_t stride = 1; ///< line step
        Addr pc_base = 0;
    };

    void startRun(Run &run);
    void resetRuns();
    const PhaseParams &phase() const { return params_.phases[phase_idx_]; }

    TraceParams params_;
    Rng rng_;

    std::uint32_t phase_idx_ = 0;
    std::uint64_t ops_in_phase_ = 0;

    std::vector<Run> runs_;     ///< concurrently interleaved cursors
    std::vector<std::uint64_t> revisit_pool_; ///< recurring burst starts
    std::uint32_t rotor_ = 0;   ///< round-robin position
    std::uint32_t word_ = 0;    ///< rotating intra-line offset
    std::uint32_t pc_rotor_ = 0;
};

} // namespace padc::workload

#endif // PADC_WORKLOAD_GENERATOR_HH
