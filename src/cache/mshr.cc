#include "cache/mshr.hh"

#include <cassert>

namespace padc::cache
{

MshrFile::MshrFile(std::uint32_t capacity) : capacity_(capacity)
{
    entries_.reserve(capacity);
}

MshrEntry *
MshrFile::find(Addr line_addr)
{
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

const MshrEntry *
MshrFile::find(Addr line_addr) const
{
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : &it->second;
}

MshrEntry &
MshrFile::alloc(Addr line_addr)
{
    assert(!full());
    assert(find(line_addr) == nullptr);
    MshrEntry &entry = entries_[line_addr];
    entry.line_addr = line_addr;
    peak_ = std::max(peak_, entries_.size());
    return entry;
}

void
MshrFile::release(Addr line_addr)
{
    [[maybe_unused]] const auto erased = entries_.erase(line_addr);
    assert(erased == 1);
}

} // namespace padc::cache
