#include "cache/cache.hh"

#include <cassert>
#include <utility>

namespace padc::cache
{

bool
CacheConfig::valid() const
{
    ConfigErrors errors;
    validate(errors, "cache");
    return errors.ok();
}

void
CacheConfig::validate(ConfigErrors &errors, const std::string &prefix) const
{
    if (ways == 0) {
        errors.add(prefix + ".ways", "must be >= 1");
        return; // the remaining checks divide by ways
    }
    if (hit_latency == 0)
        errors.add(prefix + ".hit_latency", "must be >= 1 cycle");
    if (size_bytes % (kLineBytes * ways) != 0) {
        errors.add(prefix + ".size_bytes",
                   "must be a multiple of line size (" +
                       std::to_string(kLineBytes) + ") x ways (" +
                       std::to_string(ways) + "); got " +
                       std::to_string(size_bytes));
        return; // sets() is meaningless below
    }
    const std::uint32_t s = sets();
    if (s == 0 || (s & (s - 1)) != 0) {
        errors.add(prefix + ".size_bytes",
                   "implies " + std::to_string(s) +
                       " sets; the set count must be a non-zero power "
                       "of two");
    }
}

SetAssocCache::SetAssocCache(const CacheConfig &config, std::string name)
    : config_(config), name_(std::move(name)),
      lines_(static_cast<std::size_t>(config.sets()) * config.ways),
      repl_(config.repl)
{
    assert(config_.valid());
}

std::uint32_t
SetAssocCache::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineIndex(line_addr) &
                                      (config_.sets() - 1));
}

Line *
SetAssocCache::lookup(Addr addr)
{
    const Addr line_addr = lineAlign(addr);
    const std::uint32_t set = setIndex(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (base[way].valid && base[way].line_addr == line_addr)
            return &base[way];
    }
    return nullptr;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->lookup(addr) != nullptr;
}

Line *
SetAssocCache::access(Addr addr)
{
    Line *line = lookup(addr);
    if (line != nullptr) {
        ++stats_.hits;
        line->stamp = next_stamp_++;
        return line;
    }
    ++stats_.misses;
    return nullptr;
}

Line *
SetAssocCache::peek(Addr addr)
{
    return lookup(addr);
}

const Line *
SetAssocCache::peek(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->lookup(addr);
}

EvictResult
SetAssocCache::fill(Addr addr, CoreId owner, Addr pc, bool prefetched,
                    bool fill_row_hit, std::uint32_t service_time)
{
    const Addr line_addr = lineAlign(addr);
    assert(lookup(line_addr) == nullptr && "fill of already-present line");

    const std::uint32_t set = setIndex(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.ways];

    Line *slot = nullptr;
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (!base[way].valid) {
            slot = &base[way];
            break;
        }
    }

    EvictResult evicted;
    if (slot == nullptr) {
        std::vector<std::uint64_t> stamps(config_.ways);
        for (std::uint32_t way = 0; way < config_.ways; ++way)
            stamps[way] = base[way].stamp;
        Line &victim = base[repl_.victim(stamps)];

        evicted.valid = true;
        evicted.line_addr = victim.line_addr;
        evicted.dirty = victim.dirty;
        evicted.prefetched_unused = victim.prefetched;
        evicted.owner = victim.owner;
        evicted.pc = victim.pc;
        evicted.service_time = victim.service_time;

        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.dirty_evictions;
        if (victim.prefetched)
            ++stats_.useless_evictions;
        slot = &victim;
    }

    slot->line_addr = line_addr;
    slot->valid = true;
    slot->dirty = false;
    slot->prefetched = prefetched;
    slot->owner = owner;
    slot->pc = pc;
    slot->fill_row_hit = fill_row_hit;
    slot->service_time = service_time;
    slot->stamp = next_stamp_++;
    ++stats_.fills;
    return evicted;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    Line *line = lookup(addr);
    if (line == nullptr)
        return false;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    line->prefetched = false;
    line->line_addr = kInvalidAddr;
    line->stamp = 0;
    return was_dirty;
}

} // namespace padc::cache
