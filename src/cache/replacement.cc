#include "cache/replacement.hh"

namespace padc::cache
{

ReplacementPolicy::ReplacementPolicy(ReplPolicyKind kind, std::uint64_t seed)
    : kind_(kind), rand_state_(seed | 1)
{
}

std::uint32_t
ReplacementPolicy::victim(const std::vector<std::uint64_t> &stamps)
{
    if (kind_ == ReplPolicyKind::Random) {
        // xorshift64: deterministic, cheap, good enough for victim choice.
        rand_state_ ^= rand_state_ << 13;
        rand_state_ ^= rand_state_ >> 7;
        rand_state_ ^= rand_state_ << 17;
        return static_cast<std::uint32_t>(rand_state_ % stamps.size());
    }

    std::uint32_t victim_way = 0;
    for (std::uint32_t way = 1; way < stamps.size(); ++way) {
        if (stamps[way] < stamps[victim_way])
            victim_way = way;
    }
    return victim_way;
}

} // namespace padc::cache
