/**
 * @file
 * Miss Status Holding Registers for the L2 cache.
 *
 * Tracks every outstanding L2 miss (demand or prefetch) and the loads
 * waiting for it. The paper sizes the MSHR file identically to the
 * memory request buffer (Table 4), so a full MSHR file is the same
 * back-pressure point as a full request buffer.
 *
 * A demand miss that finds an in-flight *prefetch* entry promotes it
 * (paper Section 4.1: the prefetch becomes a demand and counts as used);
 * Adaptive Prefetch Dropping invalidates entries that still have their
 * prefetch flag set, which is safe exactly because promotion clears it.
 */

#ifndef PADC_CACHE_MSHR_HH
#define PADC_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace padc::cache
{

/** Identifies a core-side load waiting on a miss. */
struct LoadToken
{
    CoreId core = 0;
    std::uint64_t tag = 0; ///< core-private identifier of the load
};

/** One outstanding L2 miss. */
struct MshrEntry
{
    Addr line_addr = kInvalidAddr;
    CoreId core = 0; ///< core that created the entry
    Addr pc = 0;

    /**
     * Request class of the miss (the class its memory request carries).
     * Prefetch while the miss is still a pure (unpromoted) prefetch;
     * rewritten to DemandRead on promotion.
     */
    RequestClass cls = RequestClass::DemandRead;

    /** True if the miss was created by the prefetcher. */
    bool was_prefetch = false;

    /** True while the miss is still a pure prefetch (unpromoted). */
    bool isPrefetch() const { return cls == RequestClass::Prefetch; }

    /** A store is among the waiters: the line fills dirty. */
    bool store_waiting = false;

    Cycle issue_cycle = 0;

    /** Loads blocked on this line. */
    std::vector<LoadToken> waiters;
};

/**
 * Fixed-capacity MSHR file, indexed by line address.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t capacity);

    bool full() const { return entries_.size() >= capacity_; }

    std::size_t size() const { return entries_.size(); }

    std::uint32_t capacity() const { return capacity_; }

    /** Find the entry for @p line_addr, or nullptr. */
    MshrEntry *find(Addr line_addr);
    const MshrEntry *find(Addr line_addr) const;

    /**
     * Allocate an entry. @pre !full() && find(line_addr) == nullptr.
     * @return reference to the new entry for the caller to fill in.
     */
    MshrEntry &alloc(Addr line_addr);

    /** Release the entry for @p line_addr. @pre it exists. */
    void release(Addr line_addr);

    /** Peak occupancy seen (for reporting). */
    std::size_t peak() const { return peak_; }

  private:
    std::uint32_t capacity_;
    std::unordered_map<Addr, MshrEntry> entries_;
    std::size_t peak_ = 0;
};

} // namespace padc::cache

#endif // PADC_CACHE_MSHR_HH
