/**
 * @file
 * Victim-selection policies for the set-associative cache.
 *
 * LRU is the baseline (and what the paper's processor model uses); a
 * deterministic pseudo-random policy is provided for sensitivity tests.
 */

#ifndef PADC_CACHE_REPLACEMENT_HH
#define PADC_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace padc::cache
{

/** Replacement policy selector. */
enum class ReplPolicyKind : std::uint8_t
{
    Lru,
    Random,
};

/**
 * Chooses a victim way within a set.
 *
 * The cache passes the per-way recency stamps (larger = more recently
 * used) and validity; invalid ways are always preferred and handled by
 * the cache itself before consulting the policy.
 */
class ReplacementPolicy
{
  public:
    explicit ReplacementPolicy(ReplPolicyKind kind,
                               std::uint64_t seed = 0x5EEDULL);

    /**
     * Pick the victim among @p ways valid lines.
     * @param stamps recency stamp per way (larger = newer)
     * @return way index of the victim
     */
    std::uint32_t victim(const std::vector<std::uint64_t> &stamps);

    ReplPolicyKind kind() const { return kind_; }

  private:
    ReplPolicyKind kind_;
    std::uint64_t rand_state_;
};

} // namespace padc::cache

#endif // PADC_CACHE_REPLACEMENT_HH
