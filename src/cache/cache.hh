/**
 * @file
 * Set-associative write-back cache with per-line Prefetch (P) bits.
 *
 * This is the storage building block used for both the per-core L1D and
 * the (private or shared) L2. Besides the usual tag/valid/dirty state,
 * every line tracks:
 *  - the P bit (line was brought in by a prefetch and not yet used),
 *  - the owning core (whose prefetcher fetched it),
 *  - whether its fill was serviced as a DRAM row-hit (for the RBHU
 *    metric of paper Section 6.1.1),
 *  - the memory service time of its fill (for the Fig. 4(a) histogram).
 *
 * The cache is a passive structure: hit/miss/fill/evict bookkeeping only.
 * Orchestration (MSHRs, prefetch-usefulness counting, writebacks) lives
 * in sim::System.
 */

#ifndef PADC_CACHE_CACHE_HH
#define PADC_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "cache/replacement.hh"

namespace padc::cache
{

/** Cache geometry and latency. */
struct CacheConfig
{
    std::uint64_t size_bytes = 512 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t hit_latency = 15; ///< processor cycles
    ReplPolicyKind repl = ReplPolicyKind::Lru;

    std::uint32_t sets() const
    {
        return static_cast<std::uint32_t>(size_bytes / (kLineBytes * ways));
    }

    bool valid() const;

    /**
     * Append a structured diagnostic per violated constraint, with
     * field paths under @p prefix (e.g. "l2.ways"). valid() is
     * equivalent to validate() producing no errors.
     */
    void validate(ConfigErrors &errors, const std::string &prefix) const;
};

/** Per-line metadata. */
struct Line
{
    Addr line_addr = kInvalidAddr; ///< line-aligned address (tag+index)
    bool valid = false;
    bool dirty = false;

    /** P bit: filled by a prefetch and not yet referenced by a demand. */
    bool prefetched = false;

    CoreId owner = 0; ///< core whose request filled the line

    Addr pc = 0; ///< PC of the instruction that triggered the fill
                 ///< (used by the DDPF prefetch-filter history updates)

    bool fill_row_hit = false;      ///< fill was a DRAM row-hit
    std::uint32_t service_time = 0; ///< memory service time of the fill

    std::uint64_t stamp = 0; ///< recency (larger = newer)
};

/** Result of inserting a line: describes the evicted victim, if any. */
struct EvictResult
{
    bool valid = false;  ///< a victim line was evicted
    Addr line_addr = kInvalidAddr;
    bool dirty = false;
    bool prefetched_unused = false; ///< victim had its P bit still set
    CoreId owner = 0;
    Addr pc = 0; ///< fill PC of the victim (for DDPF updates)
    std::uint32_t service_time = 0;
};

/** Hit/miss and fill counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t useless_evictions = 0; ///< P-bit lines evicted unused
};

/**
 * The cache array. All methods take line-aligned or raw byte addresses;
 * alignment is applied internally.
 */
class SetAssocCache
{
  public:
    SetAssocCache(const CacheConfig &config, std::string name);

    /** Presence check without any state change (used by prefetch issue). */
    bool probe(Addr addr) const;

    /**
     * Look up @p addr for a demand access. On a hit the line's recency is
     * updated and it is returned (so the caller can read/clear the P bit
     * and set dirty); on a miss nullptr is returned. Hit/miss statistics
     * are updated.
     */
    Line *access(Addr addr);

    /** Look up without statistics or recency update (for inspection). */
    Line *peek(Addr addr);
    const Line *peek(Addr addr) const;

    /**
     * Insert a line, evicting a victim if the set is full.
     *
     * @param addr       address of the new line
     * @param owner      core responsible for the fill
     * @param pc         PC of the instruction that triggered the fill
     * @param prefetched initial P-bit value
     * @param fill_row_hit the DRAM service of this fill was a row-hit
     * @param service_time memory service time of the fill, in cycles
     * @return description of the evicted victim (valid == false if none)
     */
    EvictResult fill(Addr addr, CoreId owner, Addr pc, bool prefetched,
                     bool fill_row_hit, std::uint32_t service_time);

    /**
     * Remove the line holding @p addr if present (back-invalidation).
     * @return true if the removed line was dirty.
     */
    bool invalidate(Addr addr);

    const CacheStats &stats() const { return stats_; }

    const CacheConfig &config() const { return config_; }

    const std::string &name() const { return name_; }

    /**
     * Visit every valid line (end-of-run accounting of still-unused
     * prefetched lines).
     */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const auto &line : lines_) {
            if (line.valid)
                fn(line);
        }
    }

  private:
    std::uint32_t setIndex(Addr line_addr) const;
    Line *lookup(Addr addr);

    CacheConfig config_;
    std::string name_;
    std::vector<Line> lines_; ///< sets_ * ways_, set-major
    ReplacementPolicy repl_;
    std::uint64_t next_stamp_ = 1;
    CacheStats stats_;
};

} // namespace padc::cache

#endif // PADC_CACHE_CACHE_HH
