/**
 * @file
 * Importers for externally produced traces, normalizing foreign
 * formats into TraceOp streams that `padc trace convert` then writes
 * as PADCTRC2 (or PADCTRC1).
 *
 * Two formats are supported:
 *
 * 1. Text/CSV memtrace -- one memory operation per line:
 *
 *        addr,pc,rw,gap
 *
 *    addr/pc accept hex (0x... prefix) or decimal; rw is one of
 *    R/W, r/w, L/S, l/s, 0/1 (0 = read/load); gap is the decimal
 *    count of non-memory instructions preceding the op. Blank lines
 *    and lines starting with '#' are skipped. An optional fifth field
 *    `dep` (0/1) marks address-dependent ops. Malformed lines are
 *    rejected with a diagnostic naming the line number and the
 *    offending field -- imports are strict, never silently lossy.
 *
 * 2. ChampSim-style fixed binary records -- the 64-byte little-endian
 *    instruction record ChampSim's tracer emits:
 *
 *        off size field
 *          0    8 ip
 *          8    1 is_branch
 *          9    1 branch_taken
 *         10    2 destination_registers[2]
 *         12    4 source_registers[4]
 *         16   16 destination_memory[2]  (u64 each; 0 = unused)
 *         32   32 source_memory[4]       (u64 each; 0 = unused)
 *
 *    Each record contributes one load per non-zero source_memory slot
 *    and one store per non-zero destination_memory slot, at pc = ip;
 *    records without memory operands accumulate into the next op's
 *    compute gap. A trailing partial record is rejected as truncation.
 *    (ChampSim distributes traces xz-compressed; decompress first.)
 */

#ifndef PADC_TRACE_IMPORT_HH
#define PADC_TRACE_IMPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace padc::trace
{

/** Foreign formats `padc trace convert` can ingest. */
enum class ImportFormat : std::uint8_t
{
    Csv,      ///< text memtrace: addr,pc,rw,gap[,dep]
    ChampSim, ///< 64-byte fixed instruction records
};

/** What an import consumed and produced. */
struct ImportStats
{
    std::uint64_t lines = 0;   ///< text lines / binary records read
    std::uint64_t skipped = 0; ///< blank + comment lines (CSV only)
    std::uint64_t ops = 0;     ///< TraceOps produced
};

/**
 * Import a text/CSV memtrace (format above).
 * @return false with a per-line diagnostic ("line 17: ...") in
 *         @p error on the first malformed line; @p ops is cleared.
 */
bool importCsvMemtrace(const std::string &path,
                       std::vector<core::TraceOp> *ops,
                       std::string *error = nullptr,
                       ImportStats *stats = nullptr);

/**
 * Import a ChampSim-style binary record trace (format above).
 * @return false with a diagnostic naming the offending record on
 *         malformed input; @p ops is cleared.
 */
bool importChampSim(const std::string &path,
                    std::vector<core::TraceOp> *ops,
                    std::string *error = nullptr,
                    ImportStats *stats = nullptr);

/** Dispatch on @p format. */
bool importTrace(ImportFormat format, const std::string &path,
                 std::vector<core::TraceOp> *ops,
                 std::string *error = nullptr,
                 ImportStats *stats = nullptr);

} // namespace padc::trace

#endif // PADC_TRACE_IMPORT_HH
