/**
 * @file
 * Streaming trace replay: a core::TraceSource over an on-disk trace
 * file (PADCTRC1 or PADCTRC2) that decodes block by block with bounded
 * memory instead of loading the whole file, loops at end-of-trace to
 * preserve the infinite-stream contract, and replays the exact same
 * sequence again after reset().
 *
 * This is the corpus subsystem's run-time path: experiment sweeps
 * construct one StreamingFileTrace per trace-backed mix slot, so even
 * multi-gigabyte captures cost only one decoded block (~block_ops
 * operations) of resident memory per core.
 */

#ifndef PADC_TRACE_STREAM_HH
#define PADC_TRACE_STREAM_HH

#include <string>
#include <vector>

#include "core/trace.hh"
#include "trace/format.hh"

namespace padc::trace
{

/**
 * A looping, block-streamed TraceSource over a recorded trace file.
 * Construction failure (missing file, bad header/index, empty trace)
 * is observable via ok(); per-block checksums are validated every time
 * a block is (re-)loaded.
 */
class StreamingFileTrace : public core::TraceSource
{
  public:
    explicit StreamingFileTrace(const std::string &path);

    /** True when the trace opened, validated, and holds operations. */
    bool ok() const { return ok_; }

    /** Why ok() is false, or the first mid-stream load failure. */
    const std::string &error() const { return error_; }

    /** Total recorded operations (one loop of the stream). */
    std::uint64_t size() const { return reader_.info().op_count; }

    /** Format of the backing file. */
    TraceFormat format() const { return reader_.info().format; }

    /**
     * Next operation; wraps to the first block after the last. On a
     * mid-stream load failure (file mutated underneath the run) the
     * error latches into error() and a neutral op is returned --
     * TraceSource::next() must not fail.
     */
    core::TraceOp next() override;

    /** Restart the stream: identical sequence from the first op. */
    void reset() override;

  private:
    /** Load @p block into block_; latches error_ on failure. */
    bool loadBlock(std::uint64_t block);

    BlockReader reader_;
    std::vector<core::TraceOp> block_; ///< decoded current block
    std::size_t pos_ = 0;              ///< next op within block_
    std::uint64_t block_number_ = 0;   ///< index of block_
    bool ok_ = false;
    std::string error_;
};

} // namespace padc::trace

#endif // PADC_TRACE_STREAM_HH
