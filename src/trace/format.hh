/**
 * @file
 * PADCTRC2: the compact on-disk workload-trace format, plus format
 * probing/verification shared by the corpus tooling.
 *
 * The v1 format (core/trace_file.hh) spends a fixed 24 bytes per
 * operation. PADCTRC2 delta-encodes each operation against its
 * predecessor and varint-packs the result, cutting generated traces to
 * a few bytes per op (>= 2x smaller; typically 4-5x), while remaining
 * integrity-checked end to end and decodable block by block with
 * bounded memory.
 *
 * ## Byte-level layout (all integers little-endian)
 *
 *   header (40 bytes):
 *     off size field
 *       0    8 magic "PADCTRC2"
 *       8    4 header_size (= 40; readers skip unknown trailing header
 *              bytes, so future revisions can extend it compatibly)
 *      12    4 block_ops    (max operations per block, > 0)
 *      16    8 op_count     (total operations in the file)
 *      24    8 index_offset (file offset of the block index)
 *      32    8 file_checksum (FNV-1a over all block payload bytes,
 *              in file order)
 *
 *   blocks (back to back, starting at header_size):
 *       0    4 payload_size   (encoded bytes that follow the 16-byte
 *                              block header)
 *       4    4 block_op_count (operations in this block; > 0,
 *                              <= header block_ops)
 *       8    8 block_checksum (FNV-1a over the payload)
 *      16  ... payload
 *
 *   block index (at index_offset, right after the last block):
 *       0    8 num_blocks
 *       8 16*N per block: { block_offset u64, first_op u64 }
 *            8 index_checksum (FNV-1a over the preceding index bytes)
 *
 *   The file ends exactly at the end of the index; extra bytes are
 *   rejected as trailing garbage.
 *
 * ## Per-op payload encoding
 *
 * Delta state (prev_addr, prev_pc) resets to 0 at each block start, so
 * every block is independently decodable. Each op is:
 *
 *   flags byte: bit0 = is_load, bit1 = dependent,
 *               bits 2-7 = compute_gap when < 63 (inline),
 *               value 63 = escape: the gap follows as a varint
 *   varint zigzag(addr - prev_addr)
 *   varint zigzag(pc - prev_pc)
 *   [varint compute_gap]   only when the flags escaped it
 *
 * Varints are LEB128 (7 bits per byte, high bit = continue, max 10
 * bytes for a u64); zigzag maps signed deltas to unsigned
 * ((n << 1) ^ (n >> 63)) so small negative strides stay short.
 */

#ifndef PADC_TRACE_FORMAT_HH
#define PADC_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace padc::trace
{

/** On-disk trace flavors the toolchain reads. */
enum class TraceFormat : std::uint8_t
{
    V1, ///< PADCTRC1: fixed 24-byte records (core/trace_file.hh)
    V2, ///< PADCTRC2: delta+varint blocks (this file)
};

/** "padctrc1" / "padctrc2" (the names the corpus manifest records). */
const char *toString(TraceFormat format);

/** Default operations per PADCTRC2 block. */
constexpr std::uint32_t kDefaultBlockOps = 4096;

/** 64-bit FNV-1a (offset-basis seed when chaining). */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = 1469598103934665603ULL);

/** Cheaply probed facts about a trace file (header + index only). */
struct TraceFileInfo
{
    TraceFormat format = TraceFormat::V2;
    std::uint64_t op_count = 0;
    std::uint64_t file_bytes = 0;
    std::uint32_t block_ops = 0;  ///< 0 for v1
    std::uint64_t num_blocks = 0; ///< 0 for v1
    /**
     * v2: the header's payload checksum. v1 (which stores none):
     * computed over the record bytes by verifyTraceFile; 0 from probe.
     */
    std::uint64_t checksum = 0;

    // Filled by verifyTraceFile's full decode; 0 from probeTraceFile.
    std::uint64_t distinct_lines = 0; ///< footprint, in cache lines
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/**
 * Incremental PADCTRC2 writer with crash-safe output: operations are
 * appended one at a time (bounded memory: one block buffered), and
 * close() writes the block index, back-patches the header, and
 * atomically renames the finished temp file onto @p path.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path,
                         std::uint32_t block_ops = kDefaultBlockOps);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True while no write has failed. */
    bool ok() const;

    /** Why ok() is false; empty otherwise. */
    const std::string &error() const;

    /** Append one operation (buffered; flushed per block). */
    void append(const core::TraceOp &op);

    /** Operations appended so far. */
    std::uint64_t opCount() const;

    /**
     * Finish the file: flush the tail block, write the index, patch the
     * header, and rename into place. No file appears at the destination
     * path unless this returns true.
     *
     * @param error when non-null, receives a descriptive message.
     */
    bool close(std::string *error = nullptr);

  private:
    struct Impl;
    Impl *impl_;
};

/**
 * Write @p ops to @p path as PADCTRC2 (one-shot TraceWriter wrapper).
 */
bool writeTraceFileV2(const std::string &path,
                      const std::vector<core::TraceOp> &ops,
                      std::string *error = nullptr,
                      std::uint32_t block_ops = kDefaultBlockOps);

/**
 * Read a complete PADCTRC2 file into memory, validating every per-block
 * and whole-file checksum. Rejects, with a descriptive error: short or
 * bad-magic headers, size/count disagreements, checksum mismatches,
 * truncated or over-running varints, and trailing garbage.
 */
bool readTraceFileV2(const std::string &path,
                     std::vector<core::TraceOp> *ops,
                     std::string *error = nullptr);

/**
 * Read a trace of either format, dispatching on the magic (v1 files
 * stay readable forever; see core/trace_file.hh).
 */
bool readTraceFileAny(const std::string &path,
                      std::vector<core::TraceOp> *ops,
                      std::string *error = nullptr);

/**
 * Identify a trace file from its header (and, for v2, its block index)
 * without decoding payloads. Cheap: O(header + index).
 */
bool probeTraceFile(const std::string &path, TraceFileInfo *info,
                    std::string *error = nullptr);

/**
 * Full-file verification with bounded memory: decode every block,
 * validate every checksum and count, and fill the footprint statistics
 * in @p info. The check `padc trace verify` runs.
 */
bool verifyTraceFile(const std::string &path, TraceFileInfo *info,
                     std::string *error = nullptr);

/**
 * Block-granular random-access reader over either trace format, the
 * primitive under the streaming replay path: holds the file open,
 * keeps only the header and block index resident, and decodes one
 * block at a time (per-block checksums validated on every load).
 *
 * v1 files, which have no physical blocks, are served as fixed
 * chunks of kDefaultBlockOps records so the streaming contract (and
 * its bounded memory) holds for both formats.
 */
class BlockReader
{
  public:
    explicit BlockReader(const std::string &path);

    ~BlockReader();

    BlockReader(const BlockReader &) = delete;
    BlockReader &operator=(const BlockReader &) = delete;

    /** True when the file opened and its header/index validated. */
    bool ok() const { return ok_; }

    /** Why ok() is false; empty when ok(). */
    const std::string &error() const { return error_; }

    /** Header/index facts (footprint fields unfilled). */
    const TraceFileInfo &info() const { return info_; }

    /** Number of decodable blocks (>= 1 for a non-empty trace). */
    std::uint64_t numBlocks() const;

    /**
     * Decode block @p block into @p ops (cleared first).
     * @return false with a descriptive message in @p error on I/O
     *         failure, checksum mismatch, or malformed payload.
     */
    bool readBlock(std::uint64_t block, std::vector<core::TraceOp> *ops,
                   std::string *error);

  private:
    struct Impl;
    Impl *impl_;
    TraceFileInfo info_;
    bool ok_ = false;
    std::string error_;
};

// --- primitives shared with the streaming reader ----------------------

/** Appends zigzag-LEB128 of @p delta to @p out. */
void putVarint(std::vector<unsigned char> &out, std::uint64_t value);

/** Zigzag a signed 64-bit delta. */
std::uint64_t zigzag(std::int64_t value);

/** Invert zigzag(). */
std::int64_t unzigzag(std::uint64_t value);

/**
 * Decode one LEB128 varint from [@p cursor, @p end).
 * @return false when the varint is truncated or longer than 10 bytes.
 */
bool getVarint(const unsigned char **cursor, const unsigned char *end,
               std::uint64_t *value);

/**
 * Encode @p ops (one block's worth) into @p payload; delta state starts
 * at zero, matching the per-block reset the decoder assumes.
 */
void encodeBlock(const std::vector<core::TraceOp> &ops, std::size_t begin,
                 std::size_t count, std::vector<unsigned char> *payload);

/**
 * Decode a block payload of exactly @p expected_ops operations,
 * appending to @p ops.
 * @return false with a message in @p error on malformed payloads
 *         (truncated varint, op-count/size disagreement).
 */
bool decodeBlock(const unsigned char *payload, std::size_t size,
                 std::uint64_t expected_ops,
                 std::vector<core::TraceOp> *ops, std::string *error);

} // namespace padc::trace

#endif // PADC_TRACE_FORMAT_HH
