/**
 * @file
 * Trace corpus manifests.
 *
 * A corpus is a directory of trace files described by a `corpus.json`
 * manifest (schema "padc-trace-corpus-v1"). Each entry records the
 * profile name the trace registers under, the file it lives in
 * (relative to the corpus directory), where it came from, and enough
 * fingerprint (op count, byte size, whole-file checksum, line
 * footprint) to detect a stale or corrupted file before a run consumes
 * it. `padc trace capture|convert` upsert entries; `padc --corpus DIR`
 * loads a manifest and registers every entry as a trace-backed
 * workload profile.
 *
 * Manifest layout:
 *
 *     {
 *       "schema": "padc-trace-corpus-v1",
 *       "traces": [
 *         {
 *           "name": "libquantum_06.c0",
 *           "file": "libquantum_06.c0.trc",
 *           "source": "capture:libquantum_06",
 *           "format": "padctrc2",
 *           "ops": 2000000,
 *           "bytes": 1048576,
 *           "checksum": "0x1234abcd5678ef90",
 *           "footprint_lines": 131072
 *         }
 *       ]
 *     }
 *
 * Checksums are hex strings, not JSON numbers: the parser stores
 * numbers as doubles, which cannot hold all 64 bits.
 */

#ifndef PADC_TRACE_CORPUS_HH
#define PADC_TRACE_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace padc::trace
{

/** One manifest entry; see file comment for field meanings. */
struct CorpusEntry
{
    std::string name;   ///< workload profile name it registers under
    std::string file;   ///< trace file, relative to the corpus dir
    std::string source; ///< provenance ("capture:...", "import:csv:...")
    std::string format; ///< "padctrc1" or "padctrc2"
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;        ///< whole-file payload FNV-1a
    std::uint64_t footprint_lines = 0; ///< distinct cache lines touched
};

/** A loaded manifest plus the directory it governs. */
struct Corpus
{
    std::string dir;
    std::vector<CorpusEntry> entries;
};

/** `<dir>/corpus.json`. */
std::string corpusManifestPath(const std::string &dir);

/** `<corpus.dir>/<entry.file>`. */
std::string corpusFilePath(const Corpus &corpus, const CorpusEntry &entry);

/**
 * Load `<dir>/corpus.json`.
 * @return false with a diagnostic when the manifest is missing,
 *         unparseable, has the wrong schema, or entries lack required
 *         fields.
 */
bool loadCorpus(const std::string &dir, Corpus *out,
                std::string *error = nullptr);

/**
 * Load `<dir>/corpus.json` if present, else an empty corpus for @p dir
 * (the state before the first capture). Parse errors still fail.
 */
bool loadOrInitCorpus(const std::string &dir, Corpus *out,
                      std::string *error = nullptr);

/** Write `<corpus.dir>/corpus.json` (atomic tmp + rename). */
bool saveCorpus(const Corpus &corpus, std::string *error = nullptr);

/** Find an entry by profile name; nullptr when absent. */
const CorpusEntry *findEntry(const Corpus &corpus, const std::string &name);

/** Insert @p entry, replacing any existing entry of the same name. */
void upsertEntry(Corpus *corpus, CorpusEntry entry);

/**
 * Build the manifest entry for an on-disk trace file by probing its
 * header and fully decoding it (checksum + footprint).
 * @param file path relative to @p dir.
 * @return false with a diagnostic when the file is unreadable/corrupt.
 */
bool makeEntry(const std::string &dir, const std::string &file,
               const std::string &name, const std::string &source,
               CorpusEntry *out, std::string *error = nullptr);

/**
 * Re-verify every entry against its file: decodes each trace and
 * compares op count, byte size, and checksum against the manifest.
 * Checks all entries before returning; diagnostics accumulate into
 * @p error one per line.
 */
bool verifyCorpus(const Corpus &corpus, std::string *error = nullptr);

/**
 * Register every entry as a trace-backed workload profile (streaming
 * replay factory). Skips names that are already registered with the
 * same file; fails on conflicts or unknown files.
 */
bool registerCorpus(const Corpus &corpus, std::string *error = nullptr);

} // namespace padc::trace

#endif // PADC_TRACE_CORPUS_HH
