#include "trace/stream.hh"

namespace padc::trace
{

StreamingFileTrace::StreamingFileTrace(const std::string &path)
    : reader_(path)
{
    if (!reader_.ok()) {
        error_ = reader_.error();
        return;
    }
    if (reader_.info().op_count == 0) {
        error_ = "'" + path + "' holds no operations";
        return;
    }
    // Eagerly decode the first block so a corrupt head fails at
    // construction rather than mid-run.
    if (!loadBlock(0))
        return;
    ok_ = true;
}

bool
StreamingFileTrace::loadBlock(std::uint64_t block)
{
    std::string error;
    if (!reader_.readBlock(block, &block_, &error)) {
        if (error_.empty())
            error_ = error;
        ok_ = false;
        block_.clear();
        pos_ = 0;
        return false;
    }
    block_number_ = block;
    pos_ = 0;
    return true;
}

core::TraceOp
StreamingFileTrace::next()
{
    if (pos_ >= block_.size()) {
        if (!ok_)
            return core::TraceOp{};
        const std::uint64_t next_block =
            (block_number_ + 1) % reader_.numBlocks();
        if (!loadBlock(next_block))
            return core::TraceOp{};
    }
    return block_[pos_++];
}

void
StreamingFileTrace::reset()
{
    if (!ok_ && error_.empty())
        return;
    // A mid-stream failure does not survive reset: replay is defined
    // from the first block, which reloads (and re-validates) here.
    if (loadBlock(0))
        ok_ = true;
}

} // namespace padc::trace
