#include "trace/import.hh"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace padc::trace
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/** Split a CSV line on commas, trimming surrounding whitespace. */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        std::string field = comma == std::string::npos
                                ? line.substr(start)
                                : line.substr(start, comma - start);
        std::size_t first = field.find_first_not_of(" \t\r");
        if (first == std::string::npos) {
            field.clear();
        } else {
            const std::size_t last = field.find_last_not_of(" \t\r");
            field = field.substr(first, last - first + 1);
        }
        fields.push_back(field);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return fields;
}

/** Parse a u64 in decimal or 0x-prefixed hex. */
bool
parseU64(const std::string &field, std::uint64_t *out)
{
    if (field.empty())
        return false;
    int base = 10;
    std::size_t pos = 0;
    if (field.size() > 2 && field[0] == '0' &&
        (field[1] == 'x' || field[1] == 'X')) {
        base = 16;
        pos = 2;
    }
    std::uint64_t value = 0;
    for (; pos < field.size(); ++pos) {
        const char c = field[pos];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        const std::uint64_t shifted =
            value * static_cast<std::uint64_t>(base);
        if (shifted / static_cast<std::uint64_t>(base) != value)
            return false; // overflow
        value = shifted + static_cast<std::uint64_t>(digit);
        if (value < shifted)
            return false;
    }
    *out = value;
    return true;
}

/** Parse the rw field: R/L/0 = load, W/S/1 = store. */
bool
parseRw(const std::string &field, bool *is_load)
{
    if (field.size() != 1)
        return false;
    switch (field[0]) {
      case 'R':
      case 'r':
      case 'L':
      case 'l':
      case '0':
        *is_load = true;
        return true;
      case 'W':
      case 'w':
      case 'S':
      case 's':
      case '1':
        *is_load = false;
        return true;
      default:
        return false;
    }
}

bool
parseBool01(const std::string &field, bool *out)
{
    if (field == "0") {
        *out = false;
        return true;
    }
    if (field == "1") {
        *out = true;
        return true;
    }
    return false;
}

std::string
lineDiag(std::uint64_t line, const std::string &what)
{
    return "line " + std::to_string(line) + ": " + what;
}

std::uint64_t
getLe64(const unsigned char *p)
{
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | p[i];
    return value;
}

} // namespace

bool
importCsvMemtrace(const std::string &path, std::vector<core::TraceOp> *ops,
                  std::string *error, ImportStats *stats)
{
    ops->clear();
    ImportStats local;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return fail(error, "cannot open trace file: " + path);

    std::string line;
    int c;
    std::uint64_t line_number = 0;
    bool ok = true;
    while (ok) {
        line.clear();
        while ((c = std::fgetc(file)) != EOF && c != '\n')
            line.push_back(static_cast<char>(c));
        if (line.empty() && c == EOF)
            break;
        ++line_number;
        ++local.lines;

        // Skip blank lines and '#' comments.
        const std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') {
            ++local.skipped;
            if (c == EOF)
                break;
            continue;
        }

        const std::vector<std::string> fields = splitFields(line);
        if (fields.size() < 4 || fields.size() > 5) {
            ok = fail(error,
                      lineDiag(line_number,
                               "expected 4 or 5 fields (addr,pc,rw,gap[,dep])"
                               ", got " +
                                   std::to_string(fields.size())));
            break;
        }

        core::TraceOp op;
        std::uint64_t addr;
        std::uint64_t pc;
        std::uint64_t gap;
        if (!parseU64(fields[0], &addr)) {
            ok = fail(error, lineDiag(line_number,
                                      "bad addr field '" + fields[0] + "'"));
            break;
        }
        if (!parseU64(fields[1], &pc)) {
            ok = fail(error, lineDiag(line_number,
                                      "bad pc field '" + fields[1] + "'"));
            break;
        }
        if (!parseRw(fields[2], &op.is_load)) {
            ok = fail(error,
                      lineDiag(line_number, "bad rw field '" + fields[2] +
                                                "' (expected R/W/L/S/0/1)"));
            break;
        }
        if (!parseU64(fields[3], &gap) || gap > 0xFFFFFFFFULL) {
            ok = fail(error, lineDiag(line_number,
                                      "bad gap field '" + fields[3] + "'"));
            break;
        }
        op.dependent = false;
        if (fields.size() == 5 && !parseBool01(fields[4], &op.dependent)) {
            ok = fail(error,
                      lineDiag(line_number, "bad dep field '" + fields[4] +
                                                "' (expected 0 or 1)"));
            break;
        }
        op.addr = addr;
        op.pc = pc;
        op.compute_gap = static_cast<std::uint32_t>(gap);
        ops->push_back(op);
        ++local.ops;
        if (c == EOF)
            break;
    }
    std::fclose(file);
    if (!ok) {
        ops->clear();
        return false;
    }
    if (stats != nullptr)
        *stats = local;
    return true;
}

bool
importChampSim(const std::string &path, std::vector<core::TraceOp> *ops,
               std::string *error, ImportStats *stats)
{
    constexpr std::size_t kRecordBytes = 64;
    constexpr std::size_t kDestMemOffset = 16;
    constexpr std::size_t kSrcMemOffset = 32;
    constexpr int kDestMemSlots = 2;
    constexpr int kSrcMemSlots = 4;

    ops->clear();
    ImportStats local;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return fail(error, "cannot open trace file: " + path);

    unsigned char record[kRecordBytes];
    std::uint32_t pending_gap = 0;
    bool ok = true;
    while (true) {
        const std::size_t got =
            std::fread(record, 1, kRecordBytes, file);
        if (got == 0)
            break;
        if (got != kRecordBytes) {
            ok = fail(error,
                      "record " + std::to_string(local.lines) +
                          ": truncated (got " + std::to_string(got) +
                          " of 64 bytes); file is not a whole number of "
                          "ChampSim records");
            break;
        }
        ++local.lines;
        const std::uint64_t ip = getLe64(record);

        bool touched_memory = false;
        // Source operands are loads, destinations stores -- emit loads
        // first to mirror execute-then-retire ordering.
        for (int slot = 0; slot < kSrcMemSlots; ++slot) {
            const std::uint64_t addr =
                getLe64(record + kSrcMemOffset + 8 * slot);
            if (addr == 0)
                continue;
            core::TraceOp op;
            op.addr = addr;
            op.pc = ip;
            op.is_load = true;
            op.dependent = false;
            op.compute_gap = touched_memory ? 0 : pending_gap;
            touched_memory = true;
            ops->push_back(op);
            ++local.ops;
        }
        for (int slot = 0; slot < kDestMemSlots; ++slot) {
            const std::uint64_t addr =
                getLe64(record + kDestMemOffset + 8 * slot);
            if (addr == 0)
                continue;
            core::TraceOp op;
            op.addr = addr;
            op.pc = ip;
            op.is_load = false;
            op.dependent = false;
            op.compute_gap = touched_memory ? 0 : pending_gap;
            touched_memory = true;
            ops->push_back(op);
            ++local.ops;
        }
        if (touched_memory) {
            pending_gap = 0;
        } else if (pending_gap < 0xFFFFFFFFU) {
            ++pending_gap;
        }
    }
    std::fclose(file);
    if (!ok) {
        ops->clear();
        return false;
    }
    if (stats != nullptr)
        *stats = local;
    return true;
}

bool
importTrace(ImportFormat format, const std::string &path,
            std::vector<core::TraceOp> *ops, std::string *error,
            ImportStats *stats)
{
    switch (format) {
      case ImportFormat::Csv:
        return importCsvMemtrace(path, ops, error, stats);
      case ImportFormat::ChampSim:
        return importChampSim(path, ops, error, stats);
    }
    return fail(error, "unknown import format");
}

} // namespace padc::trace
