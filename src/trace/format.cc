#include "trace/format.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/atomic_file.hh"
#include "core/trace_file.hh"

namespace padc::trace
{

namespace
{

constexpr char kMagicV2[8] = {'P', 'A', 'D', 'C', 'T', 'R', 'C', '2'};
constexpr char kMagicV1[8] = {'P', 'A', 'D', 'C', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kHeaderSize = 40;
constexpr std::uint32_t kBlockHeaderSize = 16;
constexpr std::size_t kV1RecordSize = 24;
constexpr std::size_t kV1HeaderSize = 16;

/** Flags-byte layout (see the format spec in format.hh). */
constexpr std::uint8_t kFlagLoad = 1u << 0;
constexpr std::uint8_t kFlagDependent = 1u << 1;
constexpr std::uint32_t kGapEscape = 63;

/**
 * Upper bound on one encoded op (flags + two 10-byte varints + an
 * escaped 5-byte gap); used only for payload-size sanity checks.
 */
constexpr std::uint64_t kMaxOpBytes = 1 + 10 + 10 + 5;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putU32(unsigned char *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | in[i];
    return v;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

const char *
toString(TraceFormat format)
{
    return format == TraceFormat::V1 ? "padctrc1" : "padctrc2";
}

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= kPrime;
    }
    return hash;
}

std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

void
putVarint(std::vector<unsigned char> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<unsigned char>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<unsigned char>(value));
}

bool
getVarint(const unsigned char **cursor, const unsigned char *end,
          std::uint64_t *value)
{
    std::uint64_t result = 0;
    int shift = 0;
    const unsigned char *p = *cursor;
    // 10 bytes cover 70 bits; an 11th continuation byte is malformed.
    for (int i = 0; i < 10 && p < end; ++i, ++p) {
        result |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
        shift += 7;
        if ((*p & 0x80) == 0) {
            *cursor = p + 1;
            *value = result;
            return true;
        }
    }
    return false;
}

void
encodeBlock(const std::vector<core::TraceOp> &ops, std::size_t begin,
            std::size_t count, std::vector<unsigned char> *payload)
{
    Addr prev_addr = 0;
    Addr prev_pc = 0;
    for (std::size_t i = begin; i < begin + count; ++i) {
        const core::TraceOp &op = ops[i];
        std::uint8_t flags = 0;
        if (op.is_load)
            flags |= kFlagLoad;
        if (op.dependent)
            flags |= kFlagDependent;
        const bool escaped = op.compute_gap >= kGapEscape;
        flags |= static_cast<std::uint8_t>(
            (escaped ? kGapEscape : op.compute_gap) << 2);
        payload->push_back(flags);
        putVarint(*payload, zigzag(static_cast<std::int64_t>(
                                op.addr - prev_addr)));
        putVarint(*payload,
                  zigzag(static_cast<std::int64_t>(op.pc - prev_pc)));
        if (escaped)
            putVarint(*payload, op.compute_gap);
        prev_addr = op.addr;
        prev_pc = op.pc;
    }
}

bool
decodeBlock(const unsigned char *payload, std::size_t size,
            std::uint64_t expected_ops, std::vector<core::TraceOp> *ops,
            std::string *error)
{
    const unsigned char *cursor = payload;
    const unsigned char *end = payload + size;
    Addr prev_addr = 0;
    Addr prev_pc = 0;
    for (std::uint64_t i = 0; i < expected_ops; ++i) {
        if (cursor >= end) {
            return fail(error, "block payload exhausted at op " +
                                   std::to_string(i) + " of " +
                                   std::to_string(expected_ops));
        }
        const std::uint8_t flags = *cursor++;
        std::uint64_t addr_delta = 0;
        std::uint64_t pc_delta = 0;
        if (!getVarint(&cursor, end, &addr_delta) ||
            !getVarint(&cursor, end, &pc_delta)) {
            return fail(error, "truncated varint inside op " +
                                   std::to_string(i) + " of " +
                                   std::to_string(expected_ops));
        }
        core::TraceOp op;
        op.is_load = (flags & kFlagLoad) != 0;
        op.dependent = (flags & kFlagDependent) != 0;
        const std::uint32_t inline_gap = flags >> 2;
        if (inline_gap == kGapEscape) {
            std::uint64_t gap = 0;
            if (!getVarint(&cursor, end, &gap) ||
                gap > 0xFFFFFFFFULL) {
                return fail(error,
                            "truncated or out-of-range compute-gap "
                            "varint inside op " +
                                std::to_string(i));
            }
            op.compute_gap = static_cast<std::uint32_t>(gap);
        } else {
            op.compute_gap = inline_gap;
        }
        prev_addr += static_cast<Addr>(unzigzag(addr_delta));
        prev_pc += static_cast<Addr>(unzigzag(pc_delta));
        op.addr = prev_addr;
        op.pc = prev_pc;
        ops->push_back(op);
    }
    if (cursor != end) {
        return fail(error,
                    std::to_string(end - cursor) +
                        " leftover payload bytes after the block's " +
                        std::to_string(expected_ops) + " ops");
    }
    return true;
}

// --- v2 low-level reading ---------------------------------------------

namespace
{

struct V2Header
{
    std::uint32_t header_size = 0;
    std::uint32_t block_ops = 0;
    std::uint64_t op_count = 0;
    std::uint64_t index_offset = 0;
    std::uint64_t file_checksum = 0;
};

bool
readV2Header(std::FILE *file, const std::string &path, V2Header *out,
             std::string *error)
{
    unsigned char header[kHeaderSize];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
        return fail(error, "'" + path + "' is shorter than the " +
                               std::to_string(kHeaderSize) +
                               "-byte PADCTRC2 header");
    }
    if (std::memcmp(header, kMagicV2, 8) != 0) {
        return fail(error,
                    "'" + path + "' is not a PADCTRC2 trace (bad magic)");
    }
    out->header_size = getU32(header + 8);
    out->block_ops = getU32(header + 12);
    out->op_count = getU64(header + 16);
    out->index_offset = getU64(header + 24);
    out->file_checksum = getU64(header + 32);
    if (out->header_size < kHeaderSize) {
        return fail(error, "'" + path + "' declares a " +
                               std::to_string(out->header_size) +
                               "-byte header, below the v2 minimum of " +
                               std::to_string(kHeaderSize));
    }
    if (out->block_ops == 0)
        return fail(error, "'" + path + "' declares block_ops = 0");
    if (out->index_offset < out->header_size) {
        return fail(error, "'" + path +
                               "' places its block index inside the "
                               "header: corrupt");
    }
    return true;
}

long
fileSize(std::FILE *file)
{
    if (std::fseek(file, 0, SEEK_END) != 0)
        return -1;
    return std::ftell(file);
}

struct IndexEntry
{
    std::uint64_t offset = 0;
    std::uint64_t first_op = 0;
};

/**
 * Read and integrity-check the block index; on success the file size
 * is known to exactly cover header + blocks + index.
 */
bool
readV2Index(std::FILE *file, const std::string &path,
            const V2Header &header, std::vector<IndexEntry> *entries,
            std::string *error)
{
    const long size = fileSize(file);
    if (size < 0)
        return fail(error, "cannot seek in '" + path + "'");
    const std::uint64_t usize = static_cast<std::uint64_t>(size);
    if (header.index_offset + 16 > usize) {
        return fail(error, "'" + path +
                               "' is truncated before its block index");
    }
    if (std::fseek(file, static_cast<long>(header.index_offset),
                   SEEK_SET) != 0)
        return fail(error, "cannot seek in '" + path + "'");

    unsigned char count_buf[8];
    if (std::fread(count_buf, 1, 8, file) != 8)
        return fail(error, "'" + path + "' has a truncated block index");
    const std::uint64_t num_blocks = getU64(count_buf);

    const std::uint64_t expected_end =
        header.index_offset + 8 + num_blocks * 16 + 8;
    if (expected_end != usize) {
        return fail(
            error,
            "'" + path + "' holds " + std::to_string(usize) +
                " bytes but its index promises " +
                std::to_string(num_blocks) + " blocks ending at byte " +
                std::to_string(expected_end) +
                ": truncated, corrupt, or trailing garbage");
    }

    std::vector<unsigned char> raw(8 + num_blocks * 16);
    std::memcpy(raw.data(), count_buf, 8);
    if (num_blocks > 0 &&
        std::fread(raw.data() + 8, 1, num_blocks * 16, file) !=
            num_blocks * 16) {
        return fail(error, "'" + path + "' has a truncated block index");
    }
    unsigned char checksum_buf[8];
    if (std::fread(checksum_buf, 1, 8, file) != 8)
        return fail(error, "'" + path + "' has a truncated block index");
    const std::uint64_t stored = getU64(checksum_buf);
    const std::uint64_t computed = fnv1a(raw.data(), raw.size());
    if (stored != computed) {
        return fail(error, "'" + path + "' block-index checksum "
                                        "mismatch: corrupt index");
    }

    entries->clear();
    entries->reserve(num_blocks);
    for (std::uint64_t b = 0; b < num_blocks; ++b) {
        IndexEntry entry;
        entry.offset = getU64(raw.data() + 8 + b * 16);
        entry.first_op = getU64(raw.data() + 8 + b * 16 + 8);
        entries->push_back(entry);
    }
    return true;
}

/**
 * Read one block (header + payload) at @p offset, verifying the block
 * checksum, and decode it into @p ops (appended).
 *
 * @param payload_checksum when non-null, chained FNV over the payload
 *        bytes (for whole-file verification).
 * @param next_offset when non-null, receives the offset just past this
 *        block.
 */
bool
readV2BlockAt(std::FILE *file, const std::string &path,
              const V2Header &header, std::uint64_t offset,
              std::uint64_t block_number, std::vector<core::TraceOp> *ops,
              std::uint64_t *payload_checksum, std::uint64_t *next_offset,
              std::uint64_t *block_op_count, std::string *error)
{
    const std::string where =
        "block " + std::to_string(block_number) + " of '" + path + "'";
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0)
        return fail(error, "cannot seek to " + where);
    unsigned char bh[kBlockHeaderSize];
    if (std::fread(bh, 1, sizeof(bh), file) != sizeof(bh))
        return fail(error, where + " has a truncated header");
    const std::uint32_t payload_size = getU32(bh);
    const std::uint32_t op_count = getU32(bh + 4);
    const std::uint64_t stored_checksum = getU64(bh + 8);

    if (op_count == 0 || op_count > header.block_ops) {
        return fail(error, where + " declares " +
                               std::to_string(op_count) +
                               " ops, outside (0, block_ops = " +
                               std::to_string(header.block_ops) + "]");
    }
    if (payload_size == 0 ||
        payload_size > op_count * kMaxOpBytes ||
        offset + kBlockHeaderSize + payload_size > header.index_offset) {
        return fail(error, where + " declares an implausible payload of " +
                               std::to_string(payload_size) + " bytes");
    }

    std::vector<unsigned char> payload(payload_size);
    if (std::fread(payload.data(), 1, payload_size, file) !=
        payload_size) {
        return fail(error, where + " is truncated inside its payload");
    }
    if (fnv1a(payload.data(), payload.size()) != stored_checksum)
        return fail(error, where + " fails its checksum: corrupt");
    if (payload_checksum != nullptr) {
        *payload_checksum =
            fnv1a(payload.data(), payload.size(), *payload_checksum);
    }

    std::string decode_error;
    if (!decodeBlock(payload.data(), payload.size(), op_count, ops,
                     &decode_error)) {
        return fail(error, where + ": " + decode_error);
    }
    if (next_offset != nullptr)
        *next_offset = offset + kBlockHeaderSize + payload_size;
    if (block_op_count != nullptr)
        *block_op_count = op_count;
    return true;
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ULL;

/**
 * Walk every block of an open v2 file, checking all structural
 * invariants (index agreement, op totals, whole-file checksum).
 * @param ops when non-null, receives every decoded operation; when
 *        null the walk still decodes (bounded memory) for verification.
 * @param info when non-null, footprint statistics are accumulated.
 */
bool
walkV2(std::FILE *file, const std::string &path, const V2Header &header,
       const std::vector<IndexEntry> &index,
       std::vector<core::TraceOp> *ops, TraceFileInfo *info,
       std::string *error)
{
    std::vector<core::TraceOp> scratch;
    std::uint64_t offset = header.header_size;
    std::uint64_t ops_seen = 0;
    std::uint64_t checksum = kFnvSeed;

    // Footprint accounting: open-addressed set of line addresses.
    std::vector<std::uint64_t> lines;
    std::vector<bool> used;
    std::uint64_t distinct = 0;
    if (info != nullptr) {
        lines.assign(1024, 0);
        used.assign(1024, false);
    }
    const auto touch = [&](Addr addr) {
        const std::uint64_t line = addr / kLineBytes;
        if (distinct * 2 >= lines.size()) {
            std::vector<std::uint64_t> grown(lines.size() * 2, 0);
            std::vector<bool> grown_used(lines.size() * 2, false);
            for (std::size_t i = 0; i < lines.size(); ++i) {
                if (!used[i])
                    continue;
                std::size_t slot = (lines[i] * 0x9E3779B97F4A7C15ULL) &
                                   (grown.size() - 1);
                while (grown_used[slot])
                    slot = (slot + 1) & (grown.size() - 1);
                grown[slot] = lines[i];
                grown_used[slot] = true;
            }
            lines.swap(grown);
            used.swap(grown_used);
        }
        std::size_t slot =
            (line * 0x9E3779B97F4A7C15ULL) & (lines.size() - 1);
        while (used[slot]) {
            if (lines[slot] == line)
                return;
            slot = (slot + 1) & (lines.size() - 1);
        }
        lines[slot] = line;
        used[slot] = true;
        ++distinct;
    };

    for (std::size_t b = 0; b < index.size(); ++b) {
        if (index[b].offset != offset) {
            return fail(error,
                        "'" + path + "' index entry " + std::to_string(b) +
                            " points at byte " +
                            std::to_string(index[b].offset) +
                            " but block " + std::to_string(b) +
                            " starts at byte " + std::to_string(offset) +
                            ": corrupt");
        }
        if (index[b].first_op != ops_seen) {
            return fail(error,
                        "'" + path + "' index entry " + std::to_string(b) +
                            " claims first op " +
                            std::to_string(index[b].first_op) + " but " +
                            std::to_string(ops_seen) +
                            " ops precede the block: corrupt");
        }
        scratch.clear();
        std::vector<core::TraceOp> *sink = ops != nullptr ? ops : &scratch;
        std::uint64_t block_ops = 0;
        if (!readV2BlockAt(file, path, header, offset, b, sink, &checksum,
                           &offset, &block_ops, error)) {
            return false;
        }
        ops_seen += block_ops;
        if (info != nullptr) {
            const std::vector<core::TraceOp> &decoded = *sink;
            for (std::size_t i = decoded.size() - block_ops;
                 i < decoded.size(); ++i) {
                touch(decoded[i].addr);
                if (decoded[i].is_load)
                    ++info->loads;
                else
                    ++info->stores;
            }
        }
    }

    if (offset != header.index_offset) {
        return fail(error,
                    "'" + path + "' blocks end at byte " +
                        std::to_string(offset) +
                        " but the header places the index at byte " +
                        std::to_string(header.index_offset) + ": corrupt");
    }
    if (ops_seen != header.op_count) {
        return fail(error, "'" + path + "' holds " +
                               std::to_string(ops_seen) +
                               " ops but its header promises " +
                               std::to_string(header.op_count) +
                               ": corrupt");
    }
    if (checksum != header.file_checksum) {
        return fail(error, "'" + path + "' fails its whole-file "
                                        "checksum: corrupt");
    }
    if (info != nullptr)
        info->distinct_lines = distinct;
    return true;
}

bool
sniffMagic(const std::string &path, char *magic8, std::string *error)
{
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return fail(error, "cannot open '" + path + "' for reading");
    if (std::fread(magic8, 1, 8, file.get()) != 8) {
        return fail(error, "'" + path +
                               "' is shorter than an 8-byte trace magic");
    }
    return true;
}

} // namespace

// --- TraceWriter ------------------------------------------------------

struct TraceWriter::Impl
{
    explicit Impl(const std::string &path, std::uint32_t block_ops_in)
        : file(path), block_ops(block_ops_in == 0 ? 1 : block_ops_in)
    {
        // Placeholder header; close() back-patches the counts.
        unsigned char header[kHeaderSize] = {};
        std::memcpy(header, kMagicV2, 8);
        putU32(header + 8, kHeaderSize);
        putU32(header + 12, block_ops);
        file.write(header, sizeof(header));
    }

    AtomicFile file;
    std::uint32_t block_ops;
    std::vector<core::TraceOp> block;
    std::vector<unsigned char> payload;
    std::vector<IndexEntry> index;
    std::uint64_t op_count = 0;
    std::uint64_t checksum = kFnvSeed;
    std::string error;

    bool
    flushBlock()
    {
        if (block.empty())
            return true;
        const long at = file.tell();
        if (at < 0)
            return false;
        payload.clear();
        encodeBlock(block, 0, block.size(), &payload);
        unsigned char bh[kBlockHeaderSize];
        putU32(bh, static_cast<std::uint32_t>(payload.size()));
        putU32(bh + 4, static_cast<std::uint32_t>(block.size()));
        putU64(bh + 8, fnv1a(payload.data(), payload.size()));
        if (!file.write(bh, sizeof(bh)) ||
            !file.write(payload.data(), payload.size()))
            return false;
        checksum = fnv1a(payload.data(), payload.size(), checksum);
        index.push_back({static_cast<std::uint64_t>(at),
                         op_count - block.size()});
        block.clear();
        return true;
    }
};

TraceWriter::TraceWriter(const std::string &path, std::uint32_t block_ops)
    : impl_(new Impl(path, block_ops))
{
}

TraceWriter::~TraceWriter()
{
    delete impl_;
}

bool
TraceWriter::ok() const
{
    return impl_->file.ok();
}

const std::string &
TraceWriter::error() const
{
    return impl_->error.empty() ? impl_->file.error() : impl_->error;
}

std::uint64_t
TraceWriter::opCount() const
{
    return impl_->op_count;
}

void
TraceWriter::append(const core::TraceOp &op)
{
    if (!impl_->file.ok())
        return;
    impl_->block.push_back(op);
    ++impl_->op_count;
    if (impl_->block.size() >= impl_->block_ops)
        impl_->flushBlock();
}

bool
TraceWriter::close(std::string *error)
{
    Impl &impl = *impl_;
    if (!impl.flushBlock())
        return fail(error, this->error());

    const long index_at = impl.file.tell();
    if (index_at < 0)
        return fail(error, this->error());

    std::vector<unsigned char> raw(8 + impl.index.size() * 16);
    putU64(raw.data(), impl.index.size());
    for (std::size_t b = 0; b < impl.index.size(); ++b) {
        putU64(raw.data() + 8 + b * 16, impl.index[b].offset);
        putU64(raw.data() + 8 + b * 16 + 8, impl.index[b].first_op);
    }
    unsigned char index_checksum[8];
    putU64(index_checksum, fnv1a(raw.data(), raw.size()));

    unsigned char header[kHeaderSize];
    std::memcpy(header, kMagicV2, 8);
    putU32(header + 8, kHeaderSize);
    putU32(header + 12, impl.block_ops);
    putU64(header + 16, impl.op_count);
    putU64(header + 24, static_cast<std::uint64_t>(index_at));
    putU64(header + 32, impl.checksum);

    if (!impl.file.write(raw.data(), raw.size()) ||
        !impl.file.write(index_checksum, sizeof(index_checksum)) ||
        !impl.file.seekTo(0) ||
        !impl.file.write(header, sizeof(header)) || !impl.file.commit()) {
        return fail(error, this->error());
    }
    return true;
}

// --- BlockReader ------------------------------------------------------

struct BlockReader::Impl
{
    std::string path;
    FilePtr file;
    V2Header header;               ///< valid for v2 only
    std::vector<IndexEntry> index; ///< valid for v2 only
};

BlockReader::BlockReader(const std::string &path) : impl_(new Impl)
{
    impl_->path = path;
    if (!probeTraceFile(path, &info_, &error_))
        return;
    impl_->file.reset(std::fopen(path.c_str(), "rb"));
    if (impl_->file == nullptr) {
        error_ = "cannot open '" + path + "' for reading";
        return;
    }
    if (info_.format == TraceFormat::V2) {
        if (!readV2Header(impl_->file.get(), path, &impl_->header,
                          &error_) ||
            !readV2Index(impl_->file.get(), path, impl_->header,
                         &impl_->index, &error_)) {
            return;
        }
    }
    ok_ = true;
}

BlockReader::~BlockReader()
{
    delete impl_;
}

std::uint64_t
BlockReader::numBlocks() const
{
    if (info_.format == TraceFormat::V2)
        return info_.num_blocks;
    return (info_.op_count + kDefaultBlockOps - 1) / kDefaultBlockOps;
}

bool
BlockReader::readBlock(std::uint64_t block, std::vector<core::TraceOp> *ops,
                       std::string *error)
{
    ops->clear();
    if (!ok_)
        return fail(error, error_);
    if (block >= numBlocks()) {
        return fail(error, "block " + std::to_string(block) +
                               " out of range in '" + impl_->path + "'");
    }

    if (info_.format == TraceFormat::V2) {
        return readV2BlockAt(impl_->file.get(), impl_->path,
                             impl_->header, impl_->index[block].offset,
                             block, ops, nullptr, nullptr, nullptr,
                             error);
    }

    // v1: a fixed window of 24-byte records.
    const std::uint64_t first = block * kDefaultBlockOps;
    const std::uint64_t count =
        std::min<std::uint64_t>(kDefaultBlockOps, info_.op_count - first);
    if (std::fseek(impl_->file.get(),
                   static_cast<long>(kV1HeaderSize +
                                     first * kV1RecordSize),
                   SEEK_SET) != 0)
        return fail(error, "cannot seek in '" + impl_->path + "'");
    std::vector<unsigned char> raw(count * kV1RecordSize);
    if (std::fread(raw.data(), 1, raw.size(), impl_->file.get()) !=
        raw.size()) {
        return fail(error, "'" + impl_->path +
                               "' truncated inside record block " +
                               std::to_string(block));
    }
    ops->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const unsigned char *record = raw.data() + i * kV1RecordSize;
        core::TraceOp op;
        op.addr = getU64(record);
        op.pc = getU64(record + 8);
        op.compute_gap = getU32(record + 16);
        const std::uint32_t flags = getU32(record + 20);
        op.is_load = (flags & 1u) != 0;
        op.dependent = (flags & 2u) != 0;
        ops->push_back(op);
    }
    return true;
}

// --- one-shot API -----------------------------------------------------

bool
writeTraceFileV2(const std::string &path,
                 const std::vector<core::TraceOp> &ops, std::string *error,
                 std::uint32_t block_ops)
{
    TraceWriter writer(path, block_ops);
    for (const core::TraceOp &op : ops)
        writer.append(op);
    return writer.close(error);
}

bool
readTraceFileV2(const std::string &path, std::vector<core::TraceOp> *ops,
                std::string *error)
{
    ops->clear();
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return fail(error, "cannot open '" + path + "' for reading");
    V2Header header;
    if (!readV2Header(file.get(), path, &header, error))
        return false;
    std::vector<IndexEntry> index;
    if (!readV2Index(file.get(), path, header, &index, error))
        return false;
    ops->reserve(header.op_count);
    if (!walkV2(file.get(), path, header, index, ops, nullptr, error)) {
        ops->clear();
        return false;
    }
    return true;
}

bool
readTraceFileAny(const std::string &path, std::vector<core::TraceOp> *ops,
                 std::string *error)
{
    char magic[8];
    if (!sniffMagic(path, magic, error))
        return false;
    if (std::memcmp(magic, kMagicV1, 8) == 0)
        return core::readTraceFile(path, ops, error);
    if (std::memcmp(magic, kMagicV2, 8) == 0)
        return readTraceFileV2(path, ops, error);
    return fail(error, "'" + path + "' is neither a PADCTRC1 nor a "
                                    "PADCTRC2 trace (bad magic)");
}

bool
probeTraceFile(const std::string &path, TraceFileInfo *info,
               std::string *error)
{
    *info = TraceFileInfo{};
    char magic[8];
    if (!sniffMagic(path, magic, error))
        return false;

    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return fail(error, "cannot open '" + path + "' for reading");

    if (std::memcmp(magic, kMagicV1, 8) == 0) {
        unsigned char header[kV1HeaderSize];
        if (std::fread(header, 1, sizeof(header), file.get()) !=
            sizeof(header)) {
            return fail(error, "'" + path + "' is shorter than the " +
                                   std::to_string(kV1HeaderSize) +
                                   "-byte PADCTRC1 header");
        }
        const std::uint64_t count = getU64(header + 8);
        const long size = fileSize(file.get());
        if (size < 0)
            return fail(error, "cannot seek in '" + path + "'");
        const std::uint64_t expected =
            kV1HeaderSize + count * kV1RecordSize;
        if (static_cast<std::uint64_t>(size) != expected) {
            return fail(error,
                        "'" + path + "' holds " + std::to_string(size) +
                            " bytes but its header promises " +
                            std::to_string(count) +
                            " ops: truncated or corrupt");
        }
        info->format = TraceFormat::V1;
        info->op_count = count;
        info->file_bytes = static_cast<std::uint64_t>(size);
        return true;
    }

    if (std::memcmp(magic, kMagicV2, 8) != 0) {
        return fail(error, "'" + path + "' is neither a PADCTRC1 nor a "
                                        "PADCTRC2 trace (bad magic)");
    }
    V2Header header;
    if (!readV2Header(file.get(), path, &header, error))
        return false;
    std::vector<IndexEntry> index;
    if (!readV2Index(file.get(), path, header, &index, error))
        return false;
    info->format = TraceFormat::V2;
    info->op_count = header.op_count;
    info->block_ops = header.block_ops;
    info->num_blocks = index.size();
    info->checksum = header.file_checksum;
    const long size = fileSize(file.get());
    info->file_bytes = size < 0 ? 0 : static_cast<std::uint64_t>(size);
    return true;
}

bool
verifyTraceFile(const std::string &path, TraceFileInfo *info,
                std::string *error)
{
    if (!probeTraceFile(path, info, error))
        return false;

    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (file == nullptr)
        return fail(error, "cannot open '" + path + "' for reading");

    if (info->format == TraceFormat::V1) {
        // v1 stores no checksum; compute one over the record bytes so
        // the corpus manifest can still pin the file's content.
        std::vector<core::TraceOp> ops;
        if (!core::readTraceFile(path, &ops, error))
            return false;
        std::uint64_t checksum = kFnvSeed;
        std::vector<std::uint64_t> lines;
        for (const core::TraceOp &op : ops) {
            unsigned char record[kV1RecordSize];
            putU64(record, op.addr);
            putU64(record + 8, op.pc);
            putU32(record + 16, op.compute_gap);
            putU32(record + 20, (op.is_load ? 1u : 0u) |
                                    (op.dependent ? 2u : 0u));
            checksum = fnv1a(record, sizeof(record), checksum);
            lines.push_back(op.addr / kLineBytes);
            if (op.is_load)
                ++info->loads;
            else
                ++info->stores;
        }
        std::sort(lines.begin(), lines.end());
        info->distinct_lines = static_cast<std::uint64_t>(
            std::unique(lines.begin(), lines.end()) - lines.begin());
        info->checksum = checksum;
        return true;
    }

    V2Header header;
    if (!readV2Header(file.get(), path, &header, error))
        return false;
    std::vector<IndexEntry> index;
    if (!readV2Index(file.get(), path, header, &index, error))
        return false;
    return walkV2(file.get(), path, header, index, nullptr, info, error);
}

} // namespace padc::trace
