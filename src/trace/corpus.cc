#include "trace/corpus.hh"

#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/atomic_file.hh"
#include "exp/json.hh"
#include "trace/format.hh"
#include "trace/stream.hh"
#include "workload/trace_profile.hh"

namespace padc::trace
{

namespace
{

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

std::string
toHex64(std::uint64_t value)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

bool
parseHex64(const std::string &text, std::uint64_t *out)
{
    if (text.size() < 3 || text[0] != '0' ||
        (text[1] != 'x' && text[1] != 'X')) {
        return false;
    }
    std::uint64_t value = 0;
    for (std::size_t i = 2; i < text.size(); ++i) {
        const char c = text[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        if (i - 2 >= 16)
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    *out = value;
    return true;
}

/** Read a whole file into @p out; false when unreadable. */
bool
slurp(const std::string &path, std::string *out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    out->clear();
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out->append(buf, got);
    std::fclose(file);
    return true;
}

bool
fileExists(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    std::fclose(file);
    return true;
}

const char *kSchema = "padc-trace-corpus-v1";

/** Pull one string member; false + diagnostic when absent/mistyped. */
bool
getString(const exp::JsonValue &object, const std::string &key,
          std::string *out, std::string *error)
{
    const exp::JsonValue *value = object.find(key);
    if (value == nullptr || !value->isString())
        return fail(error, "entry missing string field '" + key + "'");
    *out = value->string;
    return true;
}

bool
getCount(const exp::JsonValue &object, const std::string &key,
         std::uint64_t *out, std::string *error)
{
    const exp::JsonValue *value = object.find(key);
    if (value == nullptr || !value->isNumber() || value->number < 0)
        return fail(error, "entry missing count field '" + key + "'");
    *out = static_cast<std::uint64_t>(value->number);
    return true;
}

/**
 * Corpus entries registered as workload profiles so far, name -> file
 * path. registerTraceProfile() itself has no notion of provenance; this
 * side table makes re-registering the same corpus idempotent while
 * catching two different files claiming one name.
 */
std::mutex registered_mutex;
std::map<std::string, std::string> &
registeredFiles()
{
    static std::map<std::string, std::string> files;
    return files;
}

} // namespace

std::string
corpusManifestPath(const std::string &dir)
{
    return dir + "/corpus.json";
}

std::string
corpusFilePath(const Corpus &corpus, const CorpusEntry &entry)
{
    return corpus.dir + "/" + entry.file;
}

bool
loadCorpus(const std::string &dir, Corpus *out, std::string *error)
{
    const std::string path = corpusManifestPath(dir);
    std::string text;
    if (!slurp(path, &text))
        return fail(error, "cannot open corpus manifest: " + path);

    exp::JsonValue root;
    std::string parse_error;
    if (!exp::parseJson(text, &root, &parse_error))
        return fail(error, path + ": " + parse_error);
    if (!root.isObject())
        return fail(error, path + ": manifest is not a JSON object");

    const exp::JsonValue *schema = root.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->string != kSchema) {
        return fail(error, path + ": missing or unsupported schema (want " +
                               std::string(kSchema) + ")");
    }

    const exp::JsonValue *traces = root.find("traces");
    if (traces == nullptr || !traces->isArray())
        return fail(error, path + ": missing 'traces' array");

    Corpus corpus;
    corpus.dir = dir;
    for (std::size_t i = 0; i < traces->array.size(); ++i) {
        const exp::JsonValue &item = traces->array[i];
        std::string entry_error;
        CorpusEntry entry;
        std::string checksum_text;
        if (!item.isObject() ||
            !getString(item, "name", &entry.name, &entry_error) ||
            !getString(item, "file", &entry.file, &entry_error) ||
            !getString(item, "source", &entry.source, &entry_error) ||
            !getString(item, "format", &entry.format, &entry_error) ||
            !getCount(item, "ops", &entry.ops, &entry_error) ||
            !getCount(item, "bytes", &entry.bytes, &entry_error) ||
            !getString(item, "checksum", &checksum_text, &entry_error) ||
            !getCount(item, "footprint_lines", &entry.footprint_lines,
                      &entry_error)) {
            if (entry_error.empty())
                entry_error = "entry is not an object";
            return fail(error, path + ": traces[" + std::to_string(i) +
                                   "]: " + entry_error);
        }
        if (!parseHex64(checksum_text, &entry.checksum)) {
            return fail(error, path + ": traces[" + std::to_string(i) +
                                   "]: bad checksum '" + checksum_text +
                                   "' (want 0x-prefixed hex)");
        }
        corpus.entries.push_back(std::move(entry));
    }
    *out = std::move(corpus);
    return true;
}

bool
loadOrInitCorpus(const std::string &dir, Corpus *out, std::string *error)
{
    if (!fileExists(corpusManifestPath(dir))) {
        out->dir = dir;
        out->entries.clear();
        return true;
    }
    return loadCorpus(dir, out, error);
}

bool
saveCorpus(const Corpus &corpus, std::string *error)
{
    exp::JsonWriter json;
    json.beginObject();
    json.member("schema", kSchema);
    json.beginArray("traces");
    for (const CorpusEntry &entry : corpus.entries) {
        json.beginObject();
        json.member("name", entry.name);
        json.member("file", entry.file);
        json.member("source", entry.source);
        json.member("format", entry.format);
        json.member("ops", entry.ops);
        json.member("bytes", entry.bytes);
        json.member("checksum", toHex64(entry.checksum));
        json.member("footprint_lines", entry.footprint_lines);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    AtomicFile file(corpusManifestPath(corpus.dir));
    if (!file.ok())
        return fail(error, file.error());
    const std::string &text = json.str();
    if (!file.write(text.data(), text.size()) || !file.write("\n", 1) ||
        !file.commit()) {
        return fail(error, file.error());
    }
    return true;
}

const CorpusEntry *
findEntry(const Corpus &corpus, const std::string &name)
{
    for (const CorpusEntry &entry : corpus.entries) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

void
upsertEntry(Corpus *corpus, CorpusEntry entry)
{
    for (CorpusEntry &existing : corpus->entries) {
        if (existing.name == entry.name) {
            existing = std::move(entry);
            return;
        }
    }
    corpus->entries.push_back(std::move(entry));
}

bool
makeEntry(const std::string &dir, const std::string &file,
          const std::string &name, const std::string &source,
          CorpusEntry *out, std::string *error)
{
    TraceFileInfo info;
    if (!verifyTraceFile(dir + "/" + file, &info, error))
        return false;
    out->name = name;
    out->file = file;
    out->source = source;
    out->format = toString(info.format);
    out->ops = info.op_count;
    out->bytes = info.file_bytes;
    out->checksum = info.checksum;
    out->footprint_lines = info.distinct_lines;
    return true;
}

bool
verifyCorpus(const Corpus &corpus, std::string *error)
{
    std::string problems;
    for (const CorpusEntry &entry : corpus.entries) {
        const std::string path = corpusFilePath(corpus, entry);
        TraceFileInfo info;
        std::string file_error;
        if (!verifyTraceFile(path, &info, &file_error)) {
            problems += entry.name + ": " + file_error + "\n";
            continue;
        }
        if (info.op_count != entry.ops) {
            problems += entry.name + ": manifest records " +
                        std::to_string(entry.ops) + " ops but " + path +
                        " holds " + std::to_string(info.op_count) + "\n";
        }
        if (info.file_bytes != entry.bytes) {
            problems += entry.name + ": manifest records " +
                        std::to_string(entry.bytes) + " bytes but " +
                        path + " is " + std::to_string(info.file_bytes) +
                        "\n";
        }
        if (info.checksum != entry.checksum) {
            problems += entry.name + ": checksum mismatch (manifest " +
                        toHex64(entry.checksum) + ", file " +
                        toHex64(info.checksum) + ")\n";
        }
    }
    if (problems.empty())
        return true;
    // Drop the trailing newline.
    problems.pop_back();
    return fail(error, problems);
}

bool
registerCorpus(const Corpus &corpus, std::string *error)
{
    for (const CorpusEntry &entry : corpus.entries) {
        const std::string path = corpusFilePath(corpus, entry);
        {
            std::lock_guard<std::mutex> lock(registered_mutex);
            auto it = registeredFiles().find(entry.name);
            if (it != registeredFiles().end() &&
                !workload::isTraceProfile(entry.name)) {
                // The workload registry was cleared (tests) since this
                // name was recorded; the side table entry is stale.
                registeredFiles().erase(it);
                it = registeredFiles().end();
            }
            if (it != registeredFiles().end()) {
                if (it->second == path)
                    continue; // same corpus loaded twice: idempotent
                return fail(error, "trace profile '" + entry.name +
                                       "' already registered from " +
                                       it->second);
            }
        }
        // Fail now, not at first use inside a worker thread, when the
        // file is missing or unreadable.
        TraceFileInfo info;
        if (!probeTraceFile(path, &info, error))
            return false;
        try {
            workload::registerTraceProfile(entry.name, [path]() {
                return std::make_unique<StreamingFileTrace>(path);
            });
        } catch (const std::logic_error &e) {
            return fail(error, e.what());
        }
        std::lock_guard<std::mutex> lock(registered_mutex);
        registeredFiles()[entry.name] = path;
    }
    return true;
}

} // namespace padc::trace
