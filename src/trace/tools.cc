#include "trace/tools.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/suggest.hh"
#include "trace/corpus.hh"
#include "trace/format.hh"
#include "trace/import.hh"
#include "workload/generator.hh"
#include "workload/mixes.hh"
#include "workload/profile.hh"

namespace padc::trace
{

namespace
{

bool
parseUint64(const char *text, std::uint64_t *out)
{
    if (text == nullptr || *text == '\0' || text[0] == '-' ||
        text[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    *out = value;
    return true;
}

int
usageError(const std::string &message)
{
    std::fprintf(stderr, "padc trace: %s\n%s", message.c_str(),
                 traceToolUsage());
    return 2;
}

int
operationError(const std::string &message)
{
    std::fprintf(stderr, "padc trace: %s\n", message.c_str());
    return 1;
}

/** Shared argv cursor: `--flag VALUE` option values. */
class ArgCursor
{
  public:
    ArgCursor(int argc, const char *const *argv, int first)
        : argc_(argc), argv_(argv), i_(first)
    {
    }

    bool done() const { return i_ >= argc_; }
    std::string next() { return argv_[i_++]; }

    /** Value of the option just consumed; nullptr when missing. */
    const char *value()
    {
        return i_ < argc_ ? argv_[i_++] : nullptr;
    }

  private:
    int argc_;
    const char *const *argv_;
    int i_;
};

/**
 * Capture state shared by `capture` and `convert`: write @p ops as
 * PADCTRC2 into the corpus at @p dir under @p name and upsert the
 * manifest entry.
 */
int
storeInCorpus(const std::string &dir, const std::string &name,
              const std::string &source,
              const std::vector<core::TraceOp> &ops,
              std::uint32_t block_ops)
{
    std::error_code dir_error;
    std::filesystem::create_directories(dir, dir_error);
    if (dir_error) {
        return operationError("cannot create corpus directory '" + dir +
                              "': " + dir_error.message());
    }

    const std::string file = name + ".trc";
    std::string error;
    if (!writeTraceFileV2(dir + "/" + file, ops, &error, block_ops))
        return operationError(error);

    Corpus corpus;
    if (!loadOrInitCorpus(dir, &corpus, &error))
        return operationError(error);
    CorpusEntry entry;
    if (!makeEntry(dir, file, name, source, &entry, &error))
        return operationError(error);
    upsertEntry(&corpus, entry);
    if (!saveCorpus(corpus, &error))
        return operationError(error);

    std::printf("wrote %s/%s: %llu ops, %llu bytes (%.2f bytes/op), "
                "footprint %llu lines\n",
                dir.c_str(), file.c_str(),
                static_cast<unsigned long long>(entry.ops),
                static_cast<unsigned long long>(entry.bytes),
                entry.ops > 0 ? static_cast<double>(entry.bytes) /
                                    static_cast<double>(entry.ops)
                              : 0.0,
                static_cast<unsigned long long>(entry.footprint_lines));
    return 0;
}

int
captureCommand(ArgCursor args)
{
    std::string profile;
    std::string dir;
    std::string name;
    std::uint64_t ops = 0;
    std::uint64_t core = 0;
    std::uint64_t seed = 1;
    std::uint64_t block_ops = kDefaultBlockOps;

    while (!args.done()) {
        const std::string arg = args.next();
        if (arg == "--profile") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--profile expects a name");
            profile = text;
        } else if (arg == "--out") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--out expects a directory");
            dir = text;
        } else if (arg == "--name") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--name expects a profile name");
            name = text;
        } else if (arg == "--ops") {
            if (!parseUint64(args.value(), &ops) || ops == 0)
                return usageError("--ops expects a positive integer");
        } else if (arg == "--core") {
            if (!parseUint64(args.value(), &core))
                return usageError("--core expects a non-negative integer");
        } else if (arg == "--seed") {
            if (!parseUint64(args.value(), &seed))
                return usageError("--seed expects a non-negative integer");
        } else if (arg == "--block-ops") {
            if (!parseUint64(args.value(), &block_ops) || block_ops == 0 ||
                block_ops > 1u << 20) {
                return usageError(
                    "--block-ops expects an integer in [1, 1048576]");
            }
        } else {
            return usageError("unknown capture option '" + arg + "'");
        }
    }
    if (profile.empty() || dir.empty() || ops == 0) {
        return usageError(
            "capture requires --profile, --out, and --ops");
    }
    if (workload::findProfile(profile) == nullptr) {
        return operationError(
            "unknown profile '" + profile + "'" +
            didYouMean(profile, workload::allProfileNames()));
    }
    if (name.empty()) {
        name = profile + ".c" + std::to_string(core) + ".s" +
               std::to_string(seed);
    }

    // Reproduce the exact mix placement: the same (core, seed) salting
    // runMix applies, so replaying this file on the same core slots
    // into an experiment bit-identically.
    const workload::Mix mix(static_cast<std::size_t>(core) + 1, profile);
    workload::SyntheticTrace generator(workload::traceParamsFor(
        mix, static_cast<std::uint32_t>(core), seed));

    std::vector<core::TraceOp> buffer;
    buffer.reserve(static_cast<std::size_t>(ops));
    for (std::uint64_t i = 0; i < ops; ++i)
        buffer.push_back(generator.next());

    const std::string source = "capture:" + profile + ":core" +
                               std::to_string(core) + ":seed" +
                               std::to_string(seed);
    return storeInCorpus(dir, name, source, buffer,
                         static_cast<std::uint32_t>(block_ops));
}

int
convertCommand(ArgCursor args)
{
    std::string in;
    std::string format;
    std::string dir;
    std::string name;
    std::uint64_t block_ops = kDefaultBlockOps;

    while (!args.done()) {
        const std::string arg = args.next();
        if (arg == "--in") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--in expects a file");
            in = text;
        } else if (arg == "--format") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--format expects csv|champsim|trace");
            format = text;
        } else if (arg == "--out") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--out expects a directory");
            dir = text;
        } else if (arg == "--name") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--name expects a profile name");
            name = text;
        } else if (arg == "--block-ops") {
            if (!parseUint64(args.value(), &block_ops) || block_ops == 0 ||
                block_ops > 1u << 20) {
                return usageError(
                    "--block-ops expects an integer in [1, 1048576]");
            }
        } else {
            return usageError("unknown convert option '" + arg + "'");
        }
    }
    if (in.empty() || format.empty() || dir.empty() || name.empty()) {
        return usageError(
            "convert requires --in, --format, --out, and --name");
    }

    std::vector<core::TraceOp> ops;
    std::string error;
    ImportStats stats;
    if (format == "csv") {
        if (!importCsvMemtrace(in, &ops, &error, &stats))
            return operationError(in + ": " + error);
    } else if (format == "champsim") {
        if (!importChampSim(in, &ops, &error, &stats))
            return operationError(in + ": " + error);
    } else if (format == "trace") {
        // Transcode an existing PADCTRC1/2 file (v1 -> v2 shrinks it;
        // v2 -> v2 re-blocks).
        if (!readTraceFileAny(in, &ops, &error))
            return operationError(in + ": " + error);
        stats.lines = ops.size();
        stats.ops = ops.size();
    } else {
        return usageError("--format expects csv|champsim|trace, got '" +
                          format + "'");
    }
    if (ops.empty())
        return operationError(in + ": no operations imported");

    std::printf("imported %llu ops from %llu records (%llu skipped)\n",
                static_cast<unsigned long long>(stats.ops),
                static_cast<unsigned long long>(stats.lines),
                static_cast<unsigned long long>(stats.skipped));
    const std::string source = "import:" + format + ":" + in;
    return storeInCorpus(dir, name, source, ops,
                         static_cast<std::uint32_t>(block_ops));
}

int
infoCommand(ArgCursor args)
{
    std::vector<std::string> files;
    while (!args.done()) {
        const std::string arg = args.next();
        if (!arg.empty() && arg[0] == '-')
            return usageError("unknown info option '" + arg + "'");
        files.push_back(arg);
    }
    if (files.empty())
        return usageError("info expects trace files");

    int failures = 0;
    for (const std::string &file : files) {
        TraceFileInfo info;
        std::string error;
        if (!probeTraceFile(file, &info, &error)) {
            std::fprintf(stderr, "padc trace: %s: %s\n", file.c_str(),
                         error.c_str());
            ++failures;
            continue;
        }
        std::printf("%s: %s, %llu ops, %llu bytes (%.2f bytes/op)",
                    file.c_str(), toString(info.format),
                    static_cast<unsigned long long>(info.op_count),
                    static_cast<unsigned long long>(info.file_bytes),
                    info.op_count > 0
                        ? static_cast<double>(info.file_bytes) /
                              static_cast<double>(info.op_count)
                        : 0.0);
        if (info.format == TraceFormat::V2) {
            std::printf(", %llu blocks of %u ops, checksum 0x%016llx",
                        static_cast<unsigned long long>(info.num_blocks),
                        info.block_ops,
                        static_cast<unsigned long long>(info.checksum));
        }
        std::printf("\n");
    }
    return failures > 0 ? 1 : 0;
}

int
verifyCommand(ArgCursor args)
{
    std::vector<std::string> files;
    std::string corpus_dir;
    while (!args.done()) {
        const std::string arg = args.next();
        if (arg == "--corpus") {
            const char *text = args.value();
            if (text == nullptr)
                return usageError("--corpus expects a directory");
            corpus_dir = text;
        } else if (!arg.empty() && arg[0] == '-') {
            return usageError("unknown verify option '" + arg + "'");
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() && corpus_dir.empty())
        return usageError("verify expects trace files or --corpus DIR");

    int failures = 0;
    for (const std::string &file : files) {
        TraceFileInfo info;
        std::string error;
        if (!verifyTraceFile(file, &info, &error)) {
            std::fprintf(stderr, "padc trace: %s: %s\n", file.c_str(),
                         error.c_str());
            ++failures;
            continue;
        }
        std::printf("%s: ok (%llu ops, %llu loads, %llu stores, "
                    "footprint %llu lines)\n",
                    file.c_str(),
                    static_cast<unsigned long long>(info.op_count),
                    static_cast<unsigned long long>(info.loads),
                    static_cast<unsigned long long>(info.stores),
                    static_cast<unsigned long long>(info.distinct_lines));
    }
    if (!corpus_dir.empty()) {
        Corpus corpus;
        std::string error;
        if (!loadCorpus(corpus_dir, &corpus, &error)) {
            std::fprintf(stderr, "padc trace: %s\n", error.c_str());
            ++failures;
        } else if (!verifyCorpus(corpus, &error)) {
            std::fprintf(stderr, "padc trace: corpus %s:\n%s\n",
                         corpus_dir.c_str(), error.c_str());
            ++failures;
        } else {
            std::printf("corpus %s: ok (%zu traces)\n", corpus_dir.c_str(),
                        corpus.entries.size());
        }
    }
    return failures > 0 ? 1 : 0;
}

} // namespace

const char *
traceToolUsage()
{
    return "usage: padc trace <subcommand> [options]\n"
           "\n"
           "subcommands:\n"
           "  capture --profile NAME --out DIR --ops N\n"
           "          [--core N] [--seed N] [--name NAME] [--block-ops N]\n"
           "      record a synthetic profile's stream (mix-placed: the\n"
           "      same per-(core, seed) salting experiments use) into\n"
           "      the corpus at DIR\n"
           "  convert --in FILE --format csv|champsim|trace\n"
           "          --out DIR --name NAME [--block-ops N]\n"
           "      normalize an external or existing trace to PADCTRC2\n"
           "      in the corpus at DIR\n"
           "  info FILE...\n"
           "      print format, op count, block shape (header-only)\n"
           "  verify FILE... | verify --corpus DIR\n"
           "      fully decode and checksum-verify traces or a corpus\n";
}

int
traceToolMain(int argc, const char *const *argv)
{
    // argv: padc trace <subcommand> ...
    if (argc < 3)
        return usageError("missing subcommand");
    const std::string subcommand = argv[2];
    ArgCursor args(argc, argv, 3);
    try {
        if (subcommand == "capture")
            return captureCommand(args);
        if (subcommand == "convert")
            return convertCommand(args);
        if (subcommand == "info")
            return infoCommand(args);
        if (subcommand == "verify")
            return verifyCommand(args);
        if (subcommand == "help" || subcommand == "--help") {
            std::printf("%s", traceToolUsage());
            return 0;
        }
    } catch (const std::exception &e) {
        return operationError(e.what());
    }
    return usageError("unknown subcommand '" + subcommand + "'");
}

} // namespace padc::trace
