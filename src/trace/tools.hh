/**
 * @file
 * The `padc trace` subcommand family -- the trace-corpus toolchain:
 *
 *   padc trace capture --profile NAME --out DIR --ops N
 *                      [--core N] [--seed N] [--name NAME]
 *                      [--block-ops N]
 *       Run the synthetic generator for a profile exactly as a mix
 *       placement would (same per-(core, seed) parameter salting) and
 *       record the stream to `DIR/NAME.trc` (PADCTRC2), upserting the
 *       corpus manifest. A captured trace replayed on the same core
 *       reproduces the generator run bit-identically as long as the
 *       run consumes no more than N operations.
 *
 *   padc trace convert --in FILE --format csv|champsim|trace
 *                      --out DIR --name NAME [--block-ops N]
 *       Normalize an external trace (text/CSV memtrace, ChampSim-style
 *       records) or transcode an existing PADCTRC1/2 file to PADCTRC2
 *       in the corpus, upserting the manifest.
 *
 *   padc trace info FILE...
 *       Print header/index facts (format, ops, blocks, bytes/op,
 *       checksum) without decoding payloads.
 *
 *   padc trace verify FILE... | --corpus DIR
 *       Fully decode and checksum-verify trace files, or every entry
 *       of a corpus manifest (including manifest-vs-file agreement).
 *
 * Exit codes follow the driver convention: 0 success, 1 operation
 * failed (I/O, corruption, import diagnostics), 2 usage error.
 */

#ifndef PADC_TRACE_TOOLS_HH
#define PADC_TRACE_TOOLS_HH

namespace padc::trace
{

/** Usage text for `padc trace` (appended to the driver's on demand). */
const char *traceToolUsage();

/**
 * Entry point for `padc trace ...`; expects the full argv of the
 * process (argv[1] == "trace").
 */
int traceToolMain(int argc, const char *const *argv);

} // namespace padc::trace

#endif // PADC_TRACE_TOOLS_HH
