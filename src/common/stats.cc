#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace padc
{

void
StatSet::add(const std::string &name, double value)
{
    entries_.emplace_back(name, value);
}

void
StatSet::merge(const std::string &prefix, const StatSet &other)
{
    for (const auto &[name, value] : other.entries_)
        entries_.emplace_back(prefix + name, value);
}

void
StatSet::reindex() const
{
    for (; indexed_ < entries_.size(); ++indexed_)
        index_.try_emplace(entries_[indexed_].first, indexed_);
}

double
StatSet::get(const std::string &name) const
{
    reindex();
    const auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
}

bool
StatSet::has(const std::string &name) const
{
    reindex();
    return index_.find(name) != index_.end();
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[n, v] : entries_)
        os << n << ' ' << v << '\n';
    return os.str();
}

Histogram::Histogram(std::uint64_t bucket_width, std::uint32_t buckets)
    : width_(bucket_width), counts_(buckets + 1, 0)
{
}

void
Histogram::sample(std::uint64_t value)
{
    std::uint64_t idx = value / width_;
    if (idx >= buckets())
        idx = buckets(); // overflow bucket
    ++counts_[idx];
    ++total_;
    sum_ += static_cast<double>(value);
    if (value > max_)
        max_ = value;
}

std::uint64_t
Histogram::count(std::uint32_t i) const
{
    return i < counts_.size() ? counts_[i] : 0;
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // Nearest-rank: the rank-th smallest sample, rank in [1, total].
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(total_))));
    std::uint64_t cumulative = 0;
    for (std::uint32_t i = 0; i < buckets(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank)
            return static_cast<double>((i + 1) * width_);
    }
    return static_cast<double>(max_); // rank falls in the overflow bucket
}

StatSet
Histogram::toStatSet(const std::string &prefix) const
{
    StatSet stats;
    stats.add(prefix + ".count", static_cast<double>(total_));
    stats.add(prefix + ".mean", mean());
    stats.add(prefix + ".p50", percentile(50.0));
    stats.add(prefix + ".p90", percentile(90.0));
    stats.add(prefix + ".p99", percentile(99.0));
    stats.add(prefix + ".max", static_cast<double>(max_));
    for (std::uint32_t i = 0; i < buckets(); ++i) {
        stats.add(prefix + ".le_" + std::to_string((i + 1) * width_),
                  static_cast<double>(counts_[i]));
    }
    stats.add(prefix + ".overflow",
              static_cast<double>(counts_[buckets()]));
    return stats;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    sum_ = 0.0;
    max_ = 0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
ratio(double a, double b)
{
    return b == 0.0 ? 0.0 : a / b;
}

} // namespace padc
