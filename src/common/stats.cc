#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace padc
{

void
StatSet::add(const std::string &name, double value)
{
    entries_.emplace_back(name, value);
}

void
StatSet::merge(const std::string &prefix, const StatSet &other)
{
    for (const auto &[name, value] : other.entries_)
        entries_.emplace_back(prefix + name, value);
}

void
StatSet::reindex() const
{
    for (; indexed_ < entries_.size(); ++indexed_)
        index_.try_emplace(entries_[indexed_].first, indexed_);
}

double
StatSet::get(const std::string &name) const
{
    reindex();
    const auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
}

bool
StatSet::has(const std::string &name) const
{
    reindex();
    return index_.find(name) != index_.end();
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[n, v] : entries_)
        os << n << ' ' << v << '\n';
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
ratio(double a, double b)
{
    return b == 0.0 ? 0.0 : a / b;
}

} // namespace padc
