#include "common/config.hh"

#include <utility>

namespace padc
{

void
ConfigErrors::add(std::string field, std::string message)
{
    errors_.push_back({std::move(field), std::move(message)});
}

std::string
ConfigErrors::str() const
{
    std::string out;
    for (const ConfigError &error : errors_) {
        if (!out.empty())
            out += "; ";
        out += error.field;
        out += ": ";
        out += error.message;
    }
    return out;
}

std::string
toString(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::FrFcfs: return "demand-pref-equal";
      case SchedPolicyKind::DemandFirst: return "demand-first";
      case SchedPolicyKind::PrefetchFirst: return "prefetch-first";
      case SchedPolicyKind::Aps: return "aps";
    }
    return "unknown";
}

std::string
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "none";
      case PrefetcherKind::Stream: return "stream";
      case PrefetcherKind::Stride: return "stride";
      case PrefetcherKind::Cdc: return "cdc";
      case PrefetcherKind::Markov: return "markov";
    }
    return "unknown";
}

std::string
toString(RowPolicy policy)
{
    return policy == RowPolicy::Open ? "open-row" : "closed-row";
}

bool
parseSchedPolicy(const std::string &name, SchedPolicyKind *out)
{
    if (name == "demand-pref-equal" || name == "frfcfs" ||
        name == "demand-prefetch-equal") {
        *out = SchedPolicyKind::FrFcfs;
    } else if (name == "demand-first") {
        *out = SchedPolicyKind::DemandFirst;
    } else if (name == "prefetch-first") {
        *out = SchedPolicyKind::PrefetchFirst;
    } else if (name == "aps" || name == "padc") {
        *out = SchedPolicyKind::Aps;
    } else {
        return false;
    }
    return true;
}

bool
parsePrefetcher(const std::string &name, PrefetcherKind *out)
{
    if (name == "none") {
        *out = PrefetcherKind::None;
    } else if (name == "stream") {
        *out = PrefetcherKind::Stream;
    } else if (name == "stride") {
        *out = PrefetcherKind::Stride;
    } else if (name == "cdc") {
        *out = PrefetcherKind::Cdc;
    } else if (name == "markov") {
        *out = PrefetcherKind::Markov;
    } else {
        return false;
    }
    return true;
}

} // namespace padc
