#include "common/config.hh"

#include <cstddef>
#include <utility>

namespace padc
{

void
ConfigErrors::add(std::string field, std::string message)
{
    errors_.push_back({std::move(field), std::move(message)});
}

std::string
ConfigErrors::str() const
{
    std::string out;
    for (const ConfigError &error : errors_) {
        if (!out.empty())
            out += "; ";
        out += error.field;
        out += ": ";
        out += error.message;
    }
    return out;
}

namespace
{

/**
 * One row of an enum name table. The first row carrying a given value
 * defines its canonical (toString) name; every row is accepted by
 * parsing, so aliases are extra rows after the canonical one.
 */
template <typename E>
struct EnumName
{
    E value;
    const char *name;
};

template <typename E, std::size_t N>
std::string
nameOf(const EnumName<E> (&table)[N], E value)
{
    for (const auto &entry : table) {
        if (entry.value == value)
            return entry.name;
    }
    return "unknown";
}

template <typename E, std::size_t N>
bool
parseName(const EnumName<E> (&table)[N], const std::string &name, E *out)
{
    for (const auto &entry : table) {
        if (name == entry.name) {
            *out = entry.value;
            return true;
        }
    }
    return false;
}

/** Scheduling policies; canonical names match the paper's figures. */
constexpr EnumName<SchedPolicyKind> kSchedPolicyNames[] = {
    {SchedPolicyKind::FrFcfs, "demand-pref-equal"},
    {SchedPolicyKind::FrFcfs, "frfcfs"},
    {SchedPolicyKind::FrFcfs, "demand-prefetch-equal"},
    {SchedPolicyKind::DemandFirst, "demand-first"},
    {SchedPolicyKind::PrefetchFirst, "prefetch-first"},
    {SchedPolicyKind::Aps, "aps"},
    {SchedPolicyKind::Aps, "padc"},
};

constexpr EnumName<PrefetcherKind> kPrefetcherNames[] = {
    {PrefetcherKind::None, "none"},     {PrefetcherKind::Stream, "stream"},
    {PrefetcherKind::Stride, "stride"}, {PrefetcherKind::Cdc, "cdc"},
    {PrefetcherKind::Markov, "markov"},
};

constexpr EnumName<RowPolicy> kRowPolicyNames[] = {
    {RowPolicy::Open, "open-row"},
    {RowPolicy::Closed, "closed-row"},
};

constexpr EnumName<RequestClass> kRequestClassNames[] = {
    {RequestClass::DemandRead, "demand-read"},
    {RequestClass::DemandRead, "demand"},
    {RequestClass::Prefetch, "prefetch"},
    {RequestClass::Writeback, "writeback"},
    {RequestClass::PtwRead, "ptw-read"},
    {RequestClass::DramCacheFill, "dram-cache-fill"},
};

} // namespace

std::string
toString(SchedPolicyKind kind)
{
    return nameOf(kSchedPolicyNames, kind);
}

std::string
toString(PrefetcherKind kind)
{
    return nameOf(kPrefetcherNames, kind);
}

std::string
toString(RowPolicy policy)
{
    return nameOf(kRowPolicyNames, policy);
}

std::string
toString(RequestClass cls)
{
    return nameOf(kRequestClassNames, cls);
}

bool
parseSchedPolicy(const std::string &name, SchedPolicyKind *out)
{
    return parseName(kSchedPolicyNames, name, out);
}

bool
parsePrefetcher(const std::string &name, PrefetcherKind *out)
{
    return parseName(kPrefetcherNames, name, out);
}

bool
parseRowPolicy(const std::string &name, RowPolicy *out)
{
    return parseName(kRowPolicyNames, name, out);
}

bool
parseRequestClass(const std::string &name, RequestClass *out)
{
    return parseName(kRequestClassNames, name, out);
}

} // namespace padc
