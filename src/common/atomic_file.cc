#include "common/atomic_file.hh"

#include <cstdio>

namespace padc
{

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp")
{
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (file_ == nullptr) {
        failed_ = true;
        error_ = "cannot open '" + tmp_path_ + "' for writing";
    }
}

AtomicFile::~AtomicFile()
{
    if (!committed_)
        discard();
}

void
AtomicFile::fail(const std::string &message)
{
    failed_ = true;
    if (error_.empty())
        error_ = message;
}

void
AtomicFile::discard()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    std::remove(tmp_path_.c_str());
}

bool
AtomicFile::write(const void *data, std::size_t size)
{
    if (!ok())
        return false;
    if (std::fwrite(data, 1, size, file_) != size) {
        fail("short write to '" + tmp_path_ + "' (disk full?)");
        return false;
    }
    return true;
}

bool
AtomicFile::seekTo(long offset)
{
    if (!ok())
        return false;
    if (std::fseek(file_, offset, SEEK_SET) != 0) {
        fail("cannot seek in '" + tmp_path_ + "'");
        return false;
    }
    return true;
}

long
AtomicFile::tell()
{
    if (!ok())
        return -1;
    const long pos = std::ftell(file_);
    if (pos < 0)
        fail("cannot tell position in '" + tmp_path_ + "'");
    return pos;
}

bool
AtomicFile::commit()
{
    if (!ok()) {
        discard();
        return false;
    }
    // Buffered bytes can still fail at flush/close (delayed ENOSPC);
    // surface that instead of renaming a truncated temp into place.
    if (std::fflush(file_) != 0 || std::ferror(file_) != 0) {
        fail("flush of '" + tmp_path_ + "' failed");
        discard();
        return false;
    }
    if (std::fclose(file_) != 0) {
        file_ = nullptr;
        fail("close of '" + tmp_path_ + "' failed");
        discard();
        return false;
    }
    file_ = nullptr;
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        fail("cannot rename '" + tmp_path_ + "' onto '" + path_ + "'");
        std::remove(tmp_path_.c_str());
        return false;
    }
    committed_ = true;
    return true;
}

} // namespace padc
