/**
 * @file
 * Shared configuration enums and name conversions.
 *
 * Module-specific configuration structs live with their modules
 * (dram::DramConfig, memctrl::SchedulerConfig, ...); this header only
 * defines the cross-cutting enums those structs reference, together with
 * string conversions used by the examples and benchmark harnesses.
 */

#ifndef PADC_COMMON_CONFIG_HH
#define PADC_COMMON_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace padc
{

/**
 * One structured configuration diagnostic: the dotted path of the
 * offending field ("sched.write_drain_low", "dram.timing.tRC") and a
 * human-readable explanation of the constraint it violates.
 */
struct ConfigError
{
    std::string field;
    std::string message;
};

/**
 * Accumulator the config validators append to. Component validators
 * (SchedulerConfig, DramConfig, CacheConfig, ...) take the dotted
 * prefix of their position in the enclosing configuration so every
 * diagnostic names the exact field, regardless of nesting.
 */
class ConfigErrors
{
  public:
    /** Record that @p field (a dotted path) violates @p message. */
    void add(std::string field, std::string message);

    bool ok() const { return errors_.empty(); }

    const std::vector<ConfigError> &errors() const { return errors_; }

    /**
     * All diagnostics joined into one human-readable string, e.g.
     * "sched.write_drain_low: must be < write_drain_high (16 >= 8); ...".
     * Empty when ok().
     */
    std::string str() const;

  private:
    std::vector<ConfigError> errors_;
};

/**
 * DRAM request scheduling policy family.
 *
 * The paper's policy names map as follows:
 *  - demand-prefetch-equal == FrFcfs (plain FR-FCFS, prefetch-blind)
 *  - demand-first          == DemandFirst
 *  - prefetch-first        == PrefetchFirst (footnote 2 of the paper)
 *  - aps / PADC            == Aps (PADC = Aps + Adaptive Prefetch Dropping)
 */
enum class SchedPolicyKind : std::uint8_t
{
    FrFcfs,
    DemandFirst,
    PrefetchFirst,
    Aps,
};

/** Hardware prefetcher algorithm (Sections 2.2, 6.11 of the paper). */
enum class PrefetcherKind : std::uint8_t
{
    None,
    Stream,
    Stride,
    Cdc,
    Markov,
};

/** Row-buffer management policy (Section 6.8). */
enum class RowPolicy : std::uint8_t
{
    Open,
    Closed,
};

/**
 * First-class memory request class: the unit the priority lattice ranks.
 *
 * The paper's policies distinguish demands from prefetches (with
 * prefetches further split by per-core measured accuracy at lookup
 * time); writebacks go through the separate write queue. PtwRead and
 * DramCacheFill are reserved slots for the two-tier memory scenario
 * (page-table-walk reads and DRAM-cache fill traffic, ROADMAP): they
 * already have lattice rows in every policy table so wiring a new
 * traffic source is a producer-side change only.
 *
 * Enumerator values are a wire/stat-index contract: they index
 * per-class stat arrays and are serialized by the telemetry trace and
 * the worker wire codec. Append new classes at the end and bump
 * kRequestClassCount; never renumber.
 */
enum class RequestClass : std::uint8_t
{
    DemandRead = 0,
    Prefetch = 1,
    Writeback = 2,
    PtwRead = 3,
    DramCacheFill = 4,
};

/** Number of RequestClass enumerators (bound for per-class arrays). */
inline constexpr std::size_t kRequestClassCount = 5;

/** Human-readable policy name matching the paper's figures. */
std::string toString(SchedPolicyKind kind);

/** Human-readable prefetcher name. */
std::string toString(PrefetcherKind kind);

/** Human-readable row policy name. */
std::string toString(RowPolicy policy);

/** Stable lowercase request-class name ("demand-read", "prefetch", ...). */
std::string toString(RequestClass cls);

/**
 * Parse a policy name ("demand-first", "demand-pref-equal", "frfcfs",
 * "prefetch-first", "aps", "padc").
 * @return true on success; *out unchanged on failure.
 */
bool parseSchedPolicy(const std::string &name, SchedPolicyKind *out);

/** Parse a prefetcher name ("none", "stream", "stride", "cdc", "markov"). */
bool parsePrefetcher(const std::string &name, PrefetcherKind *out);

/** Parse a row-buffer policy name ("open-row", "closed-row"). */
bool parseRowPolicy(const std::string &name, RowPolicy *out);

/**
 * Parse a request-class name ("demand-read", "prefetch", "writeback",
 * "ptw-read", "dram-cache-fill"; alias "demand").
 * @return true on success; *out unchanged on failure.
 */
bool parseRequestClass(const std::string &name, RequestClass *out);

} // namespace padc

#endif // PADC_COMMON_CONFIG_HH
