/**
 * @file
 * Fixed-bucket histogram shared by the simulator statistics
 * (Fig. 4(a) prefetch service-time distribution), the telemetry
 * layer, and the fleet-observability registry (src/obs).
 *
 * Promoted out of common/stats.hh so obs::AtomicHistogram can snapshot
 * into the same implementation and inherit the nearest-rank percentile
 * and overflow-to-tracked-max semantics the tests pin down.
 */

#ifndef PADC_COMMON_HISTOGRAM_HH
#define PADC_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace padc
{

/**
 * Fixed-bucket histogram.
 *
 * Buckets are [0,width), [width,2*width), ...; samples beyond the last
 * bucket are accumulated in an overflow bucket.
 */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket, @param buckets count. */
    Histogram(std::uint64_t bucket_width, std::uint32_t buckets);

    /**
     * Rebuild a histogram from externally accumulated state (the
     * obs::AtomicHistogram snapshot path): @p counts holds one entry
     * per regular bucket plus a trailing overflow entry, exactly the
     * internal layout.
     */
    static Histogram fromCounts(std::uint64_t bucket_width,
                                const std::vector<std::uint64_t> &counts,
                                double sum, std::uint64_t max);

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Number of samples recorded in bucket i (i == buckets() => overflow). */
    std::uint64_t count(std::uint32_t i) const;

    /** Number of regular (non-overflow) buckets. */
    std::uint32_t buckets() const
    {
        return static_cast<std::uint32_t>(counts_.size() - 1);
    }

    std::uint64_t bucketWidth() const { return width_; }

    /** Total samples across all buckets including overflow. */
    std::uint64_t total() const { return total_; }

    /** Arithmetic mean of all samples. */
    double mean() const;

    /** Largest sample recorded (0 when empty). */
    std::uint64_t max() const { return max_; }

    /**
     * Value below which at least @p p percent of samples fall,
     * estimated from the bucket layout: the smallest bucket upper edge
     * whose cumulative count covers the rank. Within the overflow
     * bucket the exact maximum is returned (the histogram tracks it),
     * so p100 is always the true max. @p p is clamped to [0, 100];
     * returns 0 for an empty histogram.
     */
    double percentile(double p) const;

    /**
     * Export as named stats: <prefix>.count/mean/p50/p90/p99/max plus
     * per-bucket counts (<prefix>.le_<edge> cumulative-style upper
     * edges, <prefix>.overflow).
     */
    StatSet toStatSet(const std::string &prefix) const;

    void reset();

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_; // last entry = overflow
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    std::uint64_t max_ = 0;
};

} // namespace padc

#endif // PADC_COMMON_HISTOGRAM_HH
