#include "common/random.hh"

namespace padc
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift; tiny modulo bias is irrelevant for
    // workload synthesis and keeps the generator branch-free.
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint32_t
Rng::burstLength(double p, std::uint32_t cap)
{
    std::uint32_t len = 1;
    while (len < cap && chance(p))
        ++len;
    return len;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL);
}

} // namespace padc
