/**
 * @file
 * Lightweight statistics containers shared across the library.
 *
 * Components keep their hot counters as plain struct members (no
 * indirection on the simulation fast path) and expose them through
 * StatSet snapshots for printing and for the experiment harness.
 * The companion fixed-bucket Histogram lives in common/histogram.hh.
 */

#ifndef PADC_COMMON_STATS_HH
#define PADC_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace padc
{

/**
 * Ordered name -> value list used to export component statistics.
 *
 * Insertion order is preserved so dumps are stable and diffable.
 * Lookups (get/has) go through a lazily built name index, so
 * ratio-heavy post-processing over large merged sets costs O(1)
 * amortized per lookup instead of a linear scan; appends stay cheap
 * (the index catches up on the next lookup). When the same name was
 * added more than once, lookups see the first occurrence, exactly as
 * the original front-to-back scan did.
 */
class StatSet
{
  public:
    /** Append a named scalar statistic. */
    void add(const std::string &name, double value);

    /** Append every entry of another set, prefixing its names. */
    void merge(const std::string &prefix, const StatSet &other);

    /**
     * Look up a statistic by exact name.
     * @retval value if present, 0.0 otherwise (missing stats read as zero
     *         so ratio code does not need existence checks).
     */
    double get(const std::string &name) const;

    /** True if a statistic with this exact name exists. */
    bool has(const std::string &name) const;

    /** All entries, in insertion order. */
    const std::vector<std::pair<std::string, double>> &entries() const
    {
        return entries_;
    }

    /** Render as "name value" lines. */
    std::string toString() const;

  private:
    /** Index every entry appended since the last lookup. */
    void reindex() const;

    std::vector<std::pair<std::string, double>> entries_;

    /**
     * name -> index of its first occurrence in entries_, covering
     * entries_[0, indexed_). Entries beyond indexed_ were appended
     * after the last lookup and are folded in by reindex().
     */
    mutable std::unordered_map<std::string, std::size_t> index_;
    mutable std::size_t indexed_ = 0;
};

/** Geometric mean of a vector of strictly-positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; returns 0 for an empty vector. */
double amean(const std::vector<double> &values);

/** Safe ratio: a/b, or 0 when b == 0. */
double ratio(double a, double b);

} // namespace padc

#endif // PADC_COMMON_STATS_HH
