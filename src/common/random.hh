/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic behaviour in the library (synthetic trace generation,
 * workload mix selection) flows through Xoshiro256StarStar so that every
 * experiment is exactly reproducible from its seed. We deliberately avoid
 * std::mt19937 / std::uniform_int_distribution because their outputs are
 * not guaranteed identical across standard-library implementations.
 */

#ifndef PADC_COMMON_RANDOM_HH
#define PADC_COMMON_RANDOM_HH

#include <cstdint>

namespace padc
{

/**
 * xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64.
 *
 * Fast, high-quality, and fully deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free multiply-shift. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Geometric-ish burst length: 1 + number of successes before the first
     * failure with continuation probability p, capped at cap.
     */
    std::uint32_t burstLength(double p, std::uint32_t cap);

    /** Derive an independent child generator (for per-stream determinism). */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

} // namespace padc

#endif // PADC_COMMON_RANDOM_HH
