#include "common/suggest.hh"

#include <algorithm>

namespace padc
{

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
        }
    }
    return row[b.size()];
}

std::string
closestMatch(const std::string &input,
             const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_distance = 0;
    for (const std::string &candidate : candidates) {
        const std::size_t distance = editDistance(input, candidate);
        if (best.empty() || distance < best_distance) {
            best = candidate;
            best_distance = distance;
        }
    }
    return best;
}

std::string
didYouMean(const std::string &input,
           const std::vector<std::string> &candidates)
{
    const std::string best = closestMatch(input, candidates);
    if (best.empty())
        return "";
    return " (did you mean '" + best + "'?)";
}

} // namespace padc
