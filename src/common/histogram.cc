#include "common/histogram.hh"

#include <algorithm>
#include <cmath>

namespace padc
{

Histogram::Histogram(std::uint64_t bucket_width, std::uint32_t buckets)
    : width_(bucket_width), counts_(buckets + 1, 0)
{
}

Histogram
Histogram::fromCounts(std::uint64_t bucket_width,
                      const std::vector<std::uint64_t> &counts, double sum,
                      std::uint64_t max)
{
    Histogram h(bucket_width, counts.empty()
                                  ? 0
                                  : static_cast<std::uint32_t>(
                                        counts.size() - 1));
    for (std::size_t i = 0; i < counts.size() && i < h.counts_.size(); ++i) {
        h.counts_[i] = counts[i];
        h.total_ += counts[i];
    }
    h.sum_ = sum;
    h.max_ = max;
    return h;
}

void
Histogram::sample(std::uint64_t value)
{
    std::uint64_t idx = value / width_;
    if (idx >= buckets())
        idx = buckets(); // overflow bucket
    ++counts_[idx];
    ++total_;
    sum_ += static_cast<double>(value);
    if (value > max_)
        max_ = value;
}

std::uint64_t
Histogram::count(std::uint32_t i) const
{
    return i < counts_.size() ? counts_[i] : 0;
}

double
Histogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // Nearest-rank: the rank-th smallest sample, rank in [1, total].
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(total_))));
    std::uint64_t cumulative = 0;
    for (std::uint32_t i = 0; i < buckets(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank)
            return static_cast<double>((i + 1) * width_);
    }
    return static_cast<double>(max_); // rank falls in the overflow bucket
}

StatSet
Histogram::toStatSet(const std::string &prefix) const
{
    StatSet stats;
    stats.add(prefix + ".count", static_cast<double>(total_));
    stats.add(prefix + ".mean", mean());
    stats.add(prefix + ".p50", percentile(50.0));
    stats.add(prefix + ".p90", percentile(90.0));
    stats.add(prefix + ".p99", percentile(99.0));
    stats.add(prefix + ".max", static_cast<double>(max_));
    for (std::uint32_t i = 0; i < buckets(); ++i) {
        stats.add(prefix + ".le_" + std::to_string((i + 1) * width_),
                  static_cast<double>(counts_[i]));
    }
    stats.add(prefix + ".overflow",
              static_cast<double>(counts_[buckets()]));
    return stats;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
    sum_ = 0.0;
    max_ = 0;
}

} // namespace padc
