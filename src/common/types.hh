/**
 * @file
 * Fundamental type aliases and constants used throughout the PADC
 * simulation library.
 *
 * The simulator advances a single global clock measured in *processor*
 * cycles. DRAM-side components internally divide this clock down to the
 * DRAM command-clock domain (see dram::TimingParams::cpuPerDramCycle).
 */

#ifndef PADC_COMMON_TYPES_HH
#define PADC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace padc
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Global simulation time, in processor cycles. */
using Cycle = std::uint64_t;

/** Identifier of a processing core within the simulated CMP. */
using CoreId = std::uint32_t;

/** Sentinel for "no valid address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / "not scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Cache line size in bytes. All caches and DRAM bursts use this size. */
inline constexpr std::uint32_t kLineBytes = 64;

/** log2(kLineBytes), used for address <-> line-address conversion. */
inline constexpr std::uint32_t kLineShift = 6;

/** Convert a byte address to its cache-line address (low bits cleared). */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Convert a byte address to a cache-line index (address >> kLineShift). */
constexpr Addr
lineIndex(Addr addr)
{
    return addr >> kLineShift;
}

/** Convert a cache-line index back to the line's base byte address. */
constexpr Addr
lineToAddr(Addr line)
{
    return line << kLineShift;
}

} // namespace padc

#endif // PADC_COMMON_TYPES_HH
