/**
 * @file
 * "Did you mean" machinery shared by every name registry (experiment
 * selectors, workload profiles, corpus entries): Levenshtein edit
 * distance plus a closest-candidate picker.
 */

#ifndef PADC_COMMON_SUGGEST_HH
#define PADC_COMMON_SUGGEST_HH

#include <cstddef>
#include <string>
#include <vector>

namespace padc
{

/** Levenshtein edit distance (unit insert/delete/substitute costs). */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p input by edit distance (first wins ties);
 * empty when @p candidates is empty.
 */
std::string closestMatch(const std::string &input,
                         const std::vector<std::string> &candidates);

/**
 * Format " (did you mean 'X'?)" for the closest candidate, or "" when
 * there are no candidates. Appended to unknown-name diagnostics.
 */
std::string didYouMean(const std::string &input,
                       const std::vector<std::string> &candidates);

} // namespace padc

#endif // PADC_COMMON_SUGGEST_HH
