/**
 * @file
 * Crash-safe file writing: write to a `<path>.tmp` sibling, atomically
 * rename over the destination on a successful commit.
 *
 * An interrupted writer (crash, kill, disk full) therefore never leaves
 * a truncated file at the destination path that a later reader would
 * reject as corrupt; the worst case is a stale `.tmp` sibling, which
 * the next successful write replaces.
 */

#ifndef PADC_COMMON_ATOMIC_FILE_HH
#define PADC_COMMON_ATOMIC_FILE_HH

#include <cstdio>
#include <string>

namespace padc
{

/**
 * RAII temp-then-rename writer. All writes go to `<path>.tmp`;
 * commit() flushes, closes, and renames onto `<path>`. Destruction
 * without a successful commit removes the temp file.
 */
class AtomicFile
{
  public:
    /** Opens `<path>.tmp` for binary writing; check ok(). */
    explicit AtomicFile(std::string path);

    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** True while no operation has failed. */
    bool ok() const { return file_ != nullptr && !failed_; }

    /** Why ok() is false; empty otherwise. */
    const std::string &error() const { return error_; }

    /** The destination path (not the temp sibling). */
    const std::string &path() const { return path_; }

    /** Write @p size bytes; false (and ok() latches false) on failure. */
    bool write(const void *data, std::size_t size);

    /** Reposition the write cursor (for header back-patching). */
    bool seekTo(long offset);

    /** Current write position, or -1 on error. */
    long tell();

    /**
     * Flush, close, and rename the temp file onto the destination.
     * On any failure the temp file is removed and false returned with
     * a descriptive error(); the destination is never touched.
     */
    bool commit();

  private:
    void fail(const std::string &message);
    void discard();

    std::string path_;
    std::string tmp_path_;
    std::FILE *file_ = nullptr;
    bool failed_ = false;
    bool committed_ = false;
    std::string error_;
};

} // namespace padc

#endif // PADC_COMMON_ATOMIC_FILE_HH
