#include "telemetry/export.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "exp/json.hh"

namespace padc::telemetry
{

namespace
{

/** CSV field, quoted when it contains a separator, quote, or newline. */
std::string
csvField(const std::string &text)
{
    if (text.find_first_of(",\"\n") == std::string::npos)
        return text;
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
append(std::string &out, std::uint64_t value)
{
    out += std::to_string(value);
}

void
append(std::string &out, double value)
{
    out += exp::jsonNumber(value);
}

// --- Chrome trace-event helpers ------------------------------------

/** Thread id of a request-side event: the core index. */
std::uint64_t
coreTid(const TraceEvent &event)
{
    return event.core;
}

/** Thread id of a DRAM-side event: (channel, bank) flattened. */
std::uint64_t
dramTid(const TraceEvent &event)
{
    const std::uint64_t bank =
        event.bank == TraceEvent::kNoBank ? 0xFF : event.bank;
    return static_cast<std::uint64_t>(event.channel) * 256 + bank;
}

/** True for events rendered on the DRAM process (bank tracks). */
bool
isDramEvent(EventKind kind)
{
    switch (kind) {
      case EventKind::CmdPrecharge:
      case EventKind::CmdActivate:
      case EventKind::CmdRead:
      case EventKind::CmdWrite:
      case EventKind::Refresh:
        return true;
      default:
        return false;
    }
}

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** Common prefix of one event object: name, ph, pid, tid, ts. */
void
eventHead(std::string &out, const char *name, char ph, std::uint64_t pid,
          std::uint64_t tid, std::uint64_t ts)
{
    out += "{\"name\":";
    out += exp::jsonQuote(name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":";
    append(out, pid);
    out += ",\"tid\":";
    append(out, tid);
    out += ",\"ts\":";
    append(out, ts);
}

void
metadataEvent(std::string &out, const char *what, std::uint64_t pid,
              std::uint64_t tid, bool has_tid, const std::string &name)
{
    out += "{\"name\":\"";
    out += what;
    out += "\",\"ph\":\"M\",\"pid\":";
    append(out, pid);
    if (has_tid) {
        out += ",\"tid\":";
        append(out, tid);
    }
    out += ",\"ts\":0,\"args\":{\"name\":";
    out += exp::jsonQuote(name);
    out += "}}";
}

const char *
completeName(const TraceEvent &event)
{
    if ((event.flags & TraceEvent::kWasPrefetch) == 0)
        return "demand";
    return (event.flags & TraceEvent::kPrefetch) != 0 ? "prefetch"
                                                      : "prefetch(promoted)";
}

} // namespace

std::string
timeseriesCsv(const std::vector<LabeledSeries> &points)
{
    std::string out =
        "point,label,cycle,core,par,psc,puc,drop_threshold,"
        "sent,used,dropped,bus_util,row_hit_rate,read_queue,"
        "write_queue";
    // Per-class column group: one svc_<class> column per RequestClass,
    // in enumerator order ('-' swapped for '_' to keep bare CSV names).
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
        std::string name = toString(static_cast<RequestClass>(c));
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        out += ",svc_" + name;
    }
    out += '\n';
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (points[p].sampler == nullptr)
            continue;
        const std::string label = csvField(points[p].label);
        for (const IntervalRow &row : points[p].sampler->rows()) {
            append(out, static_cast<std::uint64_t>(p));
            out += ',';
            out += label;
            out += ',';
            append(out, static_cast<std::uint64_t>(row.cycle));
            out += ',';
            append(out, static_cast<std::uint64_t>(row.core));
            out += ',';
            append(out, row.par);
            out += ',';
            append(out, row.psc);
            out += ',';
            append(out, row.puc);
            out += ',';
            append(out, static_cast<std::uint64_t>(row.drop_threshold));
            out += ',';
            append(out, row.sent);
            out += ',';
            append(out, row.used);
            out += ',';
            append(out, row.dropped);
            out += ',';
            append(out, row.bus_util);
            out += ',';
            append(out, row.row_hit_rate);
            out += ',';
            append(out, row.read_queue);
            out += ',';
            append(out, row.write_queue);
            for (const std::uint64_t serviced : row.serviced_by_class) {
                out += ',';
                append(out, serviced);
            }
            out += '\n';
        }
    }
    return out;
}

std::string
chromeTraceJson(const std::vector<LabeledTrace> &points)
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string &event) {
        if (!first)
            out += ',';
        first = false;
        out += event;
    };

    for (std::size_t p = 0; p < points.size(); ++p) {
        if (points[p].trace == nullptr)
            continue;
        const std::uint64_t pid_req = 2 * p + 1;
        const std::uint64_t pid_dram = 2 * p + 2;
        const std::string tag = "point" + std::to_string(p) + " " +
                                points[p].label;

        std::string meta;
        metadataEvent(meta, "process_name", pid_req, 0, false,
                      tag + " requests");
        emit(meta);
        meta.clear();
        metadataEvent(meta, "process_name", pid_dram, 0, false,
                      tag + " dram");
        emit(meta);

        // Name each thread track the first time it appears.
        std::map<std::pair<std::uint64_t, std::uint64_t>, bool> named;
        const auto nameTrack = [&](std::uint64_t pid, std::uint64_t tid,
                                   const std::string &name) {
            if (!named.emplace(std::make_pair(pid, tid), true).second)
                return;
            std::string event;
            metadataEvent(event, "thread_name", pid, tid, true, name);
            emit(event);
        };

        for (const TraceEvent &event : points[p].trace->events()) {
            std::string body;
            if (isDramEvent(event.kind)) {
                const std::uint64_t tid = dramTid(event);
                const std::string track =
                    event.kind == EventKind::Refresh
                        ? "ch" + std::to_string(event.channel) +
                              " refresh"
                        : "ch" + std::to_string(event.channel) +
                              " bank" + std::to_string(event.bank);
                nameTrack(pid_dram, tid, track);
                eventHead(body, toString(event.kind), 'i', pid_dram, tid,
                          event.cycle);
                body += ",\"s\":\"t\",\"args\":{";
                if (event.kind != EventKind::Refresh) {
                    body += "\"addr\":";
                    body += exp::jsonQuote(hexAddr(event.addr));
                    body += ",\"row\":";
                    append(body, event.row);
                    body += ",\"core\":";
                    append(body,
                           static_cast<std::uint64_t>(event.core));
                }
                body += "}}";
                emit(body);
                continue;
            }

            const std::uint64_t tid = coreTid(event);
            nameTrack(pid_req, tid,
                      "core" + std::to_string(event.core));
            if (event.kind == EventKind::Complete) {
                // Duration event spanning arrival -> completion.
                eventHead(body, completeName(event), 'X', pid_req, tid,
                          event.aux);
                body += ",\"dur\":";
                append(body, event.cycle - event.aux);
                body += ",\"args\":{\"addr\":";
                body += exp::jsonQuote(hexAddr(event.addr));
                body += ",\"bank\":";
                append(body, static_cast<std::uint64_t>(event.bank));
                body += ",\"row\":";
                append(body, event.row);
                body += ",\"row_hit\":";
                body += (event.flags & TraceEvent::kRowHit) != 0
                            ? "true"
                            : "false";
                body += "}}";
                emit(body);
                continue;
            }

            eventHead(body, toString(event.kind), 'i', pid_req, tid,
                      event.cycle);
            body += ",\"s\":\"t\",\"args\":{\"addr\":";
            body += exp::jsonQuote(hexAddr(event.addr));
            body += ",\"bank\":";
            append(body, static_cast<std::uint64_t>(event.bank));
            if (event.kind == EventKind::Drop ||
                event.kind == EventKind::WriteRetire) {
                body += ",\"age\":";
                append(body, event.cycle - event.aux);
            }
            if ((event.flags & TraceEvent::kWasPrefetch) != 0)
                body += ",\"prefetch\":true";
            body += "}}";
            emit(body);
        }
    }
    out += "]}";
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text,
              std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        if (error != nullptr) {
            *error = "cannot open '" + path +
                     "' for writing: " + std::strerror(errno);
        }
        return false;
    }
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file);
    const bool flushed = std::fflush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    if (written != text.size() || !flushed || !closed) {
        if (error != nullptr)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

} // namespace padc::telemetry
