#include "telemetry/telemetry.hh"

#include <algorithm>

namespace padc::telemetry
{

const char *
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::Enqueue: return "enqueue";
      case EventKind::EnqueueWrite: return "enqueue_write";
      case EventKind::Coalesce: return "coalesce";
      case EventKind::Forward: return "forward";
      case EventKind::RejectFull: return "reject_full";
      case EventKind::Promote: return "promote";
      case EventKind::CmdPrecharge: return "PRE";
      case EventKind::CmdActivate: return "ACT";
      case EventKind::CmdRead: return "RD";
      case EventKind::CmdWrite: return "WR";
      case EventKind::Refresh: return "REF";
      case EventKind::Complete: return "complete";
      case EventKind::WriteRetire: return "write_retire";
      case EventKind::Drop: return "drop";
      case EventKind::MshrAlloc: return "mshr_alloc";
      case EventKind::MshrCoalesce: return "mshr_coalesce";
      case EventKind::MshrRelease: return "mshr_release";
    }
    return "?";
}

IntervalSampler::IntervalSampler(std::size_t max_rows)
    : max_rows_(std::max<std::size_t>(1, max_rows))
{
}

void
IntervalSampler::push(const IntervalRow &row)
{
    ++pushed_;
    if (ring_.size() < max_rows_) {
        ring_.push_back(row);
        return;
    }
    ring_[head_] = row;
    head_ = (head_ + 1) % max_rows_;
}

void
IntervalSampler::sample(Cycle now, const std::vector<CoreSample> &cores,
                        const std::vector<ChannelSample> &channels,
                        Cycle busy_cycles_per_burst)
{
    prev_cores_.resize(cores.size());
    prev_channels_.resize(channels.size());

    // Aggregate the channel-side deltas once; they are shared by every
    // core's row of this boundary.
    const Cycle delta_cycles = now - prev_cycle_;
    std::uint64_t bursts = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_reads = 0;
    double read_queue = 0.0;
    std::uint64_t write_queue = 0;
    std::array<std::uint64_t, kRequestClassCount> serviced_by_class{};
    for (std::size_t ch = 0; ch < channels.size(); ++ch) {
        const ChannelSample &cur = channels[ch];
        const ChannelSample &prev = prev_channels_[ch];
        bursts += (cur.reads - prev.reads) + (cur.writes - prev.writes);
        row_hits += cur.row_hits - prev.row_hits;
        row_reads += cur.row_reads - prev.row_reads;
        for (std::size_t cls = 0; cls < kRequestClassCount; ++cls) {
            serviced_by_class[cls] += cur.serviced_by_class[cls] -
                                      prev.serviced_by_class[cls];
        }
        const std::uint64_t dram_cycles =
            cur.dram_cycles - prev.dram_cycles;
        if (dram_cycles > 0) {
            read_queue +=
                static_cast<double>(cur.occupancy_sum -
                                    prev.occupancy_sum) /
                static_cast<double>(dram_cycles);
        }
        write_queue += cur.write_queue;
    }
    const double bus_util =
        delta_cycles > 0
            ? static_cast<double>(bursts * busy_cycles_per_burst) /
                  (static_cast<double>(delta_cycles) *
                   static_cast<double>(std::max<std::size_t>(
                       1, channels.size())))
            : 0.0;
    const double row_hit_rate =
        row_reads > 0 ? static_cast<double>(row_hits) /
                            static_cast<double>(row_reads)
                      : 0.0;

    for (std::size_t c = 0; c < cores.size(); ++c) {
        const CoreSample &cur = cores[c];
        const CoreSample &prev = prev_cores_[c];
        IntervalRow row;
        row.cycle = now;
        row.core = static_cast<std::uint32_t>(c);
        row.par = cur.par;
        const std::uint64_t sent = cur.sent - prev.sent;
        const std::uint64_t dropped = cur.dropped - prev.dropped;
        // Interval PSC follows the tracker's semantics: drops leave the
        // interval sent count (see AccuracyTracker's file comment).
        row.psc = sent > dropped ? sent - dropped : 0;
        row.puc = cur.used - prev.used;
        row.drop_threshold = cur.drop_threshold;
        row.sent = cur.sent;
        row.used = cur.used;
        row.dropped = cur.dropped;
        row.bus_util = bus_util;
        row.row_hit_rate = row_hit_rate;
        row.read_queue = read_queue;
        row.write_queue = write_queue;
        row.serviced_by_class = serviced_by_class;
        push(row);
    }

    prev_cycle_ = now;
    prev_cores_ = cores;
    prev_channels_ = channels;
}

std::vector<IntervalRow>
IntervalSampler::rows() const
{
    std::vector<IntervalRow> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

Collector::Collector(const TelemetryConfig &config) : config_(config)
{
    if (config_.timeseries) {
        sampler_ =
            std::make_unique<IntervalSampler>(config_.timeseries_limit);
    }
    if (config_.trace)
        trace_ = std::make_unique<TraceBuffer>(config_.trace_limit);
}

} // namespace padc::telemetry
