#include "telemetry/profiler.hh"

namespace padc::telemetry
{

WallProfiler &
WallProfiler::instance()
{
    static WallProfiler profiler;
    return profiler;
}

WallProfiler::Snapshot
WallProfiler::snapshot() const
{
    Snapshot snap;
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        snap.entries[i].nanos =
            cells_[i].nanos.load(std::memory_order_relaxed);
        snap.entries[i].calls =
            cells_[i].calls.load(std::memory_order_relaxed);
    }
    return snap;
}

void
WallProfiler::reset()
{
    for (auto &cell : cells_) {
        cell.nanos.store(0, std::memory_order_relaxed);
        cell.calls.store(0, std::memory_order_relaxed);
    }
}

} // namespace padc::telemetry
