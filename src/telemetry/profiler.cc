#include "telemetry/profiler.hh"

namespace padc::telemetry
{

WallProfiler &
WallProfiler::instance()
{
    static WallProfiler profiler;
    return profiler;
}

WallProfiler::Snapshot
WallProfiler::snapshot() const
{
    Snapshot snap;
    for (std::size_t i = 0; i < kProfilePhases; ++i) {
        snap.entries[i].nanos =
            cells_[i].nanos.load(std::memory_order_relaxed);
        snap.entries[i].calls =
            cells_[i].calls.load(std::memory_order_relaxed);
    }
    snap.skipped_cycles = skipped_cycles_.load(std::memory_order_relaxed);
    snap.event_jumps = event_jumps_.load(std::memory_order_relaxed);
    return snap;
}

void
WallProfiler::reset()
{
    for (auto &cell : cells_) {
        cell.nanos.store(0, std::memory_order_relaxed);
        cell.calls.store(0, std::memory_order_relaxed);
    }
    skipped_cycles_.store(0, std::memory_order_relaxed);
    event_jumps_.store(0, std::memory_order_relaxed);
}

} // namespace padc::telemetry
