/**
 * @file
 * Host-side scoped wall-clock profiling of the simulation pipeline.
 *
 * A process-wide singleton accumulates (nanoseconds, calls) per phase
 * through RAII scopes. The coarse phases (Build / Simulate / Collect)
 * wrap whole runMix stages, so their cost is a handful of clock reads
 * per simulated run. The scheduler hot path is too hot to time every
 * cycle; instead System::run times the memory-controller tick loop on
 * one cycle out of kSchedulerSampleInterval and the reader extrapolates
 * (sampled_ns * interval estimates the full scheduler wall time). Each
 * sample pays two steady_clock reads, so the extrapolation is an upper
 * bound that overestimates most when a controller tick is cheaper than
 * the clock reads (tiny configs); treat it as a trend/ceiling, not an
 * exact attribution. The
 * counters are atomics so parallel sweep workers can share the
 * singleton; numbers therefore aggregate *across* worker threads (CPU
 * seconds, not elapsed seconds, when the pool fans out).
 *
 * The driver snapshots-and-resets around each experiment and reports
 * the phases next to the sim-cycles/sec block and in the "profile"
 * member of BENCH_<name>.json.
 */

#ifndef PADC_TELEMETRY_PROFILER_HH
#define PADC_TELEMETRY_PROFILER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace padc::telemetry
{

/** Profiled pipeline phases. */
enum class ProfilePhase : std::uint8_t
{
    Build,           ///< trace construction + System assembly
    Simulate,        ///< System::run
    Collect,         ///< metrics collection
    SchedulerSample, ///< sampled controller-tick loop (see file comment)
};

constexpr std::size_t kProfilePhases = 4;

/** Cycles between scheduler hot-path samples (power of two). */
constexpr std::uint64_t kSchedulerSampleInterval = 1024;

/**
 * Process-wide wall-clock accumulator; see file comment.
 */
class WallProfiler
{
  public:
    static WallProfiler &instance();

    void add(ProfilePhase phase, std::uint64_t nanos)
    {
        Cell &cell = cells_[static_cast<std::size_t>(phase)];
        cell.nanos.fetch_add(nanos, std::memory_order_relaxed);
        cell.calls.fetch_add(1, std::memory_order_relaxed);
    }

    /** One next-event jump of @p skipped cycles in System::run. */
    void addEventJump(std::uint64_t skipped)
    {
        skipped_cycles_.fetch_add(skipped, std::memory_order_relaxed);
        event_jumps_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Batched form: @p jumps jumps totalling @p skipped cycles. */
    void addEventJumps(std::uint64_t skipped, std::uint64_t jumps)
    {
        skipped_cycles_.fetch_add(skipped, std::memory_order_relaxed);
        event_jumps_.fetch_add(jumps, std::memory_order_relaxed);
    }

    /** Consistent-enough copy of the counters (relaxed reads). */
    struct Snapshot
    {
        struct Entry
        {
            std::uint64_t nanos = 0;
            std::uint64_t calls = 0;
        };
        std::array<Entry, kProfilePhases> entries;

        /** Simulated cycles elided by next-event jumps. */
        std::uint64_t skipped_cycles = 0;
        /** Number of next-event jumps taken. */
        std::uint64_t event_jumps = 0;

        double seconds(ProfilePhase phase) const
        {
            return static_cast<double>(
                       entries[static_cast<std::size_t>(phase)].nanos) *
                   1e-9;
        }
        std::uint64_t calls(ProfilePhase phase) const
        {
            return entries[static_cast<std::size_t>(phase)].calls;
        }

        /**
         * Extrapolated scheduler wall time: one cycle in
         * kSchedulerSampleInterval is timed, so the full-loop estimate
         * is the sampled time scaled back up.
         */
        double schedulerSecondsEstimate() const
        {
            return seconds(ProfilePhase::SchedulerSample) *
                   static_cast<double>(kSchedulerSampleInterval);
        }
    };

    Snapshot snapshot() const;

    void reset();

    /** RAII phase timer. */
    class Scope
    {
      public:
        explicit Scope(ProfilePhase phase)
            : phase_(phase), start_(std::chrono::steady_clock::now())
        {
        }

        ~Scope()
        {
            const auto elapsed =
                std::chrono::steady_clock::now() - start_;
            WallProfiler::instance().add(
                phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ProfilePhase phase_;
        std::chrono::steady_clock::time_point start_;
    };

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> nanos{0};
        std::atomic<std::uint64_t> calls{0};
    };

    std::array<Cell, kProfilePhases> cells_;
    std::atomic<std::uint64_t> skipped_cycles_{0};
    std::atomic<std::uint64_t> event_jumps_{0};
};

} // namespace padc::telemetry

#endif // PADC_TELEMETRY_PROFILER_HH
