/**
 * @file
 * Simulation telemetry: interval time-series sampling and
 * request-lifecycle event tracing.
 *
 * The paper's mechanisms are interval-driven -- PAR is re-estimated
 * every accuracy interval and APD's drop threshold adapts to it -- so
 * end-of-run StatSet snapshots cannot show PAR converging, drops
 * clustering, or criticality flipping mid-run. This module records that
 * time-resolved behaviour through two sinks, both off by default:
 *
 *  - IntervalSampler: one row per (interval boundary, core) with the
 *    PAR/PSC/PUC estimate, the APD drop threshold in force, lifetime
 *    sent/used/dropped counters, and aggregate channel state (bus
 *    utilization, row-hit rate, queue depths), kept in a bounded ring.
 *  - TraceBuffer: a flat buffer of request-lifecycle events (enqueue,
 *    coalesce, promote, DRAM commands, complete, drop, MSHR
 *    transitions) with cycle timestamps and core/channel/bank/row tags.
 *
 * Hook sites hold a nullable TraceBuffer pointer and test it before
 * building an event (the same idiom as MemoryController's issue log),
 * so compiled-in-but-disabled telemetry costs one predictable branch
 * per event site and nothing per cycle. A Collector owns both sinks
 * for one simulation run; SystemConfig carries a non-owning Collector
 * pointer that is excluded from validation and sweep keys, so attaching
 * telemetry never changes simulated behaviour or journal identity.
 *
 * Exporters (CSV, Chrome trace JSON) live in telemetry/export.hh; the
 * wall-clock profiler in telemetry/profiler.hh. This module observes
 * one simulation from the inside; its fleet-level counterpart -- the
 * process-wide metrics registry, the structured run-event log, and the
 * live sweep status a `padc run --progress` maintains -- lives in
 * src/obs/ (see obs/metrics.hh and DESIGN.md section 14).
 */

#ifndef PADC_TELEMETRY_TELEMETRY_HH
#define PADC_TELEMETRY_TELEMETRY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace padc::telemetry
{

/** Which sinks a Collector instantiates, and their retention bounds. */
struct TelemetryConfig
{
    bool timeseries = false; ///< record interval time-series rows
    bool trace = false;      ///< record request-lifecycle events

    /** Events retained per run; later events are counted but not kept
        (keeps the beginning of the run, like a fixed trace buffer). */
    std::uint64_t trace_limit = 1u << 20;

    /** Time-series rows retained per run; on overflow the *oldest* rows
        are overwritten (ring semantics: the tail of the run survives). */
    std::size_t timeseries_limit = 1u << 20;

    bool any() const { return timeseries || trace; }
};

/** Request-lifecycle event kinds, in pipeline order. */
enum class EventKind : std::uint8_t
{
    Enqueue,      ///< read accepted into the memory request buffer
    EnqueueWrite, ///< writeback accepted into the write queue
    Coalesce,     ///< duplicate read merged with the outstanding one
    Forward,      ///< read served from the write queue (no DRAM access)
    RejectFull,   ///< read rejected: request buffer full
    Promote,      ///< in-flight prefetch promoted to a demand
    CmdPrecharge, ///< PRE issued for the request
    CmdActivate,  ///< ACT issued for the request
    CmdRead,      ///< column read issued
    CmdWrite,     ///< column write issued
    Refresh,      ///< channel refresh (all banks)
    Complete,     ///< read data delivered (aux = arrival cycle)
    WriteRetire,  ///< writeback retired at column issue (aux = arrival)
    Drop,         ///< prefetch removed by APD (aux = arrival cycle)
    MshrAlloc,    ///< L2 miss allocated an MSHR entry
    MshrCoalesce, ///< demand attached to an in-flight miss
    MshrRelease,  ///< MSHR entry released (fill or drop)
};

/** Stable lower-case name of an event kind (trace export). */
const char *toString(EventKind kind);

/**
 * One recorded lifecycle event. Fixed-size POD so recording is a
 * bounds-checked vector push; interpretation of aux depends on kind
 * (arrival cycle for Complete/WriteRetire/Drop, 0 otherwise).
 */
struct TraceEvent
{
    static constexpr std::uint8_t kPrefetch = 1;    ///< P bit set
    static constexpr std::uint8_t kWasPrefetch = 2; ///< prefetcher-generated
    static constexpr std::uint8_t kRowHit = 4;      ///< serviced as row hit
    static constexpr std::uint8_t kWrite = 8;       ///< writeback request

    /** Bank tag of channel-wide events (refresh). */
    static constexpr std::uint16_t kNoBank = 0xFFFF;

    Cycle cycle = 0;         ///< when the event happened
    Addr addr = 0;           ///< line address (0 for channel events)
    std::uint64_t aux = 0;   ///< kind-dependent (see above)
    std::uint64_t row = 0;   ///< DRAM row index
    EventKind kind = EventKind::Enqueue;
    std::uint8_t core = 0;
    std::uint8_t channel = 0;
    std::uint8_t flags = 0;  ///< kPrefetch | kWasPrefetch | kRowHit | kWrite
    /** RequestClass enumerator value of the request (if any). */
    std::uint8_t cls = 0;
    std::uint16_t bank = 0;

    RequestClass requestClass() const
    {
        return static_cast<RequestClass>(cls);
    }
};

/**
 * Append-only event sink with a retention limit. Events past the limit
 * are counted (seen/dropped) but not stored, so the kept prefix stays
 * chronologically ordered and memory is bounded.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::uint64_t limit) : limit_(limit) {}

    void record(const TraceEvent &event)
    {
        ++seen_;
        if (events_.size() < limit_)
            events_.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events offered to the buffer, kept or not. */
    std::uint64_t seen() const { return seen_; }

    /** Events lost to the retention limit. */
    std::uint64_t dropped() const { return seen_ - events_.size(); }

  private:
    std::uint64_t limit_;
    std::uint64_t seen_ = 0;
    std::vector<TraceEvent> events_;
};

/** One time-series row: the state of one core at an interval boundary. */
struct IntervalRow
{
    Cycle cycle = 0;         ///< the interval boundary
    std::uint32_t core = 0;

    double par = 0.0;        ///< tracker PAR after the boundary update
    std::uint64_t psc = 0;   ///< prefetches sent this interval, minus drops
    std::uint64_t puc = 0;   ///< prefetches used this interval
    Cycle drop_threshold = 0; ///< APD threshold in force (0: APD off)

    std::uint64_t sent = 0;    ///< lifetime prefetches sent
    std::uint64_t used = 0;    ///< lifetime prefetches used
    std::uint64_t dropped = 0; ///< lifetime prefetches dropped by APD

    // Aggregated over all channels, identical across the interval's rows.
    double bus_util = 0.0;     ///< data-bus busy fraction this interval
    double row_hit_rate = 0.0; ///< row-hit fraction of reads serviced
    double read_queue = 0.0;   ///< mean read-buffer occupancy
    std::uint64_t write_queue = 0; ///< write-queue depth at the boundary

    /** Requests serviced this interval per RequestClass, summed over
        channels (same value on every core's row, like bus_util). */
    std::array<std::uint64_t, kRequestClassCount> serviced_by_class{};
};

/**
 * Builds IntervalRows from cumulative counters. The sampler stores the
 * previous boundary's totals and computes per-interval deltas itself,
 * so the simulator only hands over current lifetime counts -- no
 * interval bookkeeping leaks into the hot path. Rows are kept in a ring
 * of timeseries_limit entries (oldest overwritten first).
 */
class IntervalSampler
{
  public:
    /** Per-core cumulative inputs at a boundary. */
    struct CoreSample
    {
        double par = 0.0;
        std::uint64_t sent = 0;
        std::uint64_t used = 0;
        std::uint64_t dropped = 0;
        Cycle drop_threshold = 0;
    };

    /** Per-channel cumulative inputs at a boundary. */
    struct ChannelSample
    {
        std::uint64_t reads = 0;          ///< serviced read bursts
        std::uint64_t writes = 0;         ///< serviced write bursts
        std::uint64_t row_hits = 0;       ///< reads serviced as row hits
        std::uint64_t row_reads = 0;      ///< reads with a row outcome
        std::uint64_t occupancy_sum = 0;  ///< read-queue depth integral
        std::uint64_t dram_cycles = 0;    ///< DRAM cycles elapsed
        std::uint64_t write_queue = 0;    ///< instantaneous depth

        /** Lifetime serviced requests per RequestClass. */
        std::array<std::uint64_t, kRequestClassCount> serviced_by_class{};
    };

    explicit IntervalSampler(std::size_t max_rows);

    /**
     * Record one boundary: emits one row per core.
     * @param busy_cycles_per_burst CPU cycles the data bus is occupied
     *        per serviced burst (toCpu(tBURST)), for bus_util.
     */
    void sample(Cycle now, const std::vector<CoreSample> &cores,
                const std::vector<ChannelSample> &channels,
                Cycle busy_cycles_per_burst);

    /** Retained rows in chronological order (materialized copy). */
    std::vector<IntervalRow> rows() const;

    /** Rows recorded, kept or not. */
    std::uint64_t pushed() const { return pushed_; }

    /** Rows lost to the ring bound. */
    std::uint64_t dropped() const { return pushed_ - ring_.size(); }

  private:
    void push(const IntervalRow &row);

    std::size_t max_rows_;
    std::vector<IntervalRow> ring_;
    std::size_t head_ = 0; ///< oldest entry once the ring is full
    std::uint64_t pushed_ = 0;

    Cycle prev_cycle_ = 0;
    std::vector<CoreSample> prev_cores_;
    std::vector<ChannelSample> prev_channels_;
};

/**
 * Owns the sinks of one simulation run. Constructed by the driver (or a
 * test) per sweep point and attached via SystemConfig::collector; the
 * simulator only ever sees the nullable sink pointers.
 */
class Collector
{
  public:
    explicit Collector(const TelemetryConfig &config);

    const TelemetryConfig &config() const { return config_; }

    /** The time-series sink, or nullptr when not configured. */
    IntervalSampler *sampler() { return sampler_.get(); }
    const IntervalSampler *sampler() const { return sampler_.get(); }

    /** The event-trace sink, or nullptr when not configured. */
    TraceBuffer *trace() { return trace_.get(); }
    const TraceBuffer *trace() const { return trace_.get(); }

  private:
    TelemetryConfig config_;
    std::unique_ptr<IntervalSampler> sampler_;
    std::unique_ptr<TraceBuffer> trace_;
};

} // namespace padc::telemetry

#endif // PADC_TELEMETRY_TELEMETRY_HH
