/**
 * @file
 * Telemetry exporters: interval time-series as CSV, lifecycle traces as
 * Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Both take a list of labeled per-point sinks so a whole sweep exports
 * into one file: the CSV gets a leading point column, the trace maps
 * each point to its own process pair (requests per core, DRAM per
 * bank). Trace mapping:
 *
 *  - pid 2p+1 "requests": one thread track per core. Completed reads
 *    are "X" duration events spanning arrival -> completion; enqueue /
 *    coalesce / promote / MSHR transitions and APD drops are instant
 *    events on the owning core's track.
 *  - pid 2p+2 "dram": one thread track per (channel, bank). DRAM
 *    commands (PRE/ACT/RD/WR) are instant events; refreshes get a
 *    per-channel refresh track.
 *
 * Timestamps map one simulated processor cycle to one trace
 * microsecond (the format's native unit), so durations read directly
 * as cycles.
 */

#ifndef PADC_TELEMETRY_EXPORT_HH
#define PADC_TELEMETRY_EXPORT_HH

#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace padc::telemetry
{

/** One sweep point's time-series sink, with its human label. */
struct LabeledSeries
{
    std::string label;
    const IntervalSampler *sampler = nullptr; ///< skipped when null
};

/** One sweep point's trace sink, with its human label. */
struct LabeledTrace
{
    std::string label;
    const TraceBuffer *trace = nullptr; ///< skipped when null
};

/**
 * Render the interval time-series of every point as CSV: a header row
 * followed by one row per (point, interval boundary, core).
 */
std::string timeseriesCsv(const std::vector<LabeledSeries> &points);

/** Render the traces of every point as one Chrome trace-event JSON. */
std::string chromeTraceJson(const std::vector<LabeledTrace> &points);

/**
 * Write @p text to @p path (truncating).
 * @return true on success; false with a description in @p error.
 */
bool writeTextFile(const std::string &path, const std::string &text,
                   std::string *error);

} // namespace padc::telemetry

#endif // PADC_TELEMETRY_EXPORT_HH
