/**
 * @file
 * Figures 21-22: dual memory controllers (two independent channels) on
 * the 4-core and 8-core systems.
 *
 * Paper shape: doubling bandwidth lifts every policy; PADC still wins
 * (paper: +5.9%/+5.5% WS over demand-first at 4/8 cores, with
 * ~13% traffic reduction).
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figures 21-22", "dual memory controllers",
                  "all policies improve; PADC still best");
    const auto dual = [](sim::SystemConfig &cfg) {
        cfg.dram.geometry.channels = 2;
    };
    bench::overallBench(4, 10, bench::fivePolicies(), dual);
    std::printf("\n");
    bench::overallBench(8, 6, bench::fivePolicies(), dual);
    return 0;
}
