/**
 * @file
 * Figures 19-20: PADC augmented with the shortest-job-first ranking
 * rule (Section 6.5) on the 4-core and 8-core systems.
 *
 * Paper shape: ranking keeps WS roughly level, improves HS slightly,
 * and reduces unfairness (more so at 8 cores: -10.4% UF, +2% WS).
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Figures 19-20", "PADC with request ranking",
                  "PADC-rank lowers UF; WS/HS level or better");
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::DemandFirst, sim::PolicySetup::Padc,
        sim::PolicySetup::PadcRank};
    bench::overallBench(4, 10, policies);
    std::printf("\n");
    bench::overallBench(8, 6, policies);
    return 0;
}
