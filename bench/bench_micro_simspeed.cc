/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): throughput of the hot
 * components -- the DRAM channel command loop, the cache lookup path,
 * the stream prefetcher, the synthetic generator, the memory-controller
 * scheduling loop (sharded vs. reference, at several queue depths), the
 * parallel sweep runner, and a full single-core simulation step.
 *
 * Unless the caller passes its own --benchmark_out, results are also
 * written to BENCH_simspeed.json in the working directory.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/controller.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "workload/generator.hh"

namespace
{

using namespace padc;

void
BM_ChannelRowHitReads(benchmark::State &state)
{
    dram::TimingParams timing;
    dram::Channel channel(timing, 8);
    channel.activate(0, 1, 0);
    Cycle t = timing.toCpu(timing.tRCD);
    for (auto _ : state) {
        while (!channel.canColumn(0, false, t))
            t += timing.cpu_per_dram_cycle;
        benchmark::DoNotOptimize(channel.column(0, false, false, t));
    }
}
BENCHMARK(BM_ChannelRowHitReads);

void
BM_CacheAccessHit(benchmark::State &state)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 512 * 1024;
    cfg.ways = 8;
    cache::SetAssocCache cache(cfg, "bench");
    for (Addr a = 0; a < 256 * kLineBytes; a += kLineBytes)
        cache.fill(a, 0, 0, false, false, 0);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + kLineBytes) % (256 * kLineBytes);
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_StreamPrefetcherObserve(benchmark::State &state)
{
    prefetch::PrefetcherConfig cfg;
    prefetch::StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    Addr line = 0;
    for (auto _ : state) {
        out.clear();
        pf.observe(lineToAddr(line++), 0x400, true, false, out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_StreamPrefetcherObserve);

void
BM_SyntheticTraceNext(benchmark::State &state)
{
    workload::TraceParams params;
    params.seed = 7;
    workload::SyntheticTrace trace(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next().addr);
}
BENCHMARK(BM_SyntheticTraceNext);

/** Discards completions; the scheduler benchmarks only need DRAM work. */
class NullHandler : public memctrl::ResponseHandler
{
  public:
    void dramReadComplete(const memctrl::Request &, Cycle) override {}
    void dramPrefetchDropped(const memctrl::Request &, Cycle) override {}
};

/**
 * Cost of one controller DRAM cycle (complete + schedule + issue) with
 * the read queue held at state.range(0) outstanding requests. Addresses
 * follow a deterministic pseudo-random line sequence, so the load mixes
 * row hits and conflicts across all banks; completed requests are
 * immediately replaced to keep the depth constant.
 */
void
scheduleReadAtDepth(benchmark::State &state, bool reference)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    constexpr std::uint32_t kCores = 4;

    dram::TimingParams timing;
    dram::Channel channel(timing, 8);
    dram::Geometry geometry;
    dram::AddressMap map(geometry);

    memctrl::AccuracyConfig acfg;
    acfg.interval = 1000000; // static accuracy during the benchmark
    acfg.initial_accuracy = 1.0;
    memctrl::AccuracyTracker tracker(kCores, acfg);
    NullHandler handler;

    memctrl::SchedulerConfig cfg;
    cfg.kind = SchedPolicyKind::Aps;
    cfg.apd_enabled = false;
    cfg.request_buffer_size = 256;
    cfg.reference_scheduler = reference;
    memctrl::MemoryController ctrl(cfg, channel, tracker, handler, kCores);

    std::uint64_t line = 1;
    std::uint64_t n = 0;
    Cycle now = 0;
    auto topUp = [&](Cycle at) {
        while (ctrl.readQueueSize() < depth) {
            line = line * 2862933555777941757ULL + 3037000493ULL;
            const Addr addr = lineToAddr(line % 4096);
            ctrl.enqueueRead(map.map(addr), lineAlign(addr),
                             static_cast<CoreId>(n % kCores), 0x400,
                             (n & 1) != 0, at);
            ++n;
        }
    };
    topUp(now);

    // Step in DRAM command clocks: every tick runs a scheduling round.
    for (auto _ : state) {
        ctrl.tick(now);
        now += timing.cpu_per_dram_cycle;
        topUp(now);
    }
    benchmark::DoNotOptimize(ctrl.stats().demand_reads);
}

void
BM_ScheduleRead(benchmark::State &state)
{
    scheduleReadAtDepth(state, false);
}
BENCHMARK(BM_ScheduleRead)->Arg(4)->Arg(32)->Arg(128);

/** Seed implementation baseline: the naive O(queue) scan scheduler. */
void
BM_ScheduleReadReference(benchmark::State &state)
{
    scheduleReadAtDepth(state, true);
}
BENCHMARK(BM_ScheduleReadReference)->Arg(4)->Arg(32)->Arg(128);

/**
 * A small (policy x mix) sweep through the shared thread pool; compare
 * against BM_SingleCoreSimulation-style serial cost to see the fan-out
 * win (thread count via PADC_THREADS).
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(2);
    sim::RunOptions opt;
    opt.instructions = 5000;
    opt.warmup = 0;
    const std::vector<workload::Mix> mixes = {
        {"libquantum_06", "milc_06"},
        {"swim_00", "omnetpp_06"},
    };
    std::vector<sim::SweepPoint> points;
    for (const auto setup :
         {sim::PolicySetup::DemandFirst, sim::PolicySetup::ApsOnly,
          sim::PolicySetup::Padc}) {
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            sim::RunOptions point_opt = opt;
            point_opt.mix_seed = i;
            points.push_back(
                {sim::applyPolicy(base, setup), mixes[i], point_opt});
        }
    }
    for (auto _ : state) {
        const auto results = sim::runSweep(points, sim::sharedRunner());
        benchmark::DoNotOptimize(results.size());
    }
}
BENCHMARK(BM_ParallelSweep)->Unit(benchmark::kMillisecond);

void
BM_SingleCoreSimulation(benchmark::State &state)
{
    // Cost of simulating 10K instructions of libquantum under PADC.
    const sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(1), sim::PolicySetup::Padc);
    for (auto _ : state) {
        sim::RunOptions opt;
        opt.instructions = 10000;
        opt.warmup = 0;
        benchmark::DoNotOptimize(
            sim::runMix(cfg, {"libquantum_06"}, opt).cores[0].ipc);
    }
}
BENCHMARK(BM_SingleCoreSimulation)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Like BENCHMARK_MAIN(), but defaults --benchmark_out to
 * BENCH_simspeed.json (JSON format) when the caller did not pass one, so
 * a plain run always leaves a machine-readable record.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_simspeed.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |= std::string(argv[i]).rfind("--benchmark_out=", 0) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
