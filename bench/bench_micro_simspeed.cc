/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): throughput of the hot
 * components -- the DRAM channel command loop, the cache lookup path,
 * the stream prefetcher, the synthetic generator, the memory-controller
 * scheduling loop (sharded vs. reference, at several queue depths), the
 * parallel sweep runner, and a full single-core simulation step.
 *
 * Unless the caller passes its own --benchmark_out, results are also
 * written to BENCH_simspeed.json in the working directory.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "memctrl/controller.hh"
#include "obs/metrics.hh"
#include "prefetch/stream_prefetcher.hh"
#include "core/trace_file.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "telemetry/telemetry.hh"
#include "trace/format.hh"
#include "workload/generator.hh"
#include "workload/trace_profile.hh"

namespace
{

using namespace padc;

void
BM_ChannelRowHitReads(benchmark::State &state)
{
    dram::TimingParams timing;
    dram::Channel channel(timing, 8);
    channel.activate(0, 1, 0);
    Cycle t = timing.toCpu(timing.tRCD);
    for (auto _ : state) {
        while (!channel.canColumn(0, false, t))
            t += timing.cpu_per_dram_cycle;
        benchmark::DoNotOptimize(channel.column(0, false, false, t));
    }
}
BENCHMARK(BM_ChannelRowHitReads);

void
BM_CacheAccessHit(benchmark::State &state)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 512 * 1024;
    cfg.ways = 8;
    cache::SetAssocCache cache(cfg, "bench");
    for (Addr a = 0; a < 256 * kLineBytes; a += kLineBytes)
        cache.fill(a, 0, 0, false, false, 0);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + kLineBytes) % (256 * kLineBytes);
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_StreamPrefetcherObserve(benchmark::State &state)
{
    prefetch::PrefetcherConfig cfg;
    prefetch::StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    Addr line = 0;
    for (auto _ : state) {
        out.clear();
        pf.observe(lineToAddr(line++), 0x400, true, false, out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_StreamPrefetcherObserve);

void
BM_SyntheticTraceNext(benchmark::State &state)
{
    workload::TraceParams params;
    params.seed = 7;
    workload::SyntheticTrace trace(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next().addr);
}
BENCHMARK(BM_SyntheticTraceNext);

/** Generated ops shared by the trace-decode benchmarks. */
const std::vector<core::TraceOp> &
benchTraceOps()
{
    static const std::vector<core::TraceOp> ops = [] {
        workload::TraceParams params;
        params.seed = 13;
        workload::SyntheticTrace generator(params);
        std::vector<core::TraceOp> v;
        for (int i = 0; i < 100000; ++i)
            v.push_back(generator.next());
        return v;
    }();
    return ops;
}

/**
 * Decode throughput of the compressed PADCTRC2 format (delta + varint
 * blocks, full checksum verification) -- the replay-side cost a
 * trace-backed workload pays per simulated op.
 */
void
BM_TraceDecode(benchmark::State &state)
{
    const std::string path = "/tmp/padc_bench_v2.trc";
    std::string error;
    if (!trace::writeTraceFileV2(path, benchTraceOps(), &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    for (auto _ : state) {
        std::vector<core::TraceOp> ops;
        if (!trace::readTraceFileV2(path, &ops, &error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(ops.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(benchTraceOps().size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

/** Baseline: decode of the uncompressed fixed-record v1 format. */
void
BM_TraceDecodeV1(benchmark::State &state)
{
    const std::string path = "/tmp/padc_bench_v1.trc";
    std::string error;
    if (!core::writeTraceFile(path, benchTraceOps(), &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    for (auto _ : state) {
        std::vector<core::TraceOp> ops;
        if (!core::readTraceFile(path, &ops, &error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(ops.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(benchTraceOps().size()));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceDecodeV1)->Unit(benchmark::kMillisecond);

/** Discards completions; the scheduler benchmarks only need DRAM work. */
class NullHandler : public memctrl::ResponseHandler
{
  public:
    void dramReadComplete(const memctrl::Request &, Cycle) override {}
    void dramPrefetchDropped(const memctrl::Request &, Cycle) override {}
};

/**
 * Reusable scheduler workload: a controller whose read queue is held at
 * a fixed depth of pseudo-random requests (mixing row hits and
 * conflicts across all banks), stepped one DRAM command clock per
 * tick. Shared by the scheduling micro-benchmarks and the telemetry
 * overhead check.
 */
struct SchedulerLoad
{
    static constexpr std::uint32_t kCores = 4;

    dram::TimingParams timing;
    dram::Channel channel{timing, 8};
    dram::Geometry geometry;
    dram::AddressMap map{geometry};
    memctrl::AccuracyTracker tracker;
    NullHandler handler;
    memctrl::MemoryController ctrl;

    std::size_t depth;
    std::uint64_t line = 1;
    std::uint64_t n = 0;
    Cycle now = 0;

    static memctrl::AccuracyConfig
    accuracyConfig()
    {
        memctrl::AccuracyConfig acfg;
        acfg.interval = 1000000; // static accuracy during the benchmark
        acfg.initial_accuracy = 1.0;
        return acfg;
    }

    static memctrl::SchedulerConfig
    schedConfig(bool reference)
    {
        memctrl::SchedulerConfig cfg;
        cfg.kind = SchedPolicyKind::Aps;
        cfg.apd_enabled = false;
        cfg.request_buffer_size = 256;
        cfg.reference_scheduler = reference;
        return cfg;
    }

    SchedulerLoad(std::size_t queue_depth, bool reference)
        : tracker(kCores, accuracyConfig()),
          ctrl(schedConfig(reference), channel, tracker, handler, kCores),
          depth(queue_depth)
    {
        topUp();
    }

    void
    topUp()
    {
        while (ctrl.readQueueSize() < depth) {
            line = line * 2862933555777941757ULL + 3037000493ULL;
            const Addr addr = lineToAddr(line % 4096);
            ctrl.enqueueRead(map.map(addr), lineAlign(addr),
                             static_cast<CoreId>(n % kCores), 0x400,
                             (n & 1) != 0
                                 ? RequestClass::Prefetch
                                 : RequestClass::DemandRead,
                             now);
            ++n;
        }
    }

    /** One scheduling round (complete + schedule + issue) and refill. */
    void
    tick()
    {
        ctrl.tick(now);
        now += timing.cpu_per_dram_cycle;
        topUp();
    }
};

/**
 * Cost of one controller DRAM cycle with the read queue held at
 * state.range(0) outstanding requests.
 */
void
scheduleReadAtDepth(benchmark::State &state, bool reference)
{
    SchedulerLoad load(static_cast<std::size_t>(state.range(0)),
                       reference);
    for (auto _ : state)
        load.tick();
    benchmark::DoNotOptimize(load.ctrl.stats().demand_reads);
}

void
BM_ScheduleRead(benchmark::State &state)
{
    scheduleReadAtDepth(state, false);
}
BENCHMARK(BM_ScheduleRead)->Arg(4)->Arg(32)->Arg(128);

/** Seed implementation baseline: the naive O(queue) scan scheduler. */
void
BM_ScheduleReadReference(benchmark::State &state)
{
    scheduleReadAtDepth(state, true);
}
BENCHMARK(BM_ScheduleReadReference)->Arg(4)->Arg(32)->Arg(128);

/**
 * Same scheduling loop with a request trace attached in count-only mode
 * (limit 0): every hook fires but nothing is stored. Compare against
 * BM_ScheduleRead at the same depth to see the full tracing toll; the
 * compiled-in-but-disabled cost is asserted by
 * --telemetry-overhead-check below.
 */
void
BM_ScheduleReadTelemetry(benchmark::State &state)
{
    SchedulerLoad load(static_cast<std::size_t>(state.range(0)), false);
    telemetry::TraceBuffer trace(0);
    load.ctrl.setTrace(&trace, 0);
    for (auto _ : state)
        load.tick();
    benchmark::DoNotOptimize(trace.seen());
}
BENCHMARK(BM_ScheduleReadTelemetry)->Arg(4)->Arg(32)->Arg(128);

/**
 * A small (policy x mix) sweep through the shared thread pool; compare
 * against BM_SingleCoreSimulation-style serial cost to see the fan-out
 * win (thread count via PADC_THREADS).
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    const sim::SystemConfig base = sim::SystemConfig::baseline(2);
    sim::RunOptions opt;
    opt.instructions = 5000;
    opt.warmup = 0;
    const std::vector<workload::Mix> mixes = {
        {"libquantum_06", "milc_06"},
        {"swim_00", "omnetpp_06"},
    };
    std::vector<sim::SweepPoint> points;
    for (const auto setup :
         {sim::PolicySetup::DemandFirst, sim::PolicySetup::ApsOnly,
          sim::PolicySetup::Padc}) {
        for (std::size_t i = 0; i < mixes.size(); ++i) {
            sim::RunOptions point_opt = opt;
            point_opt.mix_seed = i;
            points.push_back(
                {sim::applyPolicy(base, setup), mixes[i], point_opt});
        }
    }
    for (auto _ : state) {
        const auto results = sim::runSweep(points, sim::sharedRunner());
        benchmark::DoNotOptimize(results.size());
    }
}
BENCHMARK(BM_ParallelSweep)->Unit(benchmark::kMillisecond);

void
BM_SingleCoreSimulation(benchmark::State &state)
{
    // Cost of simulating 10K instructions of libquantum under PADC.
    const sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(1), sim::PolicySetup::Padc);
    for (auto _ : state) {
        sim::RunOptions opt;
        opt.instructions = 10000;
        opt.warmup = 0;
        benchmark::DoNotOptimize(
            sim::runMix(cfg, {"libquantum_06"}, opt).cores[0].ipc);
    }
}
BENCHMARK(BM_SingleCoreSimulation)->Unit(benchmark::kMillisecond);

/**
 * Registers (once) the serial pointer-chase profile the idle-heavy
 * end-to-end benchmark runs: fully dependent loads striding randomly
 * through a working set far larger than the L2, one access per line,
 * no compute between them -- the lat_mem_rd idiom. Every load is an L2 miss whose address hangs
 * off the previous one, so the core sits in a DRAM-latency-bound stall
 * loop and almost every simulated cycle is dead time. Registered under
 * a bench-local name so the builtin profile table (and with it
 * randomMixes and every figure) is untouched.
 */
const char *
pointerChaseProfile()
{
    static const char *name = [] {
        workload::TraceParams p;
        p.seed = 41;
        p.avg_gap = 0;
        p.store_fraction = 0.0;
        p.dependent_fraction = 1.0;
        p.working_set_bytes = 8ULL << 20;
        p.accesses_per_line = 1;
        p.phases[0].seq_fraction = 0.0;
        p.phases[0].stride_fraction = 0.0;
        p.phases[0].burst_lines = 1;
        p.phases[0].revisit_fraction = 0.0;
        p.phases[0].concurrent_runs = 1;
        workload::registerTraceProfile("bench_pchase", [p] {
            return std::make_unique<workload::SyntheticTrace>(p);
        });
        return "bench_pchase";
    }();
    return name;
}

/**
 * Full System::run throughput (sim-cycles/sec counter) on a short
 * single-core mix, cycle-by-cycle (BM_EndToEnd) vs. the event-driven
 * next-event loop (BM_EndToEndEventDriven). Arg 0 is an idle-heavy
 * serial pointer chase (bench_pchase, prefetcher off) where nearly
 * every cycle is a dead wait on a dependent DRAM miss; Arg 1 is a
 * saturated streaming profile (libquantum_06) where nearly every cycle
 * does work. Compare the pair at the same arg: the idle-heavy arg
 * shows the skipping win, the saturated arg bounds its overhead when
 * there is nothing to skip.
 */
void
endToEnd(benchmark::State &state, bool event_skip)
{
    sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(1), sim::PolicySetup::Padc);
    cfg.event_skip = event_skip;
    const bool idle_heavy = state.range(0) == 0;
    if (idle_heavy) {
        // No prefetcher: a stream prefetcher keeps the channel busy
        // between the dependent misses, and the chase defeats it
        // anyway (random next-line, one access per line).
        cfg.prefetch_enabled = false;
    }
    const workload::Mix mix = {idle_heavy ? pointerChaseProfile()
                                          : "libquantum_06"};
    sim::RunOptions opt;
    opt.instructions = 15000;
    opt.warmup = 0;
    std::uint64_t total_cycles = 0;
    for (auto _ : state) {
        sim::RunStatus status;
        benchmark::DoNotOptimize(
            sim::runMix(cfg, mix, opt, &status).cores[0].ipc);
        total_cycles += status.cycles;
    }
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}

void
BM_EndToEnd(benchmark::State &state)
{
    endToEnd(state, false);
}
BENCHMARK(BM_EndToEnd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void
BM_EndToEndEventDriven(benchmark::State &state)
{
    endToEnd(state, true);
}
BENCHMARK(BM_EndToEndEventDriven)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// --- telemetry overhead check ---------------------------------------

/** Wall seconds for @p ticks scheduler rounds, optionally traced. */
double
timedRounds(std::uint64_t ticks, telemetry::TraceBuffer *trace)
{
    SchedulerLoad load(32, false);
    if (trace != nullptr)
        load.ctrl.setTrace(trace, 0);
    const auto begin = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ticks; ++i)
        load.tick();
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(load.ctrl.stats().demand_reads);
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * Assert that telemetry compiled in but *disabled* (no sinks attached:
 * every hook is one untaken null test) stays within measurement noise
 * of itself, and that even count-only tracing -- every hook firing,
 * nothing stored -- stays within a generous noise bound of the
 * disabled path. The rounds are interleaved so frequency drift hits
 * all variants alike, and each variant takes the median of its rounds.
 *
 * Off by default: only runs under --telemetry-overhead-check, because
 * a timing assertion has no place in a normal benchmark invocation
 * (and is meaningless under sanitizers).
 *
 * @return process exit code (0 = within noise)
 */
int
telemetryOverheadCheck()
{
    constexpr std::uint64_t kTicks = 200000;
    constexpr int kRounds = 9;
    constexpr double kNoiseBound = 1.30;

    // Warm both paths (page faults, branch predictors, allocator).
    telemetry::TraceBuffer warm(0);
    timedRounds(kTicks / 4, nullptr);
    timedRounds(kTicks / 4, &warm);

    std::vector<double> disabled_a, disabled_b, counted;
    for (int round = 0; round < kRounds; ++round) {
        disabled_a.push_back(timedRounds(kTicks, nullptr));
        telemetry::TraceBuffer trace(0);
        counted.push_back(timedRounds(kTicks, &trace));
        disabled_b.push_back(timedRounds(kTicks, nullptr));
    }
    const auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double a = median(disabled_a);
    const double b = median(disabled_b);
    const double t = median(counted);

    const double aa_ratio = std::max(a, b) / std::min(a, b);
    const double traced_ratio = t / std::min(a, b);
    std::printf("telemetry-overhead-check: disabled %.4fs / %.4fs "
                "(A/A ratio %.3f), count-only traced %.4fs "
                "(ratio %.3f), bound %.2f\n",
                a, b, aa_ratio, t, traced_ratio, kNoiseBound);

    if (aa_ratio > kNoiseBound) {
        std::fprintf(stderr,
                     "telemetry-overhead-check: FAIL: disabled-path A/A "
                     "ratio %.3f exceeds %.2f -- the disabled hooks are "
                     "not branch-cheap (or the machine is too noisy to "
                     "measure)\n",
                     aa_ratio, kNoiseBound);
        return 1;
    }
    if (traced_ratio > kNoiseBound) {
        std::fprintf(stderr,
                     "telemetry-overhead-check: FAIL: count-only tracing "
                     "ratio %.3f exceeds %.2f\n",
                     traced_ratio, kNoiseBound);
        return 1;
    }
    std::printf("telemetry-overhead-check: PASS\n");
    return 0;
}

// --- metrics-registry overhead check ---------------------------------

/**
 * Wall seconds for @p ticks scheduler rounds, optionally bumping a
 * MetricsRegistry counter and sampling an AtomicHistogram every tick --
 * a deliberately hotter loop than any real instrumentation site (the
 * pool samples per task, not per scheduler round).
 */
double
timedObsRounds(std::uint64_t ticks, obs::Counter *counter,
               obs::AtomicHistogram *histogram)
{
    SchedulerLoad load(32, false);
    const auto begin = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < ticks; ++i) {
        load.tick();
        if (counter != nullptr) {
            counter->inc();
            histogram->sample(i & 1023);
        }
    }
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(load.ctrl.stats().demand_reads);
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * Assert that the obs::MetricsRegistry hot path (relaxed atomic
 * counter increment + histogram sample, resolved once to stable
 * references) stays within measurement noise of the uninstrumented
 * loop, the same interleaved-median protocol as
 * --telemetry-overhead-check. Off by default for the same reasons.
 *
 * @return process exit code (0 = within noise)
 */
int
obsOverheadCheck()
{
    constexpr std::uint64_t kTicks = 200000;
    constexpr int kRounds = 9;
    constexpr double kNoiseBound = 1.30;

    obs::MetricsRegistry &registry = obs::MetricsRegistry::instance();
    obs::Counter &counter =
        registry.counter("bench_obs_ticks_total", "overhead-check ticks");
    obs::AtomicHistogram &histogram = registry.histogram(
        "bench_obs_tick_value", 128, 8, "overhead-check samples");

    // Warm both paths (page faults, branch predictors, allocator).
    timedObsRounds(kTicks / 4, nullptr, nullptr);
    timedObsRounds(kTicks / 4, &counter, &histogram);

    std::vector<double> plain_a, plain_b, metered;
    for (int round = 0; round < kRounds; ++round) {
        plain_a.push_back(timedObsRounds(kTicks, nullptr, nullptr));
        metered.push_back(timedObsRounds(kTicks, &counter, &histogram));
        plain_b.push_back(timedObsRounds(kTicks, nullptr, nullptr));
    }
    const auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double a = median(plain_a);
    const double b = median(plain_b);
    const double t = median(metered);

    const double aa_ratio = std::max(a, b) / std::min(a, b);
    const double metered_ratio = t / std::min(a, b);
    std::printf("obs-overhead-check: plain %.4fs / %.4fs "
                "(A/A ratio %.3f), metered %.4fs (ratio %.3f), "
                "bound %.2f, counter %llu\n",
                a, b, aa_ratio, t, metered_ratio, kNoiseBound,
                static_cast<unsigned long long>(counter.value()));

    if (aa_ratio > kNoiseBound) {
        std::fprintf(stderr,
                     "obs-overhead-check: FAIL: plain-path A/A ratio "
                     "%.3f exceeds %.2f -- the machine is too noisy to "
                     "measure\n",
                     aa_ratio, kNoiseBound);
        return 1;
    }
    if (metered_ratio > kNoiseBound) {
        std::fprintf(stderr,
                     "obs-overhead-check: FAIL: metered ratio %.3f "
                     "exceeds %.2f -- the registry hot path is not "
                     "within noise\n",
                     metered_ratio, kNoiseBound);
        return 1;
    }
    std::printf("obs-overhead-check: PASS\n");
    return 0;
}

} // namespace

/**
 * Like BENCHMARK_MAIN(), but defaults --benchmark_out to
 * BENCH_simspeed.json (JSON format) when the caller did not pass one, so
 * a plain run always leaves a machine-readable record.
 */
int
main(int argc, char **argv)
{
    if (argc == 2 &&
        std::string(argv[1]) == "--telemetry-overhead-check") {
        return telemetryOverheadCheck();
    }
    if (argc == 2 && std::string(argv[1]) == "--obs-overhead-check") {
        return obsOverheadCheck();
    }
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_simspeed.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        has_out |= std::string(argv[i]).rfind("--benchmark_out=", 0) == 0;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
