/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): throughput of the hot
 * components -- the DRAM channel command loop, the cache lookup path,
 * the stream prefetcher, the synthetic generator, and a full
 * single-core simulation step.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/cache.hh"
#include "dram/channel.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/experiment.hh"
#include "workload/generator.hh"

namespace
{

using namespace padc;

void
BM_ChannelRowHitReads(benchmark::State &state)
{
    dram::TimingParams timing;
    dram::Channel channel(timing, 8);
    channel.activate(0, 1, 0);
    Cycle t = timing.toCpu(timing.tRCD);
    for (auto _ : state) {
        while (!channel.canColumn(0, false, t))
            t += timing.cpu_per_dram_cycle;
        benchmark::DoNotOptimize(channel.column(0, false, false, t));
    }
}
BENCHMARK(BM_ChannelRowHitReads);

void
BM_CacheAccessHit(benchmark::State &state)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 512 * 1024;
    cfg.ways = 8;
    cache::SetAssocCache cache(cfg, "bench");
    for (Addr a = 0; a < 256 * kLineBytes; a += kLineBytes)
        cache.fill(a, 0, 0, false, false, 0);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + kLineBytes) % (256 * kLineBytes);
    }
}
BENCHMARK(BM_CacheAccessHit);

void
BM_StreamPrefetcherObserve(benchmark::State &state)
{
    prefetch::PrefetcherConfig cfg;
    prefetch::StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    Addr line = 0;
    for (auto _ : state) {
        out.clear();
        pf.observe(lineToAddr(line++), 0x400, true, false, out);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_StreamPrefetcherObserve);

void
BM_SyntheticTraceNext(benchmark::State &state)
{
    workload::TraceParams params;
    params.seed = 7;
    workload::SyntheticTrace trace(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next().addr);
}
BENCHMARK(BM_SyntheticTraceNext);

void
BM_SingleCoreSimulation(benchmark::State &state)
{
    // Cost of simulating 10K instructions of libquantum under PADC.
    const sim::SystemConfig cfg = sim::applyPolicy(
        sim::SystemConfig::baseline(1), sim::PolicySetup::Padc);
    for (auto _ : state) {
        sim::RunOptions opt;
        opt.instructions = 10000;
        opt.warmup = 0;
        benchmark::DoNotOptimize(
            sim::runMix(cfg, {"libquantum_06"}, opt).cores[0].ipc);
    }
}
BENCHMARK(BM_SingleCoreSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
