/**
 * @file
 * Table 8: effect of prioritizing urgent requests (demands from
 * low-accuracy cores) on the case-study-III mix.
 *
 * Paper shape: without urgency, the prefetch-unfriendly applications
 * starve (high UF); urgency restores their speedups and improves HS at
 * a small WS cost.
 */

#include "common.hh"

int
main()
{
    using namespace padc;
    bench::banner("Table 8", "urgent-request prioritization ablation",
                  "no-urgent variants have much higher unfairness");
    const std::vector<sim::PolicySetup> policies = {
        sim::PolicySetup::DemandFirst, sim::PolicySetup::ApsNoUrgent,
        sim::PolicySetup::ApsOnly,     sim::PolicySetup::PadcNoUrgent,
        sim::PolicySetup::Padc,
    };
    bench::caseStudyBench(workload::caseStudyMixed(), policies);
    return 0;
}
